//! The Fig. 10 case study: do the proxies reflect the same Westmere to
//! Haswell performance trend as the original workloads?
//!
//! Run with: `cargo run --release --example cross_architecture`

use data_motif_proxy::core::ProxySuite;
use data_motif_proxy::workloads::{workload_by_kind, ClusterConfig};

fn main() {
    let suite = ProxySuite::generate(ClusterConfig::five_node_westmere());
    let westmere = ClusterConfig::three_node_westmere_64gb();
    let haswell = ClusterConfig::three_node_haswell();

    println!(
        "{:<14} {:>18} {:>18}",
        "workload", "real speedup", "proxy speedup"
    );
    for report in suite.reports() {
        let workload = workload_by_kind(report.kind);
        let real =
            workload.measure(&westmere).runtime_secs / workload.measure(&haswell).runtime_secs;
        let proxy = report.proxy.measure(&westmere.node.arch).runtime_secs
            / report.proxy.measure(&haswell.node.arch).runtime_secs;
        println!(
            "{:<14} {:>17.2}x {:>17.2}x",
            report.kind.to_string(),
            real,
            proxy
        );
    }
    println!("\nA consistent trend (proxy speedups tracking real speedups) means the proxies can be used for early-stage architecture comparisons.");
}
