//! End-to-end proxy generation for Hadoop TeraSort: decomposition,
//! feature selection, decision-tree auto-tuning, and the final accuracy /
//! speedup report (the Section III pipeline for one workload).
//!
//! Run with: `cargo run --release --example generate_proxy_terasort`

use data_motif_proxy::core::generator::ProxyGenerator;
use data_motif_proxy::metrics::MetricId;
use data_motif_proxy::workloads::{ClusterConfig, WorkloadKind};

fn main() {
    let cluster = ClusterConfig::five_node_westmere();
    let generator = ProxyGenerator::new(cluster);
    let report = generator.generate_kind(WorkloadKind::TeraSort);

    println!("== {} ==", report.proxy.name());
    println!("decomposition:");
    for c in &report.decomposition.components {
        println!(
            "  {:<22} class={:<10} weight={:.2}",
            c.motif.name(),
            c.class.name(),
            c.weight
        );
    }
    let dag = report.proxy.dag();
    println!(
        "\nproxy DAG ({}):\n{}",
        report.proxy.plan().shape_summary(),
        dag.describe()
    );
    println!("tuned parameters: {:?}", report.proxy.parameters());
    println!("\nreal vs proxy metrics (accuracy per Equation 3):");
    for id in MetricId::TUNABLE {
        println!(
            "  {:<12} real={:>12.3} proxy={:>12.3} accuracy={:>5.1}%",
            id.name(),
            report.real_metrics.get(id),
            report.proxy_metrics.get(id),
            report.accuracy.get(id).unwrap_or(1.0) * 100.0
        );
    }
    println!(
        "\naverage accuracy = {:.1}%",
        report.accuracy.average() * 100.0
    );
    println!(
        "runtime speedup  = {:.0}x ({:.0}s -> {:.2}s)",
        report.speedup, report.real_metrics.runtime_secs, report.proxy_metrics.runtime_secs
    );
    println!("qualified within 15% on every metric: {}", report.qualified);

    // The proxy is also a real program: run its DAG's kernels on sample
    // data, independent branches in parallel.
    use data_motif_proxy::core::executor::DagExecutor;
    let executor = DagExecutor::new().with_max_parallel(4);
    let execution = report.proxy.execute_dag(&executor, 10_000, 7);
    println!(
        "\nexecuted {} motif kernels for real across {} stages (widest {}), checksum {:#x}",
        execution.kernels_run(),
        execution.stages,
        execution.max_stage_width,
        execution.checksum
    );
}
