//! Quickstart: generate data, run a data motif for real, model it under the
//! performance-model instrument, and print the resulting metric vector.
//!
//! Run with: `cargo run --example quickstart`

use data_motif_proxy::datagen::text::TextGenerator;
use data_motif_proxy::motifs::bigdata::sort;
use data_motif_proxy::motifs::{MotifConfig, MotifKind};
use data_motif_proxy::perfmodel::{ArchProfile, ExecutionEngine};

fn main() {
    // 1. Generate gensort-style records and really sort them.
    let records = TextGenerator::new(42).generate(100_000);
    let sorted = sort::parallel_sort(&records.keys(), 8);
    println!(
        "sorted {} records; first key = {:?}",
        sorted.len(),
        &sorted[0]
    );

    // 2. Model the same motif at TeraSort scale (100 GB) under the shared
    //    performance-model instrument.
    let data = TextGenerator::descriptor(100 << 30);
    let profile = MotifKind::QuickSort.cost_profile(&data, &MotifConfig::big_data_default());
    let engine = ExecutionEngine::new(ArchProfile::westmere_e5645());
    let metrics = engine.run(&profile, 12);

    println!("\nQuickSort motif over 100 GB on a modelled Xeon E5645 node:");
    for (id, value) in metrics.iter() {
        println!("  {id:<12} = {value:.3}");
    }
}
