//! The Fig. 7 / Fig. 8 case study: how input sparsity changes Hadoop
//! K-means behaviour, and whether one Proxy K-means tracks both the sparse
//! and the dense real runs.
//!
//! Run with: `cargo run --release --example kmeans_sparsity_study`

use data_motif_proxy::core::generator::ProxyGenerator;
use data_motif_proxy::metrics::{AccuracyReport, MetricId};
use data_motif_proxy::workloads::hadoop::KMeans;
use data_motif_proxy::workloads::workload::Workload;
use data_motif_proxy::workloads::ClusterConfig;

fn main() {
    let cluster = ClusterConfig::five_node_westmere();

    // Fig. 7: the real workload under sparse vs dense input.
    let sparse = KMeans::paper_configuration().measure(&cluster);
    let dense = KMeans::dense_configuration().measure(&cluster);
    println!("Hadoop K-means, sparse vs dense input:");
    println!(
        "  memory bandwidth  {:.0} vs {:.0} MB/s",
        sparse.mem_total_bw_mbps(),
        dense.mem_total_bw_mbps()
    );
    println!(
        "  runtime           {:.0} vs {:.0} s",
        sparse.runtime_secs, dense.runtime_secs
    );
    println!(
        "  fp instruction %  {:.1} vs {:.1}",
        sparse.instruction_mix.floating_point * 100.0,
        dense.instruction_mix.floating_point * 100.0
    );

    // Fig. 8: one proxy, two inputs.
    let report = ProxyGenerator::new(cluster).generate(&KMeans::paper_configuration());
    let dense_proxy = report
        .proxy
        .with_input(
            KMeans::dense_configuration()
                .input_descriptor()
                .scaled_to(report.proxy.parameters().data_size_bytes),
        )
        .measure(&cluster.node.arch);
    let dense_accuracy = AccuracyReport::compare(&dense, &dense_proxy, &MetricId::TUNABLE);
    println!("\nProxy K-means accuracy:");
    println!(
        "  against the sparse real run: {:.1}%",
        report.accuracy.average() * 100.0
    );
    println!(
        "  against the dense real run:  {:.1}%",
        dense_accuracy.average() * 100.0
    );
}
