//! # data-motif-proxy — facade crate
//!
//! Reproduction of *"Data Motif-based Proxy Benchmarks for Big Data and AI
//! Workloads"* (Gao et al., IISWC 2018).  This crate re-exports the
//! workspace members under short module names so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`datagen`] — seeded data generators (text, vectors, graphs, matrices, images);
//! * [`perfmodel`] — the architectural performance-model substrate;
//! * [`metrics`] — metric vectors, accuracy scoring and reporting;
//! * [`motifs`] — the eight data motifs (big-data and AI implementations);
//! * [`workloads`] — models of the original Hadoop and TensorFlow workloads;
//! * [`core`] — the proxy benchmark generating methodology (DAG proxies,
//!   decomposition, decision-tree auto-tuning, the five-proxy suite);
//! * [`scenario`] — the campaign engine: declarative sweep scenarios, the
//!   content-addressed result store and the batch campaign runner.

#![warn(missing_docs)]

pub use dmpb_core as core;
pub use dmpb_datagen as datagen;
pub use dmpb_metrics as metrics;
pub use dmpb_motifs as motifs;
pub use dmpb_perfmodel as perfmodel;
pub use dmpb_scenario as scenario;
pub use dmpb_workloads as workloads;
