//! Property-based tests over core data structures and invariants, plus the
//! DAG-executor determinism gate: executing any of the eight workload DAGs
//! must produce identical digests and checksums across branch-parallelism
//! settings and across repeated runs.

use data_motif_proxy::core::dag::ProxyDag;
use data_motif_proxy::core::decompose::decompose;
use data_motif_proxy::core::executor::{DagExecutor, SchedulePolicy};
use data_motif_proxy::core::features::initial_parameters;
use data_motif_proxy::core::parameters::{Direction, ParameterId, ProxyParameters};
use data_motif_proxy::core::ProxyBenchmark;
use data_motif_proxy::datagen::text::TextGenerator;
use data_motif_proxy::datagen::{DataClass, DataDescriptor, Distribution};
use data_motif_proxy::metrics::accuracy;
use data_motif_proxy::motifs::bigdata::{set_ops, sort, transform};
use data_motif_proxy::motifs::MotifKind;
use data_motif_proxy::perfmodel::cache::{Cache, CacheConfig};
use data_motif_proxy::workloads::framework::spark::AppShape;
use data_motif_proxy::workloads::spark::{SparkKMeans, SparkPageRank, SparkTeraSort};
use data_motif_proxy::workloads::workload::Workload;
use data_motif_proxy::workloads::{all_workloads, workload_by_kind, ClusterConfig, WorkloadKind};
use proptest::prelude::*;

/// The eight proxies with their initial (untuned) parameters — the cheap
/// way to exercise every workload DAG without running the auto-tuner.
fn initial_proxies() -> Vec<ProxyBenchmark> {
    let cluster = ClusterConfig::five_node_westmere();
    all_workloads()
        .iter()
        .map(|w| {
            ProxyBenchmark::from_decomposition(
                &decompose(w.as_ref()),
                initial_parameters(w.as_ref(), &cluster),
            )
        })
        .collect()
}

/// Satellite gate: the DAG executor's digest and the `ExecutionSummary`
/// checksum must be identical across `with_max_parallel(1)` vs the
/// 8-worker work-stealing pool vs the legacy stage-barrier scheduler, and
/// across repeated runs, for all 8 workloads.
#[test]
fn dag_execution_is_identical_across_branch_parallelism_for_all_workloads() {
    let serial = DagExecutor::new().with_max_parallel(1);
    let branchy = DagExecutor::new().with_max_parallel(8);
    let barrier = DagExecutor::new()
        .with_policy(SchedulePolicy::StageBarrier)
        .with_max_parallel(8);
    for proxy in initial_proxies() {
        let a = proxy.execute_dag(&serial, 1_000, 17);
        let b = proxy.execute_dag(&branchy, 1_000, 17);
        let c = proxy.execute_dag(&branchy, 1_000, 17);
        let d = proxy.execute_dag(&barrier, 1_000, 17);
        assert_eq!(a, b, "{}: parallelism changed the execution", proxy.name());
        assert_eq!(b, c, "{}: repeated runs differ", proxy.name());
        assert_eq!(b, d, "{}: policies disagree", proxy.name());
        assert_eq!(
            proxy.execute_sample(1_000, 17).checksum,
            a.checksum,
            "{}: summary checksum disagrees with the executor",
            proxy.name()
        );
    }
}

/// Builds an arbitrary acyclic DAG from proptest-drawn raw picks: nodes
/// `0..n`, every edge pointing from a lower to a higher node id (acyclic
/// by construction, forks/joins/multi-edges all possible).
fn random_dag(nodes: usize, picks: &[usize]) -> ProxyDag {
    let descriptor = DataDescriptor::new(DataClass::Text, 1 << 20, 100, 0.0, Distribution::Uniform);
    let mut dag = ProxyDag::new();
    for i in 0..nodes {
        dag.add_node(format!("n{i}"), descriptor);
    }
    for &pick in picks {
        let a = pick % nodes;
        let b = (pick / nodes) % nodes;
        if a == b {
            continue;
        }
        let motif = MotifKind::ALL[(pick / (nodes * nodes)) % MotifKind::ALL.len()];
        let weight = 0.05 + (pick % 13) as f64 * 0.07;
        dag.add_edge(a.min(b), a.max(b), motif, weight);
    }
    if dag.num_edges() == 0 {
        dag.add_edge(0, 1, MotifKind::MinMax, 1.0);
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite gate: for random acyclic topologies — not just the eight
    /// curated workload DAGs — serial execution, the 8-worker
    /// work-stealing scheduler and the legacy stage-barrier scheduler
    /// must produce byte-identical executions.
    #[test]
    fn random_acyclic_dags_execute_identically_across_schedulers(
        nodes in 2usize..10,
        picks in prop::collection::vec(0usize..100_000, 1..24),
        elements in 64usize..800,
        seed in 0u64..100_000,
    ) {
        let dag = random_dag(nodes, &picks);
        let serial = DagExecutor::new().execute(&dag, elements, seed);
        let stealing = DagExecutor::new()
            .with_max_parallel(8)
            .execute(&dag, elements, seed);
        let barrier = DagExecutor::new()
            .with_policy(SchedulePolicy::StageBarrier)
            .with_max_parallel(8)
            .execute(&dag, elements, seed);
        prop_assert_eq!(&serial, &stealing,
            "work stealing changed the execution:\n{}", dag.describe());
        prop_assert_eq!(&serial, &barrier,
            "stage barrier changed the execution:\n{}", dag.describe());
    }
}

/// Every workload DAG schedules at least one stage with ≥ 2 concurrent
/// edges when it branches, and the executor covers every component edge.
#[test]
fn dag_execution_covers_every_component_and_exposes_branch_width() {
    let executor = DagExecutor::new().with_max_parallel(4);
    let mut saw_wide_stage = false;
    for proxy in initial_proxies() {
        let run = proxy.execute_dag(&executor, 500, 3);
        assert_eq!(
            run.kernels_run(),
            proxy.components().len(),
            "{}",
            proxy.name()
        );
        if proxy.plan().is_branching() {
            assert!(
                run.max_stage_width >= 2,
                "{}: branching plan but no concurrent stage",
                proxy.name()
            );
            saw_wide_stage = true;
        }
    }
    assert!(saw_wide_stage, "no workload exposed a parallel stage");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Digest invariance holds for arbitrary seeds and element budgets,
    /// not just the pinned ones.
    #[test]
    fn dag_executor_digest_is_seedwise_parallelism_invariant(
        seed in 0u64..1_000,
        elements in 64usize..1_500,
        workers in 2usize..8,
    ) {
        // Spark TeraSort: a genuine fork + join DAG, selected by kind so a
        // reordering of the suite cannot silently swap the subject.
        let cluster = ClusterConfig::five_node_westmere();
        let workload = workload_by_kind(WorkloadKind::SparkTeraSort);
        let proxy = ProxyBenchmark::from_decomposition(
            &decompose(workload.as_ref()),
            initial_parameters(workload.as_ref(), &cluster),
        );
        prop_assert!(proxy.plan().is_branching());
        let serial = proxy.execute_dag(&DagExecutor::new(), elements, seed);
        let parallel =
            proxy.execute_dag(&DagExecutor::new().with_max_parallel(workers), elements, seed);
        prop_assert_eq!(serial, parallel);
    }
}

/// An arbitrary-but-valid Spark application shape for property tests.
fn app_shape(iterations: u32, cached_fraction: f64, wide_shuffle_ratio: f64) -> AppShape {
    AppShape {
        input_bytes: 10 << 30,
        iterations,
        cached_fraction,
        wide_shuffle_ratio,
        output_ratio: 0.1,
        output_replication: 2,
        heap_bytes: 8 << 30,
        pipeline_factor: 0.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quick_sort_matches_std_sort(seed in 0u64..1000, len in 0usize..2000) {
        let keys = TextGenerator::new(seed).generate(len).keys();
        let mut ours = keys.clone();
        sort::quick_sort(&mut ours);
        let mut expected = keys;
        expected.sort_unstable();
        prop_assert_eq!(ours, expected);
    }

    #[test]
    fn merge_sort_is_sorted_and_a_permutation(seed in 0u64..1000, len in 0usize..2000) {
        let keys = TextGenerator::new(seed).generate(len).keys();
        let sorted = sort::merge_sort(&keys);
        prop_assert!(sort::is_sorted(&sorted));
        prop_assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn set_algebra_identities(a in prop::collection::vec(0u64..500, 0..200),
                              b in prop::collection::vec(0u64..500, 0..200)) {
        let a = set_ops::normalize(&a);
        let b = set_ops::normalize(&b);
        let union = set_ops::union(&a, &b);
        let inter = set_ops::intersection(&a, &b);
        let diff = set_ops::difference(&a, &b);
        prop_assert!(set_ops::is_canonical(&union));
        prop_assert_eq!(union.len(), a.len() + b.len() - inter.len());
        prop_assert_eq!(set_ops::union(&diff, &inter), a);
    }

    #[test]
    fn fft_round_trips(values in prop::collection::vec(-100.0f64..100.0, 1..6)) {
        // Pad to a power of two length.
        let mut signal = values;
        let n = signal.len().next_power_of_two().max(2);
        signal.resize(n, 0.0);
        let recovered = transform::ifft_real(&transform::fft_real(&signal));
        for (a, b) in signal.iter().zip(&recovered) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn cache_never_holds_more_lines_than_capacity(addresses in prop::collection::vec(0u64..(1 << 20), 1..2000)) {
        let config = CacheConfig::new(8 * 1024, 64, 4);
        let capacity_lines = (config.size_bytes / config.line_bytes) as usize;
        let mut cache = Cache::new(config);
        for a in addresses {
            cache.access(a);
        }
        prop_assert!(cache.resident_lines() <= capacity_lines);
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses());
    }

    #[test]
    fn accuracy_is_bounded_and_symmetric_in_error_sign(real in 0.001f64..1e6, error in -0.99f64..0.99) {
        let high = accuracy(real, real * (1.0 + error));
        let low = accuracy(real, real * (1.0 - error));
        prop_assert!((0.0..=1.0).contains(&high));
        prop_assert!((high - low).abs() < 1e-9);
    }

    #[test]
    fn caching_never_increases_spark_disk_reads(iterations in 1u32..10,
                                                cached in 0.0f64..1.0,
                                                shuffle in 0.0f64..1.0) {
        let cluster = ClusterConfig::five_node_westmere();
        let colder = app_shape(iterations, (cached - 0.25).max(0.0), shuffle);
        let warmer = app_shape(iterations, cached, shuffle);
        let (cold_read, _) = colder.disk_traffic_per_node(&cluster);
        let (warm_read, _) = warmer.disk_traffic_per_node(&cluster);
        prop_assert!(warm_read <= cold_read, "warm {warm_read} cold {cold_read}");
        // A fully cached RDD costs the one-time input scan plus shuffle
        // fetches, never per-iteration input re-reads.
        let fully_cached = app_shape(iterations, 1.0, shuffle);
        let (read, _) = fully_cached.disk_traffic_per_node(&cluster);
        let input = fully_cached.input_bytes_per_node(&cluster) as f64;
        let shuffle_fetch = fully_cached.shuffle_bytes_per_node(&cluster) as f64
            * f64::from(iterations) * 0.5;
        prop_assert!((read as f64) <= input + shuffle_fetch + 1.0);
    }

    #[test]
    fn spark_serde_grows_with_wide_shuffles(iterations in 1u32..10, shuffle in 0.0f64..0.99) {
        let cluster = ClusterConfig::five_node_westmere();
        let narrow = app_shape(iterations, 1.0, shuffle);
        let wider = app_shape(iterations, 1.0, shuffle + 0.01);
        prop_assert!(
            wider.serde_bytes_per_node(&cluster) >= narrow.serde_bytes_per_node(&cluster)
        );
    }

    #[test]
    fn spark_workload_profiles_are_finite_and_scale_sanely(
        gb in 1u64..32,
        iterations in 1u32..8,
        log_vertices in 16u32..24,
    ) {
        let cluster = ClusterConfig::five_node_westmere();
        let workloads: [Box<dyn Workload>; 3] = [
            Box::new(SparkTeraSort::scaled(gb << 30)),
            Box::new(SparkKMeans::scaled(gb << 30, 0.9, iterations)),
            Box::new(SparkPageRank::scaled(1 << log_vertices, iterations)),
        ];
        for w in &workloads {
            let p = w.per_node_profile(&cluster);
            prop_assert!(p.total_instructions() > 0, "{}", w.name());
            prop_assert!(p.disk_read_bytes > 0, "{}", w.name());
            let m = w.measure(&cluster);
            prop_assert!(m.is_finite(), "{}", w.name());
            prop_assert!(m.runtime_secs > 0.0, "{}", w.name());
        }
    }

    #[test]
    fn parameter_adjustments_stay_within_bounds(steps in prop::collection::vec(0usize..12, 0..40)) {
        let mut params = ProxyParameters::big_data(256 << 20, 8);
        for s in steps {
            let id = ParameterId::ALL[s % ParameterId::ALL.len()];
            let dir = if s % 2 == 0 { Direction::Up } else { Direction::Down };
            params = params.adjusted(id, dir);
            prop_assert!(params.num_tasks >= 1);
            prop_assert!(params.data_size_bytes >= 4 << 20);
            prop_assert!((0.9..=1.1).contains(&params.weight_skew));
            prop_assert!((0.0..=0.85).contains(&params.framework_weight));
        }
    }
}
