//! Property-style invariant tests for the data generators: seed
//! determinism (same seed ⇒ identical output) and sparsity fidelity
//! (generated matrices / vector sets are within ε of the requested
//! sparsity).

use data_motif_proxy::datagen::graph::{GraphGenerator, GraphSpec};
use data_motif_proxy::datagen::matrix::MatrixSpec;
use data_motif_proxy::datagen::text::TextGenerator;
use data_motif_proxy::datagen::vectors::{VectorDataset, VectorDatasetSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn text_generation_is_seed_deterministic(seed in 0u64..10_000, count in 0usize..500) {
        let a = TextGenerator::new(seed).generate(count);
        let b = TextGenerator::new(seed).generate(count);
        prop_assert_eq!(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(a.len(), count);
    }

    #[test]
    fn dense_matrix_generation_is_seed_deterministic(seed in 0u64..10_000, n in 1usize..24) {
        let a = MatrixSpec::dense(n, n + 1, seed).generate_dense();
        let b = MatrixSpec::dense(n, n + 1, seed).generate_dense();
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn sparse_matrix_generation_is_seed_deterministic(seed in 0u64..10_000, n in 4usize..32) {
        let a = MatrixSpec::sparse(n, n, 0.8, seed).generate_sparse();
        let b = MatrixSpec::sparse(n, n, 0.8, seed).generate_sparse();
        prop_assert_eq!(a.nnz(), b.nnz());
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(a.spmv(&xs), b.spmv(&xs));
    }

    #[test]
    fn graph_generation_is_seed_deterministic(seed in 0u64..10_000, vertices in 8usize..200) {
        let a = GraphGenerator::new(GraphSpec::power_law(vertices, 4, seed)).generate();
        let b = GraphGenerator::new(GraphSpec::power_law(vertices, 4, seed)).generate();
        prop_assert_eq!(a.num_vertices(), b.num_vertices());
        prop_assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..a.num_vertices() {
            prop_assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn different_seeds_produce_different_text(seed in 0u64..10_000) {
        let a = TextGenerator::new(seed).generate(64);
        let b = TextGenerator::new(seed + 1).generate(64);
        prop_assert_ne!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn generated_matrix_sparsity_is_within_epsilon(seed in 0u64..10_000, tenths in 1u64..9) {
        let requested = tenths as f64 / 10.0;
        let m = MatrixSpec::sparse(96, 96, requested, seed).generate_sparse();
        prop_assert!(
            (m.sparsity() - requested).abs() < 0.05,
            "requested sparsity {requested}, generated {}",
            m.sparsity()
        );
    }

    #[test]
    fn generated_vector_sparsity_is_within_epsilon(seed in 0u64..10_000) {
        // The paper's K-means input: 90 % sparse vectors.
        let data = VectorDataset::generate(VectorDatasetSpec::sparse(200, 64, seed));
        prop_assert!(
            (data.measured_sparsity() - 0.9).abs() < 0.05,
            "measured sparsity {}",
            data.measured_sparsity()
        );
    }

    #[test]
    fn dense_vectors_have_zero_sparsity(seed in 0u64..10_000) {
        let data = VectorDataset::generate(VectorDatasetSpec::dense(50, 16, seed));
        prop_assert!(data.measured_sparsity() < 1e-9);
    }
}
