//! Cross-crate integration tests: the full pipeline from data generation
//! through workload modelling to proxy generation.

use data_motif_proxy::core::decompose::decompose;
use data_motif_proxy::core::features::initial_parameters;
use data_motif_proxy::core::generator::ProxyGenerator;
use data_motif_proxy::core::ProxyBenchmark;
use data_motif_proxy::metrics::{AccuracyReport, MetricId};
use data_motif_proxy::perfmodel::{ArchProfile, ExecutionEngine};
use data_motif_proxy::workloads::{all_workloads, workload_by_kind, ClusterConfig, WorkloadKind};

#[test]
fn real_workloads_and_proxies_are_measured_by_the_same_instrument() {
    let cluster = ClusterConfig::five_node_westmere();
    let engine = ExecutionEngine::new(cluster.node.arch);
    for workload in all_workloads() {
        let real = engine.run(&workload.per_node_profile(&cluster), cluster.tasks_per_node);
        assert!(real.is_finite());
        let proxy = ProxyBenchmark::from_decomposition(
            &decompose(workload.as_ref()),
            initial_parameters(workload.as_ref(), &cluster),
        );
        let measured = proxy.measure(&cluster.node.arch);
        assert!(measured.is_finite());
        assert!(
            measured.runtime_secs < real.runtime_secs,
            "{}: proxy must be faster than the original",
            workload.name()
        );
    }
}

#[test]
fn generated_proxy_keeps_the_input_data_type_and_sparsity() {
    let cluster = ClusterConfig::five_node_westmere();
    for workload in all_workloads() {
        let proxy = ProxyBenchmark::from_decomposition(
            &decompose(workload.as_ref()),
            initial_parameters(workload.as_ref(), &cluster),
        );
        let original = workload.input_descriptor();
        let scaled = proxy.proxy_input();
        assert_eq!(scaled.class, original.class, "{}", workload.name());
        assert_eq!(scaled.sparsity, original.sparsity, "{}", workload.name());
        assert!(scaled.total_bytes < original.total_bytes);
    }
}

#[test]
fn end_to_end_generation_for_pagerank_is_accurate_and_fast() {
    let generator = ProxyGenerator::new(ClusterConfig::five_node_westmere());
    let report = generator.generate_kind(WorkloadKind::PageRank);
    assert!(
        report.accuracy.average() > 0.6,
        "accuracy {}",
        report.accuracy.average()
    );
    assert!(report.speedup > 10.0, "speedup {}", report.speedup);
    assert!(report.iterations <= 30);
    // The decomposition's classes all appear in the proxy DAG.
    assert_eq!(
        report.proxy.dag().num_edges(),
        report.decomposition.components.len()
    );
}

#[test]
fn proxies_transfer_across_architectures_with_consistent_trends() {
    let cluster = ClusterConfig::five_node_westmere();
    let workload = workload_by_kind(WorkloadKind::TeraSort);
    let proxy = ProxyBenchmark::from_decomposition(
        &decompose(workload.as_ref()),
        initial_parameters(workload.as_ref(), &cluster),
    );
    let westmere = proxy.measure(&ArchProfile::westmere_e5645());
    let haswell = proxy.measure(&ArchProfile::haswell_e5_2620_v3());
    let real_w = workload.measure(&ClusterConfig::three_node_westmere_64gb());
    let real_h = workload.measure(&ClusterConfig::three_node_haswell());
    let proxy_speedup = westmere.runtime_secs / haswell.runtime_secs;
    let real_speedup = real_w.runtime_secs / real_h.runtime_secs;
    assert!(proxy_speedup > 1.0 && real_speedup > 1.0);
    assert!(
        (proxy_speedup - real_speedup).abs() / real_speedup < 0.5,
        "proxy {proxy_speedup} vs real {real_speedup}"
    );
}

#[test]
fn one_proxy_tracks_different_input_sparsity() {
    use data_motif_proxy::workloads::hadoop::KMeans;
    use data_motif_proxy::workloads::workload::Workload;
    let cluster = ClusterConfig::five_node_westmere();
    let sparse_workload = KMeans::paper_configuration();
    let dense_workload = KMeans::dense_configuration();
    let proxy = ProxyBenchmark::from_decomposition(
        &decompose(&sparse_workload),
        initial_parameters(&sparse_workload, &cluster),
    );
    let dense_proxy = proxy.with_input(
        dense_workload
            .input_descriptor()
            .scaled_to(proxy.parameters().data_size_bytes),
    );
    let accuracy = AccuracyReport::compare(
        &dense_workload.measure(&cluster),
        &dense_proxy.measure(&cluster.node.arch),
        &MetricId::TUNABLE,
    );
    assert!(
        accuracy.average() > 0.4,
        "dense accuracy {}",
        accuracy.average()
    );
}
