//! The no-spawn-in-steady-state gate: after a suite runner's pools are
//! constructed, repeated suite runs must not spawn a single thread — the
//! whole point of the persistent work-stealing pool is that workers are
//! created once and reused across every proxy of every run.
//!
//! This lives in its own integration-test binary with one `#[test]` so
//! the process-wide [`WorkerPool::total_threads_spawned`] counter cannot
//! be perturbed by unrelated tests creating pools concurrently.

use std::sync::Arc;

use data_motif_proxy::core::runner::SuiteRunner;
use data_motif_proxy::motifs::workers::WorkerPool;
use data_motif_proxy::workloads::ClusterConfig;

#[test]
fn steady_state_suite_runs_spawn_no_threads() {
    let runner = SuiteRunner::new(ClusterConfig::five_node_westmere())
        .with_max_parallel(4)
        .with_intra_parallel(4);

    // The first run constructs the runner's pool (and, lazily, the global
    // pool used by chunked motif kernels) and warms the tuning cache.
    let first = runner.run_all();
    let pool = Arc::clone(runner.worker_pool());
    let spawned_after_first = WorkerPool::total_threads_spawned();
    assert_eq!(
        pool.workers(),
        3,
        "max(inter, intra) - 1 workers: the calling thread participates"
    );

    for _ in 0..3 {
        let again = runner.run_all();
        assert_eq!(
            first.digest(),
            again.digest(),
            "steady-state runs must be byte-identical"
        );
    }

    assert_eq!(
        WorkerPool::total_threads_spawned(),
        spawned_after_first,
        "steady-state suite execution spawned a thread"
    );
    assert!(
        Arc::ptr_eq(&pool, runner.worker_pool()),
        "the runner must keep reusing the same pool"
    );
    assert_eq!(pool.workers(), 3, "worker count must stay constant");
}
