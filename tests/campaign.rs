//! Campaign-engine gates: scenario expansion determinism, result-store
//! byte-identity across cold/warm runs and worker counts, and the
//! acceptance criterion that the bundled paper-tables scenario reproduces
//! the legacy Table VI suite sweep digest-for-digest.

use data_motif_proxy::core::runner::{SuiteRunner, DEFAULT_BASE_SEED, SAMPLE_ELEMENTS};
use data_motif_proxy::scenario::{
    builtin, CampaignRunner, CellResult, ResultStore, Scenario, CODE_MODEL_VERSION,
};
use data_motif_proxy::workloads::{ClusterConfig, WorkloadKind};
use proptest::prelude::*;

/// The acceptance criterion: running the committed
/// `examples/scenarios/paper_tables.toml` through the campaign engine
/// yields cells byte-identical to the legacy `table6` path (a
/// `SuiteRunner::run_all` on the five-node Westmere cluster), and a warm
/// re-run is served ≥ 90 % from the result store.
#[test]
fn paper_tables_scenario_reproduces_the_legacy_table6_sweep() {
    let file = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/scenarios/paper_tables.toml"
    ))
    .expect("the committed scenario file exists");
    let scenario = Scenario::parse(&file).expect("the committed scenario file parses");
    assert_eq!(
        scenario,
        builtin::paper_tables(),
        "the committed file and the embedded builtin must be one source"
    );

    let campaign_runner = CampaignRunner::new();
    let campaign = campaign_runner.run(&scenario);

    // The legacy path: the parallel suite runner with its defaults, as
    // the pre-campaign table6 binary drove it.
    let legacy_runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
    let legacy = legacy_runner.run_all();

    let cells = scenario.expand();
    assert_eq!(campaign.outcomes.len(), 8);
    for (cell, outcome) in cells.iter().zip(&campaign.outcomes) {
        let slice = legacy.run(cell.kind);
        // Same derived seeds, same kernel executions, byte-identical
        // serialized cells.
        assert_eq!(outcome.result.seed, slice.seed, "{}", cell.kind);
        assert_eq!(
            outcome.result.checksum, slice.execution.checksum,
            "{}",
            cell.kind
        );
        assert_eq!(
            outcome.result.kernels_run, slice.execution.kernels_run,
            "{}",
            cell.kind
        );
        let from_legacy = CellResult::compute(cell, slice, CODE_MODEL_VERSION);
        assert_eq!(from_legacy, outcome.result, "{}", cell.kind);
        assert_eq!(
            from_legacy.to_line(),
            outcome.result.to_line(),
            "{}: serialized cells must be byte-identical",
            cell.kind
        );
        assert_eq!(from_legacy.digest(), outcome.result.digest());
    }

    // Warm re-run: ≥ 90 % (here: all) of the cells come from the store,
    // with an unchanged campaign digest.
    let warm = campaign_runner.run(&scenario);
    assert!(
        warm.hit_ratio() >= 0.9,
        "warm hit ratio {:.2} below the 90% gate",
        warm.hit_ratio()
    );
    assert_eq!(warm.digest(), campaign.digest());
    assert_eq!(warm.to_lines(), campaign.to_lines());
}

/// Cold runs at 1 and 8 workers and a disk-served warm run must produce
/// byte-identical reports: the store roundtrips through JSON lines
/// without changing a single bit of any cell.
#[test]
fn store_served_cells_are_byte_identical_across_1_and_8_workers() {
    let mut scenario = Scenario::with_defaults("store-identity");
    scenario.workloads = vec![
        WorkloadKind::TeraSort,
        WorkloadKind::AlexNet,
        WorkloadKind::SparkPageRank,
    ];
    scenario.seeds = vec![DEFAULT_BASE_SEED, 4242];

    let dir = std::env::temp_dir().join(format!("dmpb-campaign-test-{}", std::process::id()));
    let path = dir.join("results.jsonl");
    std::fs::remove_file(&path).ok();

    let cold_serial = CampaignRunner::with_store(ResultStore::open(&path).unwrap())
        .with_workers(1)
        .run(&scenario);
    assert_eq!(cold_serial.cache_hits(), 0);

    let cold_parallel = CampaignRunner::new().with_workers(8).run(&scenario);
    assert_eq!(cold_parallel.cache_hits(), 0);
    assert_eq!(cold_serial.to_lines(), cold_parallel.to_lines());
    assert_eq!(cold_serial.digest(), cold_parallel.digest());

    // Warm run from the persisted bytes, wide worker pool.
    let warm_runner = CampaignRunner::with_store(ResultStore::open(&path).unwrap());
    let warm = warm_runner.with_workers(8).run(&scenario);
    assert_eq!(warm.cache_hits(), warm.outcomes.len());
    assert_eq!(warm.to_lines(), cold_serial.to_lines());
    assert_eq!(warm.digest(), cold_serial.digest());

    std::fs::remove_dir_all(&dir).ok();
}

/// The campaign engine slice of a default scenario matches the legacy
/// suite under a non-default base seed too (the seed axis derives per
/// cell exactly as the runner derives per workload).
#[test]
fn seed_axis_matches_suite_runner_derivation() {
    let mut scenario = Scenario::with_defaults("seeded");
    scenario.workloads = vec![WorkloadKind::KMeans, WorkloadKind::SparkTeraSort];
    scenario.seeds = vec![777];
    let report = CampaignRunner::new().run(&scenario);

    let legacy = SuiteRunner::new(ClusterConfig::five_node_westmere())
        .with_base_seed(777)
        .run_all();
    for cell in report.cells() {
        let slice = legacy.run(cell.workload);
        assert_eq!(cell.seed, slice.seed, "{}", cell.workload);
        assert_eq!(cell.checksum, slice.execution.checksum, "{}", cell.workload);
    }
}

fn scenario_from_draw(
    workload_mask: usize,
    cluster_count: usize,
    seeds: Vec<u64>,
    elements: Vec<u64>,
    exclude_first: bool,
) -> Scenario {
    let mut s = Scenario::with_defaults("prop");
    s.workloads = WorkloadKind::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| workload_mask & (1 << i) != 0)
        .map(|(_, k)| *k)
        .collect();
    if s.workloads.is_empty() {
        s.workloads = vec![WorkloadKind::TeraSort];
    }
    s.clusters = ClusterConfig::NAMES[..cluster_count]
        .iter()
        .map(|n| n.to_string())
        .collect();
    s.seeds = seeds;
    s.elements = elements.into_iter().map(|e| e as usize).collect();
    if exclude_first {
        s.exclude.push(data_motif_proxy::scenario::CellFilter {
            workload: Some(s.workloads[0]),
            ..Default::default()
        });
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expanding the same scenario twice yields identical cell orderings
    /// and fingerprints, and every fingerprint is unique within the
    /// matrix.
    #[test]
    fn expansion_is_deterministic(
        workload_mask in 1usize..256,
        cluster_count in 1usize..4,
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        elements in prop::collection::vec(1u64..5_000, 1..3),
        exclude_first in 0u32..2,
    ) {
        let scenario = scenario_from_draw(
            workload_mask,
            cluster_count,
            vec![seed_a, seed_b],
            elements,
            exclude_first == 1,
        );
        let first = scenario.expand();
        let second = scenario.expand();
        prop_assert_eq!(&first, &second);
        let fingerprints: Vec<u64> =
            first.iter().map(|c| c.fingerprint(CODE_MODEL_VERSION)).collect();
        let again: Vec<u64> =
            second.iter().map(|c| c.fingerprint(CODE_MODEL_VERSION)).collect();
        prop_assert_eq!(&fingerprints, &again);

        // Distinct axis points get distinct content addresses (seed_a ==
        // seed_b collapses the seed axis by dedup at parse time, but the
        // programmatic path keeps both — those cells are then identical,
        // which the store deduplicates by design).
        for (i, cell) in first.iter().enumerate() {
            for (j, other) in first.iter().enumerate().skip(i + 1) {
                if cell.kind == other.kind
                    && cell.cluster_name == other.cluster_name
                    && cell.elements == other.elements
                    && cell.base_seed == other.base_seed
                {
                    continue;
                }
                prop_assert_ne!(
                    fingerprints[i], fingerprints[j],
                    "cells {} and {} collide", i, j
                );
            }
        }
        // Order is the declared nesting: indices are dense and ascending.
        for (i, cell) in first.iter().enumerate() {
            prop_assert_eq!(cell.index, i);
        }
    }

    /// Parsing a rendered scenario file reproduces the scenario: the DSL
    /// and the programmatic constructors agree.
    #[test]
    fn dsl_round_trips_programmatic_scenarios(
        workload_mask in 1usize..256,
        cluster_count in 1usize..4,
        seed in 0u64..u64::MAX,
        elements in 1u64..100_000,
    ) {
        let scenario = scenario_from_draw(
            workload_mask,
            cluster_count,
            vec![seed],
            vec![elements],
            false,
        );
        let mut toml = String::from("[scenario]\nname = \"prop\"\n[axes]\n");
        toml.push_str(&format!(
            "workloads = [{}]\n",
            scenario
                .workloads
                .iter()
                .map(|w| format!("\"{w}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        toml.push_str(&format!(
            "clusters = [{}]\n",
            scenario
                .clusters
                .iter()
                .map(|c| format!("\"{c}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        toml.push_str(&format!("seeds = [{seed}]\nelements = [{elements}]\n"));
        let parsed = Scenario::parse(&toml).expect("rendered scenario parses");
        prop_assert_eq!(parsed.expand(), scenario.expand());
    }
}

/// `SAMPLE_ELEMENTS` is the scenario default — if the suite constant
/// moves, the bundled scenarios must move with it or stop claiming
/// equivalence.
#[test]
fn bundled_scenarios_track_the_suite_defaults() {
    assert_eq!(
        builtin::paper_tables().elements,
        vec![SAMPLE_ELEMENTS],
        "paper_tables.toml drifted from SAMPLE_ELEMENTS"
    );
    assert_eq!(builtin::paper_tables().seeds, vec![DEFAULT_BASE_SEED]);
    assert_eq!(builtin::cross_architecture().seeds, vec![DEFAULT_BASE_SEED]);
}
