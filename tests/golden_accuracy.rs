//! Golden accuracy test: pins the Table VI-style behaviour of the five
//! proxies on the Westmere cluster model.
//!
//! The paper's Table VI shows each proxy reproducing its workload's
//! runtime behaviour at a ~100x speedup.  A proxy's absolute runtime is
//! *deliberately* orders of magnitude smaller than the original's, so the
//! meaningful "runtime deviation" is over the architecture-normalised
//! execution rate — IPC, the metric that determines runtime once the data
//! size is scaled out.  This suite pins:
//!
//! * IPC deviation ≤ 15 % between each proxy and its real workload;
//! * runtime speedup ≥ 100x for every proxy (Table VI shows 136x–743x);
//! * suite-level average metric accuracy, as a regression floor.

use data_motif_proxy::core::runner::SuiteRunner;
use data_motif_proxy::metrics::MetricId;
use data_motif_proxy::workloads::ClusterConfig;

#[test]
fn proxies_match_real_runtime_behaviour_on_westmere() {
    let suite = SuiteRunner::new(ClusterConfig::five_node_westmere()).run_all();

    for run in &suite.runs {
        let report = &run.report;
        let real_ipc = report.real_metrics.get(MetricId::Ipc);
        let proxy_ipc = report.proxy_metrics.get(MetricId::Ipc);
        let deviation = (proxy_ipc - real_ipc).abs() / real_ipc;
        assert!(
            deviation <= 0.15,
            "{}: IPC deviation {:.1}% exceeds 15% (real {real_ipc:.3}, proxy {proxy_ipc:.3})",
            run.kind,
            deviation * 100.0
        );

        assert!(
            report.speedup >= 100.0,
            "{}: speedup {:.0}x is below the Table VI ~100x floor",
            run.kind,
            report.speedup
        );

        // Regression floor for the per-workload metric-vector accuracy
        // (Equation 3 averaged over the tunable metrics).  The paper
        // reaches >90 %; the reproduction currently reaches 61–87 % —
        // these floors pin today's behaviour so it can only improve.
        assert!(
            report.accuracy.average() >= 0.60,
            "{}: average accuracy {:.1}% fell below the pinned floor",
            run.kind,
            report.accuracy.average() * 100.0
        );
    }

    assert!(
        suite.average_accuracy() >= 0.70,
        "suite average accuracy {:.1}% fell below the pinned floor",
        suite.average_accuracy() * 100.0
    );
    assert!(suite.min_speedup() >= 100.0);
}
