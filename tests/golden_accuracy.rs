//! Golden accuracy test: pins the Table VI-style behaviour of the
//! eight-proxy suite (the paper's five workloads plus the three Spark
//! stack twins) on the Westmere cluster model.
//!
//! The paper's Table VI shows each proxy reproducing its workload's
//! runtime behaviour at a ~100x speedup.  A proxy's absolute runtime is
//! *deliberately* orders of magnitude smaller than the original's, so the
//! meaningful "runtime deviation" is over the architecture-normalised
//! execution rate — IPC, the metric that determines runtime once the data
//! size is scaled out.  This suite pins:
//!
//! * IPC deviation ≤ 15 % between each proxy and its real workload;
//! * runtime speedup ≥ 100x for every proxy (Table VI shows 136x–743x);
//! * suite-level average metric accuracy, as a regression floor;
//! * determinism: derived per-proxy seeds and the eight-entry
//!   [`SuiteReport`](data_motif_proxy::core::SuiteReport) digest are
//!   stable run to run and independent of worker scheduling.
//!
//! CI runs this file in release mode as the **accuracy gate**: a model or
//! tuner change that pushes any of the eight workloads past the deviation
//! or speedup floors fails the build.
//!
//! Tuning all eight proxies is the expensive step, so the file tunes two
//! independent suites once (a parallel one and a single-worker one) and
//! asserts everything against those.

use std::sync::OnceLock;

use data_motif_proxy::core::runner::{SuiteReport, SuiteRunner};
use data_motif_proxy::metrics::MetricId;
use data_motif_proxy::workloads::{ClusterConfig, Framework, WorkloadKind};

/// The suite tuned with the default (fully parallel) runner.
fn parallel_suite() -> &'static SuiteReport {
    static SUITE: OnceLock<SuiteReport> = OnceLock::new();
    SUITE.get_or_init(|| SuiteRunner::new(ClusterConfig::five_node_westmere()).run_all())
}

/// The same suite tuned by an independent single-worker runner.
fn serial_suite() -> &'static SuiteReport {
    static SUITE: OnceLock<SuiteReport> = OnceLock::new();
    SUITE.get_or_init(|| {
        SuiteRunner::new(ClusterConfig::five_node_westmere())
            .with_max_parallel(1)
            .run_all()
    })
}

#[test]
fn proxies_match_real_runtime_behaviour_on_westmere() {
    let suite = parallel_suite();
    assert_eq!(
        suite.runs.len(),
        8,
        "the suite must cover all eight workloads"
    );

    for run in &suite.runs {
        let report = &run.report;
        let real_ipc = report.real_metrics.get(MetricId::Ipc);
        let proxy_ipc = report.proxy_metrics.get(MetricId::Ipc);
        let deviation = (proxy_ipc - real_ipc).abs() / real_ipc;
        assert!(
            deviation <= 0.15,
            "{}: IPC deviation {:.1}% exceeds 15% (real {real_ipc:.3}, proxy {proxy_ipc:.3})",
            run.kind,
            deviation * 100.0
        );

        assert!(
            report.speedup >= 100.0,
            "{}: speedup {:.0}x is below the Table VI ~100x floor",
            run.kind,
            report.speedup
        );

        // Regression floor for the per-workload metric-vector accuracy
        // (Equation 3 averaged over the tunable metrics).  The paper
        // reaches >90 %; the reproduction currently reaches 61–88 % —
        // these floors pin today's behaviour so it can only improve.
        assert!(
            report.accuracy.average() >= 0.60,
            "{}: average accuracy {:.1}% fell below the pinned floor",
            run.kind,
            report.accuracy.average() * 100.0
        );
    }

    assert!(
        suite.average_accuracy() >= 0.70,
        "suite average accuracy {:.1}% fell below the pinned floor",
        suite.average_accuracy() * 100.0
    );
    assert!(suite.min_speedup() >= 100.0);
}

#[test]
fn spark_twins_share_the_motif_dag_but_not_the_stack_behaviour() {
    let suite = parallel_suite();
    for kind in WorkloadKind::ALL {
        let Some(twin) = kind.stack_twin() else {
            continue;
        };
        if kind.framework() != Framework::Hadoop {
            continue; // visit each pair once, from the Hadoop side
        }
        let hadoop = &suite.run(kind).report;
        let spark = &suite.run(twin).report;
        // Same decomposition: identical motif components and class ratios.
        assert_eq!(
            hadoop.decomposition.components, spark.decomposition.components,
            "{kind}/{twin}"
        );
        assert_eq!(
            hadoop.decomposition.class_ratios,
            spark.decomposition.class_ratios
        );
        // Different stack: the real targets the two proxies were tuned
        // against must differ.
        assert_ne!(
            hadoop.real_metrics, spark.real_metrics,
            "{kind}/{twin} stacks produced identical real metrics"
        );
    }
}

#[test]
fn derived_seeds_are_deterministic_and_distinct_across_all_eight() {
    let seeds_a: Vec<u64> = parallel_suite().runs.iter().map(|r| r.seed).collect();
    let seeds_b: Vec<u64> = serial_suite().runs.iter().map(|r| r.seed).collect();
    assert_eq!(seeds_a, seeds_b, "derived seeds must be deterministic");
    assert_eq!(seeds_a.len(), 8);

    let mut unique = seeds_a.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), 8, "every workload gets its own derived seed");

    // The three Spark workloads occupy positions 5..8 of the suite order
    // and their sample executions run real kernels like everyone else's.
    for run in &parallel_suite().runs[5..] {
        assert_eq!(run.kind.framework(), Framework::Spark, "{}", run.kind);
        assert!(run.execution.kernels_run > 0, "{}", run.kind);
    }
}

#[test]
fn eight_entry_suite_digest_is_stable_across_runs_and_worker_counts() {
    let parallel = parallel_suite();
    let serial = serial_suite();
    assert_eq!(parallel.runs.len(), 8);
    assert_eq!(
        parallel.digest(),
        serial.digest(),
        "the eight-entry report digest must not depend on scheduling"
    );
    let kinds: Vec<WorkloadKind> = parallel.runs.iter().map(|r| r.kind).collect();
    assert_eq!(kinds, WorkloadKind::ALL.to_vec());
}
