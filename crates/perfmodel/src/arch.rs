//! Processor and cluster descriptions (Table IV and Section IV of the paper).
//!
//! Two architectures matter for the evaluation:
//!
//! * **Intel Xeon E5645 (Westmere)** — the main five-node cluster of
//!   Section III (Table IV): 6 cores @ 2.40 GHz, 32 KB L1I + 32 KB L1D per
//!   core, 256 KB L2 per core, 12 MB shared L3.
//! * **Intel Xeon E5-2620 v3 (Haswell)** — the newer-generation processor
//!   of the Section IV-C cross-architecture case study: 6 cores @ 2.40 GHz,
//!   same L1/L2 sizes, 15 MB L3, wider issue, better branch prediction and
//!   higher memory bandwidth.
//!
//! [`NodeConfig`] and `ClusterConfig`-style scaling live with the workload
//! models; here we only describe a node's processor and its memory / disk
//! capabilities as needed by the performance model.

use crate::cache::CacheConfig;

/// Branch-predictor sizing and behaviour knobs for one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchPredictorConfig {
    /// log2 of the number of two-bit counters in the gshare table.
    pub gshare_bits: u32,
    /// Number of history bits folded into the index.
    pub history_bits: u32,
    /// Misprediction penalty in cycles.
    pub misprediction_penalty_cycles: f64,
}

/// Description of one processor microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchProfile {
    /// Marketing / reporting name, e.g. `"Xeon E5645 (Westmere)"`.
    pub name: &'static str,
    /// Core clock frequency in Hz.
    pub frequency_hz: f64,
    /// Physical cores per processor.
    pub cores_per_socket: u32,
    /// Sockets per node.
    pub sockets: u32,
    /// Peak sustainable issue rate in instructions per cycle.
    pub issue_width: f64,
    /// Base CPI achieved on cache-resident, well-predicted code.
    pub base_cpi: f64,
    /// L1 instruction cache geometry (per core).
    pub l1i: CacheConfig,
    /// L1 data cache geometry (per core).
    pub l1d: CacheConfig,
    /// L2 cache geometry (per core).
    pub l2: CacheConfig,
    /// Last-level cache geometry (shared).
    pub l3: CacheConfig,
    /// L2 hit latency in cycles (penalty applied to L1 misses that hit L2).
    pub l2_latency_cycles: f64,
    /// L3 hit latency in cycles.
    pub l3_latency_cycles: f64,
    /// Main-memory latency in cycles.
    pub memory_latency_cycles: f64,
    /// Fraction of a miss's latency hidden by memory-level parallelism /
    /// out-of-order execution, in `[0, 1)`.
    pub mlp_overlap: f64,
    /// Branch predictor configuration.
    pub branch: BranchPredictorConfig,
    /// Peak memory bandwidth per node in MB/s.
    pub peak_memory_bw_mbps: f64,
    /// Peak disk bandwidth per node in MB/s (cluster nodes use spinning
    /// disks in the paper's testbed).
    pub peak_disk_bw_mbps: f64,
}

impl ArchProfile {
    /// Intel Xeon E5645 (Westmere-EP), the Table IV configuration.
    pub fn westmere_e5645() -> Self {
        Self {
            name: "Xeon E5645 (Westmere)",
            frequency_hz: 2.40e9,
            cores_per_socket: 6,
            sockets: 2,
            issue_width: 4.0,
            base_cpi: 0.55,
            l1i: CacheConfig::new(32 * 1024, 64, 4),
            l1d: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new(256 * 1024, 64, 8),
            l3: CacheConfig::new(12 * 1024 * 1024, 64, 16),
            l2_latency_cycles: 10.0,
            l3_latency_cycles: 38.0,
            memory_latency_cycles: 180.0,
            mlp_overlap: 0.78,
            branch: BranchPredictorConfig {
                gshare_bits: 13,
                history_bits: 10,
                misprediction_penalty_cycles: 17.0,
            },
            peak_memory_bw_mbps: 25_000.0,
            peak_disk_bw_mbps: 140.0,
        }
    }

    /// Intel Xeon E5-2620 v3 (Haswell-EP), the Section IV-C configuration.
    pub fn haswell_e5_2620_v3() -> Self {
        Self {
            name: "Xeon E5-2620 v3 (Haswell)",
            frequency_hz: 2.40e9,
            cores_per_socket: 6,
            sockets: 2,
            issue_width: 4.0,
            base_cpi: 0.42,
            l1i: CacheConfig::new(32 * 1024, 64, 8),
            l1d: CacheConfig::new(32 * 1024, 64, 8),
            l2: CacheConfig::new(256 * 1024, 64, 8),
            l3: CacheConfig::new(16 * 1024 * 1024, 64, 16),
            l2_latency_cycles: 11.0,
            l3_latency_cycles: 34.0,
            memory_latency_cycles: 160.0,
            mlp_overlap: 0.86,
            branch: BranchPredictorConfig {
                gshare_bits: 14,
                history_bits: 12,
                misprediction_penalty_cycles: 15.0,
            },
            peak_memory_bw_mbps: 42_000.0,
            peak_disk_bw_mbps: 160.0,
        }
    }

    /// Slugs of the modelled microarchitectures, in generation order.
    /// These are the values a scenario file's `architectures` axis may
    /// name; each resolves through [`ArchProfile::by_name`].
    pub const NAMES: [&'static str; 2] = ["westmere", "haswell"];

    /// Looks up a modelled microarchitecture by name.  Accepts the slugs
    /// of [`ArchProfile::NAMES`] and the reporting names
    /// (e.g. `"Xeon E5645 (Westmere)"`), case-insensitively.
    pub fn by_name(name: &str) -> Option<Self> {
        type Builder = fn() -> ArchProfile;
        const REGISTRY: [(&str, Builder); 2] = [
            ("westmere", ArchProfile::westmere_e5645),
            ("haswell", ArchProfile::haswell_e5_2620_v3),
        ];
        let wanted = name.trim().to_ascii_lowercase();
        REGISTRY
            .iter()
            .find(|(slug, build)| *slug == wanted || build().name.to_ascii_lowercase() == wanted)
            .map(|(_, build)| build())
    }

    /// Total physical cores in one node.
    pub fn cores_per_node(&self) -> u32 {
        self.cores_per_socket * self.sockets
    }
}

/// One node of an evaluation cluster (processor + memory + disk).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Processor micro-architecture.
    pub arch: ArchProfile,
    /// Installed memory in GB.
    pub memory_gb: u32,
    /// Ethernet bandwidth between nodes in MB/s (1 GbE in the paper).
    pub network_bw_mbps: f64,
}

impl NodeConfig {
    /// The Table IV node: dual Xeon E5645, 32 GB DDR3, 1 GbE.
    pub fn westmere_node() -> Self {
        Self {
            arch: ArchProfile::westmere_e5645(),
            memory_gb: 32,
            network_bw_mbps: 117.0,
        }
    }

    /// The Section IV-B node: dual Xeon E5645, 64 GB, 1 GbE.
    pub fn westmere_node_64gb() -> Self {
        Self {
            memory_gb: 64,
            ..Self::westmere_node()
        }
    }

    /// The Section IV-C node: dual Xeon E5-2620 v3, 64 GB, 1 GbE.
    pub fn haswell_node() -> Self {
        Self {
            arch: ArchProfile::haswell_e5_2620_v3(),
            memory_gb: 64,
            network_bw_mbps: 117.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn westmere_matches_table_iv() {
        let a = ArchProfile::westmere_e5645();
        assert_eq!(a.cores_per_socket, 6);
        assert_eq!(a.l1d.size_bytes, 32 * 1024);
        assert_eq!(a.l2.size_bytes, 256 * 1024);
        assert_eq!(a.l3.size_bytes, 12 * 1024 * 1024);
        assert_eq!(a.frequency_hz, 2.40e9);
        assert_eq!(a.cores_per_node(), 12);
    }

    #[test]
    fn haswell_is_a_newer_generation() {
        let w = ArchProfile::westmere_e5645();
        let h = ArchProfile::haswell_e5_2620_v3();
        assert!(h.base_cpi < w.base_cpi, "Haswell should retire faster");
        assert!(h.mlp_overlap > w.mlp_overlap);
        assert!(h.peak_memory_bw_mbps > w.peak_memory_bw_mbps);
        assert!(h.l3.size_bytes > w.l3.size_bytes);
    }

    #[test]
    fn architectures_resolve_by_slug_and_reporting_name() {
        for slug in ArchProfile::NAMES {
            let arch = ArchProfile::by_name(slug).expect(slug);
            assert_eq!(ArchProfile::by_name(arch.name).expect(arch.name), arch);
        }
        assert_eq!(
            ArchProfile::by_name("Westmere"),
            Some(ArchProfile::westmere_e5645())
        );
        assert_eq!(
            ArchProfile::by_name("haswell"),
            Some(ArchProfile::haswell_e5_2620_v3())
        );
        assert_eq!(ArchProfile::by_name("skylake"), None);
    }

    #[test]
    fn node_configs_match_paper_clusters() {
        assert_eq!(NodeConfig::westmere_node().memory_gb, 32);
        assert_eq!(NodeConfig::westmere_node_64gb().memory_gb, 64);
        assert_eq!(
            NodeConfig::haswell_node().arch.name,
            "Xeon E5-2620 v3 (Haswell)"
        );
    }
}
