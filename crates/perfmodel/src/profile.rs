//! Operation profiles — the interface between workloads/motifs and the
//! performance model.
//!
//! An [`OpProfile`] summarises what a piece of computation does to the
//! machine: how many dynamic instructions of each class it executes, how it
//! walks memory, how predictable its branches are, how much code it touches
//! and how many bytes it moves to and from disk.  Motif cost models emit
//! `OpProfile`s, workload models compose them (together with software-stack
//! overhead profiles), and the [`crate::engine::ExecutionEngine`] turns a
//! profile into the metric vector of Table V.
//!
//! Profiles form a small algebra: [`OpProfile::scaled`] multiplies the work
//! by a factor (more data → proportionally more instructions and I/O, same
//! locality), and [`OpProfile::merge`] concatenates two pieces of work into
//! one profile, blending their mixes and memory behaviour by their
//! instruction weights.

use dmpb_metrics::InstructionMix;

use crate::access::AccessPattern;

/// Dynamic instruction counts by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstructionCounts {
    /// Integer ALU instructions.
    pub integer: u64,
    /// Floating-point instructions.
    pub floating_point: u64,
    /// Load instructions.
    pub load: u64,
    /// Store instructions.
    pub store: u64,
    /// Branch instructions.
    pub branch: u64,
}

impl InstructionCounts {
    /// Total dynamic instruction count.
    pub fn total(&self) -> u64 {
        self.integer + self.floating_point + self.load + self.store + self.branch
    }

    /// Number of memory (load + store) instructions.
    pub fn memory(&self) -> u64 {
        self.load + self.store
    }

    /// The instruction mix these counts imply.
    pub fn mix(&self) -> InstructionMix {
        InstructionMix::from_counts(
            self.integer,
            self.floating_point,
            self.load,
            self.store,
            self.branch,
        )
    }

    /// Element-wise sum.
    pub fn add(&self, other: &InstructionCounts) -> InstructionCounts {
        InstructionCounts {
            integer: self.integer + other.integer,
            floating_point: self.floating_point + other.floating_point,
            load: self.load + other.load,
            store: self.store + other.store,
            branch: self.branch + other.branch,
        }
    }

    /// Scales every count by `factor`, rounding to the nearest integer.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> InstructionCounts {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative"
        );
        let s = |v: u64| (v as f64 * factor).round() as u64;
        InstructionCounts {
            integer: s(self.integer),
            floating_point: s(self.floating_point),
            load: s(self.load),
            store: s(self.store),
            branch: s(self.branch),
        }
    }
}

/// One region of memory touched by the computation and how it is walked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySegment {
    /// Access pattern over the region.
    pub pattern: AccessPattern,
    /// Size of the region in bytes.
    pub working_set_bytes: u64,
    /// Fraction of all memory accesses that target this segment, in `[0, 1]`.
    pub access_weight: f64,
}

impl MemorySegment {
    /// Creates a segment.  Weights are relative: [`OpProfile::normalized_segments`]
    /// rescales them to sum to one, so any non-negative value is accepted.
    ///
    /// # Panics
    ///
    /// Panics if the working set is zero or the weight is negative or not
    /// finite.
    pub fn new(pattern: AccessPattern, working_set_bytes: u64, access_weight: f64) -> Self {
        assert!(working_set_bytes > 0, "working set must be non-zero");
        assert!(
            access_weight.is_finite() && access_weight >= 0.0,
            "access weight must be a non-negative finite number"
        );
        Self {
            pattern,
            working_set_bytes,
            access_weight,
        }
    }
}

/// Branch behaviour of the computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchBehavior {
    /// Fraction of branches that are taken.
    pub taken_ratio: f64,
    /// Regularity of the outcome pattern in `[0, 1]`: 1.0 means perfectly
    /// repetitive (loop-closing branches), 0.0 means data-dependent and
    /// effectively random (comparison results on unsorted data).
    pub regularity: f64,
}

impl BranchBehavior {
    /// Creates a branch-behaviour descriptor.
    ///
    /// # Panics
    ///
    /// Panics if either field is outside `[0, 1]`.
    pub fn new(taken_ratio: f64, regularity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&taken_ratio),
            "taken ratio must be within [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&regularity),
            "regularity must be within [0, 1]"
        );
        Self {
            taken_ratio,
            regularity,
        }
    }

    /// Loop-dominated, highly predictable branch behaviour.
    pub fn loop_dominated() -> Self {
        Self::new(0.9, 0.97)
    }

    /// Data-dependent, hard-to-predict branch behaviour.
    pub fn data_dependent() -> Self {
        Self::new(0.5, 0.15)
    }

    /// Weighted blend of two behaviours (`t` = weight of `other`).
    pub fn blend(&self, other: &BranchBehavior, t: f64) -> Self {
        let t = t.clamp(0.0, 1.0);
        Self {
            taken_ratio: self.taken_ratio * (1.0 - t) + other.taken_ratio * t,
            regularity: self.regularity * (1.0 - t) + other.regularity * t,
        }
    }
}

/// Complete description of one unit of work as seen by the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Human-readable label (motif or phase name), used in reports.
    pub name: String,
    /// Dynamic instruction counts.
    pub instructions: InstructionCounts,
    /// Memory regions and how they are accessed.  Weights should sum to
    /// (approximately) one; [`OpProfile::normalized_segments`] renormalises.
    pub memory_segments: Vec<MemorySegment>,
    /// Branch behaviour.
    pub branch: BranchBehavior,
    /// Bytes of distinct code executed (drives L1I behaviour; big software
    /// stacks like the JVM have footprints far beyond the 32 KB L1I).
    pub code_footprint_bytes: u64,
    /// Bytes read from disk over the lifetime of the work.
    pub disk_read_bytes: u64,
    /// Bytes written to disk over the lifetime of the work.
    pub disk_write_bytes: u64,
    /// Fraction of the work that can run in parallel across tasks
    /// (Amdahl's law), in `[0, 1]`.
    pub parallel_fraction: f64,
}

impl OpProfile {
    /// Creates an empty profile with the given name.
    pub fn new<S: Into<String>>(name: S) -> Self {
        Self {
            name: name.into(),
            instructions: InstructionCounts::default(),
            memory_segments: Vec::new(),
            branch: BranchBehavior::loop_dominated(),
            code_footprint_bytes: 16 * 1024,
            disk_read_bytes: 0,
            disk_write_bytes: 0,
            parallel_fraction: 0.95,
        }
    }

    /// Total dynamic instruction count.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.total()
    }

    /// Total disk traffic in bytes.
    pub fn total_disk_bytes(&self) -> u64 {
        self.disk_read_bytes + self.disk_write_bytes
    }

    /// Memory segments with weights renormalised to sum to one.  Returns an
    /// empty vector if the profile has no segments.
    pub fn normalized_segments(&self) -> Vec<MemorySegment> {
        let total: f64 = self.memory_segments.iter().map(|s| s.access_weight).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        self.memory_segments
            .iter()
            .map(|s| MemorySegment {
                access_weight: s.access_weight / total,
                ..*s
            })
            .collect()
    }

    /// Scales the amount of work (instructions and disk traffic) by
    /// `factor`, keeping locality descriptors untouched.  Working sets are
    /// scaled sub-linearly (square root) to reflect that processing more
    /// data enlarges hot structures slower than total volume — e.g. a
    /// bigger TeraSort input grows each task's sort buffer only up to the
    /// configured chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> OpProfile {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative"
        );
        let ws_factor = factor.sqrt().max(f64::MIN_POSITIVE);
        OpProfile {
            name: self.name.clone(),
            instructions: self.instructions.scaled(factor),
            memory_segments: self
                .memory_segments
                .iter()
                .map(|s| MemorySegment {
                    working_set_bytes: ((s.working_set_bytes as f64 * ws_factor).round() as u64)
                        .max(1),
                    ..*s
                })
                .collect(),
            branch: self.branch,
            code_footprint_bytes: self.code_footprint_bytes,
            disk_read_bytes: (self.disk_read_bytes as f64 * factor).round() as u64,
            disk_write_bytes: (self.disk_write_bytes as f64 * factor).round() as u64,
            parallel_fraction: self.parallel_fraction,
        }
    }

    /// Merges another profile into this one, as if the two pieces of work
    /// ran back to back.  Instruction counts and disk bytes add; memory
    /// segments are concatenated with weights rescaled by each side's share
    /// of memory instructions; branch behaviour and the parallel fraction
    /// blend by branch / instruction weight; the code footprint adds
    /// (different code bodies).
    pub fn merge(&self, other: &OpProfile) -> OpProfile {
        let mem_self = self.instructions.memory() as f64;
        let mem_other = other.instructions.memory() as f64;
        let mem_total = mem_self + mem_other;
        let mut segments = Vec::new();
        if mem_total > 0.0 {
            for s in self.normalized_segments() {
                segments.push(MemorySegment {
                    access_weight: s.access_weight * (mem_self / mem_total),
                    ..s
                });
            }
            for s in other.normalized_segments() {
                segments.push(MemorySegment {
                    access_weight: s.access_weight * (mem_other / mem_total),
                    ..s
                });
            }
        }

        let br_self = self.instructions.branch as f64;
        let br_other = other.instructions.branch as f64;
        let branch = if br_self + br_other > 0.0 {
            self.branch
                .blend(&other.branch, br_other / (br_self + br_other))
        } else {
            self.branch
        };

        let inst_self = self.total_instructions() as f64;
        let inst_other = other.total_instructions() as f64;
        let parallel_fraction = if inst_self + inst_other > 0.0 {
            (self.parallel_fraction * inst_self + other.parallel_fraction * inst_other)
                / (inst_self + inst_other)
        } else {
            self.parallel_fraction
        };

        OpProfile {
            name: format!("{}+{}", self.name, other.name),
            instructions: self.instructions.add(&other.instructions),
            memory_segments: segments,
            branch,
            code_footprint_bytes: self.code_footprint_bytes.max(other.code_footprint_bytes)
                + self.code_footprint_bytes.min(other.code_footprint_bytes) / 4,
            disk_read_bytes: self.disk_read_bytes + other.disk_read_bytes,
            disk_write_bytes: self.disk_write_bytes + other.disk_write_bytes,
            parallel_fraction,
        }
    }

    /// Merges a whole sequence of profiles (`None` if the iterator is
    /// empty).
    pub fn merge_all<I: IntoIterator<Item = OpProfile>>(profiles: I) -> Option<OpProfile> {
        profiles.into_iter().reduce(|a, b| a.merge(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str, loads: u64) -> OpProfile {
        OpProfile {
            name: name.to_string(),
            instructions: InstructionCounts {
                integer: 100,
                floating_point: 20,
                load: loads,
                store: 30,
                branch: 40,
            },
            memory_segments: vec![MemorySegment::new(AccessPattern::Sequential, 1 << 20, 1.0)],
            branch: BranchBehavior::loop_dominated(),
            code_footprint_bytes: 8 * 1024,
            disk_read_bytes: 1000,
            disk_write_bytes: 500,
            parallel_fraction: 0.9,
        }
    }

    #[test]
    fn counts_total_and_mix() {
        let c = InstructionCounts {
            integer: 40,
            floating_point: 10,
            load: 25,
            store: 15,
            branch: 10,
        };
        assert_eq!(c.total(), 100);
        assert_eq!(c.memory(), 40);
        assert!((c.mix().integer - 0.4).abs() < 1e-12);
    }

    #[test]
    fn scaled_counts_round() {
        let c = InstructionCounts {
            integer: 3,
            floating_point: 0,
            load: 0,
            store: 0,
            branch: 0,
        };
        assert_eq!(c.scaled(2.5).integer, 8);
        assert_eq!(c.scaled(0.0).integer, 0);
    }

    #[test]
    fn scaling_preserves_mix_and_scales_io() {
        let p = profile("a", 50);
        let s = p.scaled(10.0);
        assert_eq!(s.total_instructions(), p.total_instructions() * 10);
        assert_eq!(s.disk_read_bytes, 10_000);
        let m0 = p.instructions.mix();
        let m1 = s.instructions.mix();
        assert!((m0.integer - m1.integer).abs() < 1e-9);
        // Working set grows sub-linearly.
        assert!(
            s.memory_segments[0].working_set_bytes < 10 * p.memory_segments[0].working_set_bytes
        );
        assert!(s.memory_segments[0].working_set_bytes > p.memory_segments[0].working_set_bytes);
    }

    #[test]
    fn merge_adds_instructions_and_io() {
        let a = profile("a", 50);
        let b = profile("b", 150);
        let m = a.merge(&b);
        assert_eq!(
            m.total_instructions(),
            a.total_instructions() + b.total_instructions()
        );
        assert_eq!(m.disk_read_bytes, 2000);
        assert_eq!(m.code_footprint_bytes, 8 * 1024 + 2 * 1024);
    }

    #[test]
    fn merge_weights_segments_by_memory_share() {
        let a = profile("a", 70); // memory = 100
        let b = profile("b", 270); // memory = 300
        let m = a.merge(&b);
        let weights: Vec<f64> = m.memory_segments.iter().map(|s| s.access_weight).collect();
        assert_eq!(weights.len(), 2);
        assert!((weights[0] - 0.25).abs() < 1e-9, "{weights:?}");
        assert!((weights[1] - 0.75).abs() < 1e-9, "{weights:?}");
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_segments_sum_to_one() {
        let mut p = profile("a", 10);
        p.memory_segments = vec![
            MemorySegment::new(AccessPattern::Random, 1 << 16, 0.5),
            MemorySegment::new(AccessPattern::Sequential, 1 << 20, 1.5),
        ];
        let n = p.normalized_segments();
        let sum: f64 = n.iter().map(|s| s.access_weight).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((n[0].access_weight - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_all_of_empty_is_none() {
        assert!(OpProfile::merge_all(Vec::new()).is_none());
    }

    #[test]
    fn merge_all_folds_left() {
        let merged =
            OpProfile::merge_all(vec![profile("a", 10), profile("b", 10), profile("c", 10)])
                .unwrap();
        assert_eq!(
            merged.total_instructions(),
            3 * profile("x", 10).total_instructions()
        );
    }

    #[test]
    fn branch_behavior_blend_is_bounded() {
        let a = BranchBehavior::loop_dominated();
        let b = BranchBehavior::data_dependent();
        let m = a.blend(&b, 0.5);
        assert!(m.regularity < a.regularity && m.regularity > b.regularity);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn segment_rejects_negative_weight() {
        let _ = MemorySegment::new(AccessPattern::Random, 100, -0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn scaled_rejects_negative_factor() {
        let _ = profile("a", 10).scaled(-1.0);
    }
}
