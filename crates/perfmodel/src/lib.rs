//! # dmpb-perfmodel — architectural performance-model substrate
//!
//! The paper measures both the original workloads and the generated proxy
//! benchmarks with Linux `perf` reading the hardware performance monitoring
//! counters (PMCs) of two Intel Xeon machines — a Westmere E5645 cluster
//! (Table IV) and a Haswell E5-2620 v3 cluster (Section IV-C).  Neither the
//! machines nor the counters exist in this reproduction, so this crate is
//! the substitute instrument: a deterministic architectural performance
//! model that produces the full metric vector of Table V for any workload
//! expressed as an [`profile::OpProfile`].
//!
//! The model has the following parts:
//!
//! * [`arch`] — [`arch::ArchProfile`] descriptions of the two processors
//!   and [`arch::NodeConfig`]s of the evaluation clusters;
//! * [`cache`] / [`hierarchy`] — set-associative LRU caches combined into
//!   the L1I / L1D / L2 / L3 hierarchy;
//! * [`branch`] — bimodal and gshare branch predictors;
//! * [`access`] — memory access-pattern descriptors and the sampled
//!   synthetic address streams derived from them;
//! * [`profile`] — [`profile::OpProfile`], the workload-side interface:
//!   dynamic instruction counts, memory segments, branch behaviour,
//!   code footprint and disk I/O volume;
//! * [`pipeline`] — a CPI model that folds cache and branch penalties into
//!   IPC;
//! * [`engine`] — [`engine::ExecutionEngine`], which runs an `OpProfile`
//!   through all of the above and emits a [`dmpb_metrics::MetricVector`].
//!
//! Both the "real" workload models (`dmpb-workloads`) and the proxy
//! benchmarks (`dmpb-core`) are measured by this same engine, mirroring the
//! paper's use of one instrument on both sides of the comparison.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod arch;
pub mod branch;
pub mod cache;
pub mod engine;
pub mod hierarchy;
pub mod pipeline;
pub mod profile;

pub use arch::{ArchProfile, NodeConfig};
pub use engine::ExecutionEngine;
pub use profile::{InstructionCounts, MemorySegment, OpProfile};
