//! The modelled cache hierarchy: per-core L1I and L1D, private L2 and a
//! shared L3, as configured by an [`crate::arch::ArchProfile`].
//!
//! The hierarchy is inclusive-agnostic: each level is looked up only when
//! the previous level missed, which is exactly how the hit ratios of
//! Table V are defined (`L2 hit ratio` = hits in L2 / accesses that reached
//! L2).

use crate::arch::ArchProfile;
use crate::cache::{AccessOutcome, Cache, CacheStats};

/// Which cache level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in the first-level cache (L1I or L1D).
    L1,
    /// Hit in the unified L2.
    L2,
    /// Hit in the shared L3.
    L3,
    /// Missed everywhere; served by main memory.
    Memory,
}

/// A three-level cache hierarchy with a split first level.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by an architecture profile.
    pub fn for_arch(arch: &ArchProfile) -> Self {
        Self {
            l1i: Cache::new(arch.l1i),
            l1d: Cache::new(arch.l1d),
            l2: Cache::new(arch.l2),
            l3: Cache::new(arch.l3),
        }
    }

    /// Performs a data access (load or store) at `address`.
    pub fn access_data(&mut self, address: u64) -> ServedBy {
        if self.l1d.access(address) == AccessOutcome::Hit {
            return ServedBy::L1;
        }
        self.access_shared(address)
    }

    /// Performs an instruction fetch at `address`.
    pub fn access_instruction(&mut self, address: u64) -> ServedBy {
        if self.l1i.access(address) == AccessOutcome::Hit {
            return ServedBy::L1;
        }
        self.access_shared(address)
    }

    fn access_shared(&mut self, address: u64) -> ServedBy {
        if self.l2.access(address) == AccessOutcome::Hit {
            return ServedBy::L2;
        }
        if self.l3.access(address) == AccessOutcome::Hit {
            return ServedBy::L3;
        }
        ServedBy::Memory
    }

    /// Clears all statistics while keeping cache contents, so that a
    /// warm-up pass does not distort steady-state hit ratios.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
    }

    /// Statistics of the L1 instruction cache.
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// Statistics of the L1 data cache.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// Statistics of the L2 cache (accesses that missed in either L1).
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Statistics of the L3 cache (accesses that missed in L2).
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::for_arch(&ArchProfile::westmere_e5645())
    }

    #[test]
    fn small_working_set_hits_l1() {
        let mut h = hierarchy();
        // 16 KB working set fits comfortably in the 32 KB L1D.
        for _ in 0..4 {
            for i in 0..(16 * 1024 / 64) {
                h.access_data(i * 64);
            }
        }
        assert!(
            h.l1d_stats().hit_ratio() > 0.7,
            "l1d {}",
            h.l1d_stats().hit_ratio()
        );
    }

    #[test]
    fn medium_working_set_falls_into_l2() {
        let mut h = hierarchy();
        // 128 KB working set: too big for the 32 KB L1D, fits in 256 KB L2.
        for _ in 0..4 {
            for i in 0..(128 * 1024 / 64) {
                h.access_data(i * 64);
            }
        }
        assert!(
            h.l1d_stats().hit_ratio() < 0.2,
            "l1d {}",
            h.l1d_stats().hit_ratio()
        );
        assert!(
            h.l2_stats().hit_ratio() > 0.6,
            "l2 {}",
            h.l2_stats().hit_ratio()
        );
    }

    #[test]
    fn huge_working_set_reaches_memory() {
        let mut h = hierarchy();
        // 64 MB streaming working set blows through the 12 MB L3.
        for i in 0..(64 * 1024 * 1024 / 64) {
            h.access_data(i * 64);
        }
        assert!(
            h.l3_stats().hit_ratio() < 0.2,
            "l3 {}",
            h.l3_stats().hit_ratio()
        );
    }

    #[test]
    fn instruction_and_data_paths_are_split_at_l1() {
        let mut h = hierarchy();
        for _ in 0..10 {
            h.access_instruction(0x400_000);
            h.access_data(0x800_000);
        }
        assert_eq!(h.l1i_stats().accesses(), 10);
        assert_eq!(h.l1d_stats().accesses(), 10);
        // Each stream misses only once (cold) and then hits its own L1.
        assert_eq!(h.l1i_stats().misses, 1);
        assert_eq!(h.l1d_stats().misses, 1);
    }

    #[test]
    fn served_by_reports_the_correct_level() {
        let mut h = hierarchy();
        assert_eq!(h.access_data(0x1234), ServedBy::Memory, "cold miss");
        assert_eq!(h.access_data(0x1234), ServedBy::L1, "now resident");
    }

    #[test]
    fn l2_only_sees_l1_misses() {
        let mut h = hierarchy();
        for _ in 0..100 {
            h.access_data(0x40);
        }
        assert_eq!(h.l2_stats().accesses(), 1, "only the cold miss reached L2");
    }
}
