//! Branch prediction models.
//!
//! The metric vector tracks the branch miss-prediction ratio (`br_miss`),
//! so the engine needs a predictor that responds to how *regular* a
//! workload's branch behaviour is — sorted data and tight numeric loops
//! predict well, hash-partitioned shuffles and pointer-chasing graph code
//! predict worse.  A classic gshare predictor (global history XOR PC
//! indexing a table of two-bit saturating counters) over a sampled branch
//! outcome stream captures exactly that, and a bimodal predictor is kept as
//! a simpler baseline for ablation.

use crate::arch::BranchPredictorConfig;

/// A two-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TwoBitCounter(u8);

impl TwoBitCounter {
    fn new() -> Self {
        // Start weakly taken, the conventional initial state.
        TwoBitCounter(2)
    }

    fn predict(&self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Running prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Number of predicted branches.
    pub predictions: u64,
    /// Number of mispredictions.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Misprediction ratio; 0.0 when no branches were predicted.
    pub fn miss_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// Common interface of the predictors.
pub trait BranchPredictor {
    /// Predicts and then trains on the actual outcome, returning whether
    /// the prediction was correct.
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool;

    /// Accumulated statistics.
    fn stats(&self) -> BranchStats;
}

/// A simple per-PC bimodal predictor (baseline).
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<TwoBitCounter>,
    mask: u64,
    stats: BranchStats,
}

impl BimodalPredictor {
    /// Creates a predictor with `2^index_bits` counters.
    pub fn new(index_bits: u32) -> Self {
        let size = 1usize << index_bits;
        Self {
            table: vec![TwoBitCounter::new(); size],
            mask: (size - 1) as u64,
            stats: BranchStats::default(),
        }
    }
}

impl BranchPredictor for BimodalPredictor {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = ((pc >> 2) & self.mask) as usize;
        let predicted = self.table[idx].predict();
        self.table[idx].update(taken);
        self.stats.predictions += 1;
        let correct = predicted == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }
}

/// A gshare predictor: global history XORed with the PC indexes a table of
/// two-bit counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<TwoBitCounter>,
    mask: u64,
    history: u64,
    history_mask: u64,
    stats: BranchStats,
}

impl GsharePredictor {
    /// Creates a predictor from an architecture's branch configuration.
    pub fn from_config(config: BranchPredictorConfig) -> Self {
        Self::new(config.gshare_bits, config.history_bits)
    }

    /// Creates a predictor with `2^index_bits` counters and
    /// `history_bits` bits of global history.
    pub fn new(index_bits: u32, history_bits: u32) -> Self {
        let size = 1usize << index_bits;
        Self {
            table: vec![TwoBitCounter::new(); size],
            mask: (size - 1) as u64,
            history: 0,
            history_mask: (1u64 << history_bits.min(63)) - 1,
            stats: BranchStats::default(),
        }
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = (((pc >> 2) ^ self.history) & self.mask) as usize;
        let predicted = self.table[idx].predict();
        self.table[idx].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        self.stats.predictions += 1;
        let correct = predicted == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        correct
    }

    fn stats(&self) -> BranchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn two_bit_counter_saturates() {
        let mut c = TwoBitCounter::new();
        for _ in 0..10 {
            c.update(true);
        }
        assert!(c.predict());
        for _ in 0..10 {
            c.update(false);
        }
        assert!(!c.predict());
    }

    #[test]
    fn always_taken_branch_predicts_well() {
        let mut p = GsharePredictor::new(12, 10);
        for i in 0..10_000u64 {
            p.predict_and_update(0x400_000 + (i % 4) * 8, true);
        }
        assert!(
            p.stats().miss_ratio() < 0.01,
            "miss {}",
            p.stats().miss_ratio()
        );
    }

    #[test]
    fn alternating_pattern_is_learned_by_gshare_not_bimodal() {
        let mut gshare = GsharePredictor::new(12, 10);
        let mut bimodal = BimodalPredictor::new(12);
        for i in 0..20_000u64 {
            let taken = i % 2 == 0;
            gshare.predict_and_update(0x400_100, taken);
            bimodal.predict_and_update(0x400_100, taken);
        }
        assert!(
            gshare.stats().miss_ratio() < 0.05,
            "gshare {}",
            gshare.stats().miss_ratio()
        );
        assert!(
            bimodal.stats().miss_ratio() > 0.4,
            "bimodal {}",
            bimodal.stats().miss_ratio()
        );
    }

    #[test]
    fn random_branches_mispredict_around_half() {
        let mut p = GsharePredictor::new(13, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            p.predict_and_update(0x400_200, rng.gen());
        }
        let miss = p.stats().miss_ratio();
        assert!((0.4..=0.6).contains(&miss), "miss {miss}");
    }

    #[test]
    fn empty_stats_have_zero_miss_ratio() {
        assert_eq!(BranchStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn from_config_uses_arch_sizes() {
        let cfg = crate::arch::ArchProfile::westmere_e5645().branch;
        let p = GsharePredictor::from_config(cfg);
        assert_eq!(p.table.len(), 1 << cfg.gshare_bits);
    }
}
