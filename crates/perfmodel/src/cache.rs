//! Set-associative cache simulation with LRU replacement.
//!
//! One [`Cache`] models a single level; [`crate::hierarchy::CacheHierarchy`]
//! stacks them into the L1I / L1D / L2 / L3 configuration of the modelled
//! processors.  The simulator is functional (tags only, no data) and
//! deterministic.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
}

impl CacheConfig {
    /// Creates a configuration, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero, if the line size is not a power of two,
    /// or if the capacity is not divisible by
    /// `line_bytes * associativity`.  (The capacity itself need not be a
    /// power of two: the 12 MB Westmere L3 is not.)
    pub fn new(size_bytes: u64, line_bytes: u64, associativity: u32) -> Self {
        assert!(
            size_bytes > 0 && line_bytes > 0 && associativity > 0,
            "cache geometry must be non-zero"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            size_bytes % (line_bytes * associativity as u64) == 0,
            "capacity must divide evenly into sets"
        );
        Self {
            size_bytes,
            line_bytes,
            associativity,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.associativity as u64)
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been installed.
    Miss,
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio; defined as 1.0 when there were no accesses (an untouched
    /// cache should not drag an accuracy average down).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A single set-associative cache level with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// One vector of (tag, last-use tick) per set; `u64::MAX` tag = invalid.
    sets: Vec<Vec<(u64, u64)>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets =
            vec![Vec::with_capacity(config.associativity as usize); config.num_sets() as usize];
        Self {
            config,
            sets,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses `address`, updating LRU state and statistics.
    pub fn access(&mut self, address: u64) -> AccessOutcome {
        self.tick += 1;
        let line = address / self.config.line_bytes;
        let set_index = (line % self.config.num_sets()) as usize;
        let tag = line / self.config.num_sets();
        let set = &mut self.sets[set_index];

        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }

        self.stats.misses += 1;
        if set.len() < self.config.associativity as usize {
            set.push((tag, self.tick));
        } else {
            // Evict the least recently used way.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("set is full, so non-empty");
            set[lru] = (tag, self.tick);
        }
        AccessOutcome::Miss
    }

    /// Number of resident lines (for tests and invariant checks).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets * 2 ways * 64-byte lines = 512 bytes
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(32 * 1024, 64, 8);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_non_power_of_two_line() {
        let _ = CacheConfig::new(4096, 48, 2);
    }

    #[test]
    fn config_accepts_non_power_of_two_capacity() {
        // The Westmere 12 MB L3 is not a power of two.
        let c = CacheConfig::new(12 * 1024 * 1024, 64, 16);
        assert_eq!(c.num_sets(), 12288);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert_eq!(c.access(0x1000), AccessOutcome::Miss);
        assert_eq!(c.access(0x1000), AccessOutcome::Hit);
        assert_eq!(
            c.access(0x1004),
            AccessOutcome::Hit,
            "same line, different offset"
        );
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Three lines mapping to the same set (set stride = 4 lines * 64 B = 256 B).
        let a = 0x0000;
        let b = 0x0100 * 4; // different tag, same set 0 -> actually 0x400
        let d = 0x0200 * 4;
        assert_eq!(c.access(a), AccessOutcome::Miss);
        assert_eq!(c.access(b), AccessOutcome::Miss);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(c.access(a), AccessOutcome::Hit);
        // Insert third line: evicts b.
        assert_eq!(c.access(d), AccessOutcome::Miss);
        assert_eq!(c.access(a), AccessOutcome::Hit);
        assert_eq!(c.access(b), AccessOutcome::Miss, "b was evicted");
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = small_cache();
        // Stream over 64 distinct lines twice: 512-byte cache holds 8 lines,
        // so the second pass still misses everything (LRU streaming).
        for pass in 0..2 {
            for i in 0..64u64 {
                let outcome = c.access(i * 64);
                if pass == 1 {
                    assert_eq!(outcome, AccessOutcome::Miss);
                }
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn working_set_smaller_than_cache_hits_after_warmup() {
        let mut c = small_cache();
        for _ in 0..4 {
            for i in 0..4u64 {
                c.access(i * 64);
            }
        }
        // 4 cold misses, the remaining 12 accesses hit.
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.stats().hits, 12);
    }

    #[test]
    fn resident_lines_never_exceed_capacity() {
        let mut c = small_cache();
        for i in 0..1000u64 {
            c.access(i * 64 * 3);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn empty_stats_hit_ratio_is_one() {
        assert_eq!(CacheStats::default().hit_ratio(), 1.0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small_cache();
        c.access(0);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(
            c.access(0),
            AccessOutcome::Hit,
            "line survived the stats reset"
        );
    }
}
