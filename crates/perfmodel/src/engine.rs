//! The execution engine: turns an [`OpProfile`] into the metric vector of
//! Table V for a given architecture.
//!
//! The engine is the reproduction's stand-in for `perf` reading hardware
//! performance counters.  It is deterministic: the cache and branch
//! simulators consume bounded, seeded sample streams derived from the
//! profile's access and branch descriptors, and every analytic step is a
//! pure function of the profile and the architecture.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use dmpb_metrics::MetricVector;

use crate::access::AddressStream;
use crate::arch::ArchProfile;
use crate::branch::{BranchPredictor, GsharePredictor};
use crate::hierarchy::{CacheHierarchy, ServedBy};
use crate::pipeline::{self, CacheBehavior};
use crate::profile::OpProfile;

/// Sampling sizes and seed of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of sampled data accesses fed to the cache hierarchy.
    pub sample_data_accesses: usize,
    /// Number of sampled instruction fetches fed to the L1I path.
    pub sample_instruction_fetches: usize,
    /// Number of sampled branches fed to the predictor.
    pub sample_branches: usize,
    /// Seed for all sampled streams.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            sample_data_accesses: 60_000,
            sample_instruction_fetches: 30_000,
            sample_branches: 30_000,
            seed: 0xD1A7_0F15,
        }
    }
}

/// Fraction of peak memory bandwidth that is sustainable in practice.
const MEMORY_BW_EFFICIENCY: f64 = 0.8;
/// Approximate size of one "function body" region used by the instruction
/// fetch model.
const FUNCTION_REGION_BYTES: u64 = 4 * 1024;
/// Probability that an instruction fetch jumps to a different function.
const CALL_JUMP_PROBABILITY: f64 = 0.01;
/// Memory-level parallelism available to pointer-chasing access patterns.
const POINTER_CHASE_MLP: f64 = 0.1;

/// Instruction-fetch walk state, kept across the warm-up and measured
/// passes.
#[derive(Debug)]
struct FetchState {
    rng: StdRng,
    region_base: u64,
    offset: u64,
}

impl Default for FetchState {
    fn default() -> Self {
        Self {
            rng: StdRng::seed_from_u64(0x1F37),
            region_base: 0,
            offset: 0,
        }
    }
}

/// Access-weighted memory-level-parallelism friendliness of a profile's
/// segments (pointer chasing exposes almost none).
fn mlp_friendliness(profile: &OpProfile) -> f64 {
    let segments = profile.normalized_segments();
    if segments.is_empty() {
        return 1.0;
    }
    segments
        .iter()
        .map(|s| s.access_weight * pattern_mlp(s.pattern))
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// How much of an access pattern's miss latency the core (and the hardware
/// prefetchers) can overlap with other work.
fn pattern_mlp(pattern: crate::access::AccessPattern) -> f64 {
    use crate::access::AccessPattern::*;
    match pattern {
        Sequential => 0.97,
        Strided { .. } => 0.88,
        Random => 0.65,
        PointerChase => POINTER_CHASE_MLP,
    }
}

/// The shared measurement instrument of the reproduction.
#[derive(Debug, Clone)]
pub struct ExecutionEngine {
    arch: ArchProfile,
    config: EngineConfig,
}

impl ExecutionEngine {
    /// Creates an engine for the given architecture with default sampling.
    pub fn new(arch: ArchProfile) -> Self {
        Self {
            arch,
            config: EngineConfig::default(),
        }
    }

    /// Creates an engine with explicit sampling configuration.
    pub fn with_config(arch: ArchProfile, config: EngineConfig) -> Self {
        Self { arch, config }
    }

    /// The architecture this engine models.
    pub fn arch(&self) -> &ArchProfile {
        &self.arch
    }

    /// Measures `profile` when executed with `threads` worker tasks on one
    /// node of the modelled machine, returning the full metric vector.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run(&self, profile: &OpProfile, threads: u32) -> MetricVector {
        assert!(threads > 0, "at least one thread is required");
        let arch = &self.arch;
        let mut hierarchy = CacheHierarchy::for_arch(arch);

        // Both simulated paths run a warm-up pass first and are measured in
        // steady state: the sampled streams are far shorter than the real
        // instruction stream, so cold-start misses would otherwise dominate
        // working sets that are in fact cache resident for most of the run.
        let mut fetch_state = FetchState::default();
        let mut data_streams = self.build_data_streams(profile);

        // --- Warm-up pass -----------------------------------------------
        self.simulate_instruction_fetches(profile, &mut hierarchy, &mut fetch_state);
        self.simulate_data_accesses(&mut data_streams, &mut hierarchy);
        hierarchy.reset_stats();

        // --- Measured pass -----------------------------------------------
        self.simulate_instruction_fetches(profile, &mut hierarchy, &mut fetch_state);
        let memory_served = self.simulate_data_accesses(&mut data_streams, &mut hierarchy);
        let mlp_friendliness = mlp_friendliness(profile);

        let l1i_hit = hierarchy.l1i_stats().hit_ratio();
        let l1d_hit = hierarchy.l1d_stats().hit_ratio();
        let l2_hit = hierarchy.l2_stats().hit_ratio();
        let l3_hit = hierarchy.l3_stats().hit_ratio();

        // --- Branch path ----------------------------------------------------
        let branch_miss_ratio = self.simulate_branches(profile);

        // --- Pipeline -------------------------------------------------------
        let mix = profile.instructions.mix();
        let cache_behavior = CacheBehavior {
            l1i_hit,
            l1d_hit,
            l2_hit,
            l3_hit,
            mlp_friendliness,
        };
        let pipe = pipeline::estimate(arch, &mix, &cache_behavior, branch_miss_ratio);

        // --- Runtime --------------------------------------------------------
        let total_instructions = profile.total_instructions() as f64;
        let threads_effective = f64::from(threads.min(arch.cores_per_node()));
        let cycles = total_instructions * pipe.cpi;
        let serial = 1.0 - profile.parallel_fraction;
        let mut compute_secs =
            cycles / arch.frequency_hz * (serial + profile.parallel_fraction / threads_effective);

        // --- Memory traffic and bandwidth ceiling --------------------------
        let mem_instructions = profile.instructions.memory() as f64;
        let dram_accesses = mem_instructions * memory_served;
        let line = arch.l1d.line_bytes as f64;
        let store_share = if profile.instructions.memory() == 0 {
            0.0
        } else {
            profile.instructions.store as f64 / profile.instructions.memory() as f64
        };
        let read_bytes = dram_accesses * line;
        let write_bytes = dram_accesses * line * store_share;
        let total_mem_bytes = read_bytes + write_bytes;
        if compute_secs > 0.0 {
            let demanded_mbps = total_mem_bytes / compute_secs / 1e6;
            let sustainable = arch.peak_memory_bw_mbps * MEMORY_BW_EFFICIENCY;
            if demanded_mbps > sustainable {
                compute_secs = total_mem_bytes / (sustainable * 1e6);
            }
        }

        // --- Disk I/O -------------------------------------------------------
        let disk_bytes = profile.total_disk_bytes() as f64;
        let disk_secs = disk_bytes / (arch.peak_disk_bw_mbps * 1e6);

        // Disk and compute overlap (Hadoop pipelines map output spills with
        // computation); the run is bound by the slower of the two.
        let runtime_secs = compute_secs.max(disk_secs).max(1e-9);

        let mips = total_instructions / runtime_secs / 1e6;
        let mem_read_bw_mbps = read_bytes / runtime_secs / 1e6;
        let mem_write_bw_mbps = write_bytes / runtime_secs / 1e6;
        let disk_io_bw_mbps = disk_bytes / runtime_secs / 1e6;

        MetricVector {
            runtime_secs,
            ipc: pipe.ipc,
            mips,
            instruction_mix: mix,
            branch_miss_ratio,
            l1i_hit_ratio: l1i_hit,
            l1d_hit_ratio: l1d_hit,
            l2_hit_ratio: l2_hit,
            l3_hit_ratio: l3_hit,
            mem_read_bw_mbps,
            mem_write_bw_mbps,
            disk_io_bw_mbps,
        }
    }

    /// Builds one sampled address stream per memory segment, each with its
    /// own non-overlapping address range and sample budget.
    fn build_data_streams(&self, profile: &OpProfile) -> Vec<(AddressStream, usize)> {
        profile
            .normalized_segments()
            .iter()
            .enumerate()
            .filter_map(|(i, segment)| {
                let n = ((self.config.sample_data_accesses as f64) * segment.access_weight).round()
                    as usize;
                if n == 0 {
                    return None;
                }
                let base = 0x1_0000_0000_u64 + ((i as u64) << 34);
                let stream = AddressStream::new(
                    segment.pattern,
                    base,
                    segment.working_set_bytes,
                    self.config.seed.wrapping_add(i as u64 * 7919),
                );
                Some((stream, n))
            })
            .collect()
    }

    /// Simulates the instruction-fetch stream: mostly sequential fetches
    /// within a hot function region, with occasional jumps to other
    /// functions across the code footprint.  Heavy software stacks (large
    /// footprints) therefore see lower L1I hit ratios.  The fetch state is
    /// kept by the caller so a warm-up pass can be followed by a measured
    /// pass.
    fn simulate_instruction_fetches(
        &self,
        profile: &OpProfile,
        hierarchy: &mut CacheHierarchy,
        state: &mut FetchState,
    ) {
        let footprint = profile.code_footprint_bytes.max(1024);
        for _ in 0..self.config.sample_instruction_fetches {
            if state.rng.gen::<f64>() < CALL_JUMP_PROBABILITY {
                let regions = (footprint / FUNCTION_REGION_BYTES).max(1);
                state.region_base = state.rng.gen_range(0..regions) * FUNCTION_REGION_BYTES;
                state.offset = 0;
            }
            let address = 0x4000_0000 + state.region_base + state.offset;
            hierarchy.access_instruction(address);
            state.offset = (state.offset + 4) % FUNCTION_REGION_BYTES;
        }
    }

    /// Advances every sampled data stream by its budget, returning the
    /// fraction of accesses served by main memory in this pass.
    fn simulate_data_accesses(
        &self,
        streams: &mut [(AddressStream, usize)],
        hierarchy: &mut CacheHierarchy,
    ) -> f64 {
        let mut served_memory = 0u64;
        let mut total = 0u64;
        // Interleave the segments' accesses finely (as the real instruction
        // stream does) so that frequently re-referenced small working sets
        // are not evicted by another segment's streaming between passes.
        const SLICES: usize = 200;
        for slice in 0..SLICES {
            for (stream, n) in streams.iter_mut() {
                let budget = *n / SLICES + usize::from(slice < *n % SLICES);
                for _ in 0..budget {
                    let address = stream.next_address();
                    total += 1;
                    if hierarchy.access_data(address) == ServedBy::Memory {
                        served_memory += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            served_memory as f64 / total as f64
        }
    }

    /// Simulates the sampled branch stream through a gshare predictor and
    /// returns the misprediction ratio.
    fn simulate_branches(&self, profile: &OpProfile) -> f64 {
        if profile.instructions.branch == 0 {
            return 0.0;
        }
        let behavior = profile.branch;
        let mut predictor = GsharePredictor::from_config(self.arch.branch);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xB4A2);
        // A handful of static branch sites, as in a hot loop nest.
        let pcs: Vec<u64> = (0..16).map(|i| 0x4000_1000 + i * 24).collect();
        let mut phase: f64 = 0.0;
        for i in 0..self.config.sample_branches {
            let pc = pcs[i % pcs.len()];
            let regular = rng.gen::<f64>() < behavior.regularity;
            let taken = if regular {
                // Deterministic Bresenham-style pattern with the requested
                // taken ratio: highly predictable once learned.
                phase += behavior.taken_ratio;
                if phase >= 1.0 {
                    phase -= 1.0;
                    true
                } else {
                    false
                }
            } else {
                rng.gen::<f64>() < behavior.taken_ratio
            };
            predictor.predict_and_update(pc, taken);
        }
        predictor.stats().miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessPattern;
    use crate::profile::{BranchBehavior, InstructionCounts, MemorySegment};

    fn base_profile() -> OpProfile {
        OpProfile {
            name: "test".to_string(),
            instructions: InstructionCounts {
                integer: 4_000_000_000,
                floating_point: 500_000_000,
                load: 2_500_000_000,
                store: 1_200_000_000,
                branch: 1_800_000_000,
            },
            memory_segments: vec![
                MemorySegment::new(AccessPattern::Sequential, 1 << 30, 0.7),
                MemorySegment::new(AccessPattern::Random, 64 << 20, 0.3),
            ],
            branch: BranchBehavior::new(0.7, 0.8),
            code_footprint_bytes: 256 * 1024,
            disk_read_bytes: 2_000_000_000,
            disk_write_bytes: 1_000_000_000,
            parallel_fraction: 0.95,
        }
    }

    fn engine() -> ExecutionEngine {
        ExecutionEngine::new(ArchProfile::westmere_e5645())
    }

    #[test]
    fn run_produces_finite_sane_metrics() {
        let m = engine().run(&base_profile(), 12);
        assert!(m.is_finite());
        assert!(m.runtime_secs > 0.0);
        assert!(m.ipc > 0.0 && m.ipc <= 4.0);
        assert!(m.mips > 0.0);
        assert!((0.0..=1.0).contains(&m.branch_miss_ratio));
        for hit in [
            m.l1i_hit_ratio,
            m.l1d_hit_ratio,
            m.l2_hit_ratio,
            m.l3_hit_ratio,
        ] {
            assert!((0.0..=1.0).contains(&hit));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = engine().run(&base_profile(), 12);
        let b = engine().run(&base_profile(), 12);
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_run_faster() {
        let p = base_profile();
        let e = engine();
        let one = e.run(&p, 1);
        let twelve = e.run(&p, 12);
        // Scaling is sub-linear because the twelve-thread run saturates the
        // node's memory bandwidth, but it must still be faster.
        assert!(
            twelve.runtime_secs < one.runtime_secs * 0.9,
            "1t {} 12t {}",
            one.runtime_secs,
            twelve.runtime_secs
        );
    }

    #[test]
    fn thread_count_is_capped_by_cores() {
        let p = base_profile();
        let e = engine();
        let twelve = e.run(&p, 12);
        let thousand = e.run(&p, 1000);
        assert!((twelve.runtime_secs - thousand.runtime_secs).abs() / twelve.runtime_secs < 1e-9);
    }

    #[test]
    fn scaling_work_scales_runtime_roughly_linearly() {
        let p = base_profile();
        let e = engine();
        let small = e.run(&p, 12);
        let big = e.run(&p.scaled(10.0), 12);
        let ratio = big.runtime_secs / small.runtime_secs;
        assert!((5.0..=20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn random_working_set_hurts_l1d_hit_ratio() {
        let mut streaming = base_profile();
        streaming.memory_segments =
            vec![MemorySegment::new(AccessPattern::Sequential, 1 << 30, 1.0)];
        let mut random = base_profile();
        random.memory_segments = vec![MemorySegment::new(AccessPattern::Random, 1 << 30, 1.0)];
        let e = engine();
        let s = e.run(&streaming, 12);
        let r = e.run(&random, 12);
        assert!(
            s.l1d_hit_ratio > r.l1d_hit_ratio + 0.2,
            "seq {} rand {}",
            s.l1d_hit_ratio,
            r.l1d_hit_ratio
        );
    }

    #[test]
    fn small_code_footprint_has_better_l1i() {
        let mut small = base_profile();
        small.code_footprint_bytes = 8 * 1024;
        let mut huge = base_profile();
        huge.code_footprint_bytes = 8 * 1024 * 1024;
        let e = engine();
        assert!(e.run(&small, 12).l1i_hit_ratio > e.run(&huge, 12).l1i_hit_ratio);
    }

    #[test]
    fn irregular_branches_mispredict_more() {
        let mut regular = base_profile();
        regular.branch = BranchBehavior::new(0.8, 0.98);
        let mut irregular = base_profile();
        irregular.branch = BranchBehavior::new(0.5, 0.0);
        let e = engine();
        let r = e.run(&regular, 12);
        let i = e.run(&irregular, 12);
        assert!(
            i.branch_miss_ratio > r.branch_miss_ratio + 0.1,
            "irr {} reg {}",
            i.branch_miss_ratio,
            r.branch_miss_ratio
        );
    }

    #[test]
    fn disk_heavy_profile_is_io_bound() {
        let mut p = base_profile();
        p.disk_read_bytes = 400_000_000_000; // 400 GB through a ~140 MB/s disk
        p.disk_write_bytes = 0;
        let m = engine().run(&p, 12);
        // Runtime should be close to the disk service time.
        let disk_secs = 400_000_000_000.0 / (ArchProfile::westmere_e5645().peak_disk_bw_mbps * 1e6);
        assert!((m.runtime_secs - disk_secs).abs() / disk_secs < 0.05);
        assert!(m.disk_io_bw_mbps > 100.0);
    }

    #[test]
    fn no_disk_traffic_means_zero_disk_bandwidth() {
        let mut p = base_profile();
        p.disk_read_bytes = 0;
        p.disk_write_bytes = 0;
        let m = engine().run(&p, 12);
        assert_eq!(m.disk_io_bw_mbps, 0.0);
    }

    #[test]
    fn haswell_outperforms_westmere() {
        let p = base_profile();
        let w = ExecutionEngine::new(ArchProfile::westmere_e5645()).run(&p, 12);
        let h = ExecutionEngine::new(ArchProfile::haswell_e5_2620_v3()).run(&p, 12);
        assert!(
            h.runtime_secs < w.runtime_secs,
            "haswell {} westmere {}",
            h.runtime_secs,
            w.runtime_secs
        );
        let speedup = w.runtime_secs / h.runtime_secs;
        assert!((1.05..=2.5).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = engine().run(&base_profile(), 0);
    }

    #[test]
    fn empty_memory_profile_is_handled() {
        let mut p = base_profile();
        p.memory_segments.clear();
        let m = engine().run(&p, 12);
        assert!(m.is_finite());
        assert_eq!(m.mem_read_bw_mbps, 0.0);
    }
}
