//! Memory access-pattern descriptors and sampled address streams.
//!
//! Simulating every memory access of a 100 GB workload is exactly the cost
//! the paper is trying to avoid, so the engine works from *descriptors*: a
//! kernel states how it walks memory (sequentially, strided, randomly over
//! some working set, or pointer-chasing) and how many bytes it touches, and
//! the engine draws a bounded, seeded sample of concrete addresses from the
//! descriptor to drive the cache hierarchy.  The hit ratios measured on the
//! sample stand in for the full run — the same idea as sampled simulation,
//! applied to a synthetic stream whose locality matches the kernel.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// How a kernel walks a region of memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Consecutive addresses (streaming read/write, e.g. scanning records).
    Sequential,
    /// Fixed stride in bytes (e.g. column walks, batched feature access).
    Strided {
        /// Stride between consecutive accesses in bytes.
        stride_bytes: u64,
    },
    /// Uniformly random addresses within the working set (hash tables,
    /// shuffle buffers, histogram updates).
    Random,
    /// Dependent chain of random addresses (graph traversal, linked
    /// structures); behaves like `Random` for hit ratios but exposes no
    /// memory-level parallelism to the pipeline model.
    PointerChase,
}

impl AccessPattern {
    /// Returns true if consecutive accesses are independent enough for the
    /// processor to overlap their latency (everything except pointer
    /// chasing).
    pub fn allows_mlp(&self) -> bool {
        !matches!(self, AccessPattern::PointerChase)
    }

    /// Short name used in debug output.
    pub fn name(&self) -> &'static str {
        match self {
            AccessPattern::Sequential => "sequential",
            AccessPattern::Strided { .. } => "strided",
            AccessPattern::Random => "random",
            AccessPattern::PointerChase => "pointer-chase",
        }
    }
}

/// Number of consecutive same-object (same cache line) accesses a random
/// or pointer-chasing walk performs before moving to the next object.
/// Real object accesses read several fields of the object they land on,
/// which is why even "random" heap traffic retains intra-line locality.
const FIELDS_PER_OBJECT: u32 = 3;

/// A deterministic generator of sample addresses for one memory segment.
#[derive(Debug)]
pub struct AddressStream {
    pattern: AccessPattern,
    base: u64,
    working_set_bytes: u64,
    cursor: u64,
    current_object: u64,
    remaining_fields: u32,
    rng: StdRng,
}

impl AddressStream {
    /// Creates a stream over `working_set_bytes` bytes starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the working set is zero.
    pub fn new(pattern: AccessPattern, base: u64, working_set_bytes: u64, seed: u64) -> Self {
        assert!(working_set_bytes > 0, "working set must be non-zero");
        Self {
            pattern,
            base,
            working_set_bytes,
            cursor: 0,
            current_object: 0,
            remaining_fields: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The pattern this stream follows.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Produces the next sample address.
    pub fn next_address(&mut self) -> u64 {
        let offset = match self.pattern {
            AccessPattern::Sequential => {
                let o = self.cursor % self.working_set_bytes;
                self.cursor += 8;
                o
            }
            AccessPattern::Strided { stride_bytes } => {
                let o = self.cursor % self.working_set_bytes;
                self.cursor += stride_bytes.max(1);
                o
            }
            AccessPattern::Random | AccessPattern::PointerChase => {
                if self.remaining_fields == 0 {
                    // Land on a new object (cache-line granular) and read a
                    // few of its fields before moving on.
                    self.current_object = self.rng.gen_range(0..self.working_set_bytes) & !63;
                    self.remaining_fields = FIELDS_PER_OBJECT;
                }
                self.remaining_fields -= 1;
                let field = u64::from(FIELDS_PER_OBJECT - 1 - self.remaining_fields) * 8;
                (self.current_object + field).min(self.working_set_bytes - 1)
            }
        };
        self.base + offset
    }

    /// Collects `n` sample addresses.
    pub fn take(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_address()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_addresses_increase_then_wrap() {
        let mut s = AddressStream::new(AccessPattern::Sequential, 0x1000, 64, 1);
        let addrs = s.take(10);
        assert_eq!(addrs[0], 0x1000);
        assert_eq!(addrs[1], 0x1008);
        assert_eq!(addrs[8], 0x1000, "wrapped after 64 bytes / 8-byte steps");
    }

    #[test]
    fn strided_addresses_follow_stride() {
        let mut s = AddressStream::new(AccessPattern::Strided { stride_bytes: 256 }, 0, 1024, 1);
        let addrs = s.take(4);
        assert_eq!(addrs, vec![0, 256, 512, 768]);
    }

    #[test]
    fn random_addresses_stay_in_working_set() {
        let mut s = AddressStream::new(AccessPattern::Random, 0x10_000, 4096, 7);
        for a in s.take(1000) {
            assert!((0x10_000..0x11_000).contains(&a));
        }
    }

    #[test]
    fn random_accesses_have_intra_object_locality() {
        let mut s = AddressStream::new(AccessPattern::Random, 0, 1 << 26, 11);
        let addrs = s.take(3 * 100);
        // Consecutive triples share a cache line (field accesses of one object).
        let mut same_line = 0;
        for pair in addrs.windows(2) {
            if pair[0] / 64 == pair[1] / 64 {
                same_line += 1;
            }
        }
        assert!(same_line >= 150, "same-line pairs {same_line}");
    }

    #[test]
    fn random_stream_is_deterministic() {
        let mut a = AddressStream::new(AccessPattern::Random, 0, 1 << 20, 42);
        let mut b = AddressStream::new(AccessPattern::Random, 0, 1 << 20, 42);
        assert_eq!(a.take(100), b.take(100));
    }

    #[test]
    fn pointer_chase_denies_mlp() {
        assert!(!AccessPattern::PointerChase.allows_mlp());
        assert!(AccessPattern::Sequential.allows_mlp());
        assert!(AccessPattern::Random.allows_mlp());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_working_set_is_rejected() {
        let _ = AddressStream::new(AccessPattern::Sequential, 0, 0, 1);
    }
}
