//! CPI / IPC pipeline model.
//!
//! The model folds the measured cache hit ratios and branch misprediction
//! ratio into a cycles-per-instruction estimate for the architecture,
//! following the standard additive miss-penalty decomposition used by
//! analytical processor models:
//!
//! ```text
//! CPI = CPI_base
//!     + fp_ratio * fp_extra
//!     + mem_ratio * (miss penalties down the hierarchy, scaled by MLP overlap)
//!     + fetch miss penalty
//!     + branch_ratio * miss_ratio * misprediction_penalty
//! ```
//!
//! The miss penalties are damped by the architecture's memory-level
//! parallelism factor; pointer-chasing access patterns expose no MLP and
//! therefore pay closer to the full latency (the workload reports this
//! through [`CacheBehavior::mlp_friendliness`]).

use crate::arch::ArchProfile;
use dmpb_metrics::InstructionMix;

/// Cache hit ratios observed for one run, plus how much memory-level
/// parallelism the access patterns allow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheBehavior {
    /// L1 instruction-cache hit ratio.
    pub l1i_hit: f64,
    /// L1 data-cache hit ratio.
    pub l1d_hit: f64,
    /// L2 hit ratio (of accesses reaching L2).
    pub l2_hit: f64,
    /// L3 hit ratio (of accesses reaching L3).
    pub l3_hit: f64,
    /// Fraction of data accesses whose latency can be overlapped, in `[0, 1]`:
    /// 1.0 for fully independent streaming accesses, ~0.0 for pointer chasing.
    pub mlp_friendliness: f64,
}

/// Result of the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineEstimate {
    /// Estimated cycles per instruction.
    pub cpi: f64,
    /// Estimated instructions per cycle (capped by the issue width).
    pub ipc: f64,
}

/// Additional cycles per floating-point instruction relative to the base
/// CPI (longer latency units, less ILP in numeric code).
const FP_EXTRA_CPI: f64 = 0.25;
/// Fraction of an instruction-fetch miss penalty that actually stalls the
/// front end (decoupling queues hide the rest).
const FETCH_STALL_FACTOR: f64 = 0.35;

/// Computes the CPI / IPC estimate for one run.
pub fn estimate(
    arch: &ArchProfile,
    mix: &InstructionMix,
    cache: &CacheBehavior,
    branch_miss_ratio: f64,
) -> PipelineEstimate {
    let mix = mix.normalized();
    let mem_ratio = mix.load + mix.store;

    // Average penalty of one data access, walking down the hierarchy.
    let l1d_miss = 1.0 - cache.l1d_hit;
    let l2_miss = 1.0 - cache.l2_hit;
    let l3_miss = 1.0 - cache.l3_hit;
    let data_penalty_per_access = l1d_miss
        * (arch.l2_latency_cycles
            + l2_miss * (arch.l3_latency_cycles + l3_miss * arch.memory_latency_cycles));

    // Memory-level parallelism hides part of that latency.
    let overlap = (arch.mlp_overlap * cache.mlp_friendliness).clamp(0.0, 0.95);
    let data_penalty = data_penalty_per_access * (1.0 - overlap);

    // Instruction fetch penalty per instruction.  Code is hot relative to
    // data, so instruction misses are served from L2 / L3 rather than DRAM.
    let l1i_miss = 1.0 - cache.l1i_hit;
    let fetch_penalty =
        l1i_miss * (arch.l2_latency_cycles + 0.3 * arch.l3_latency_cycles) * FETCH_STALL_FACTOR;

    let branch_penalty = mix.branch * branch_miss_ratio * arch.branch.misprediction_penalty_cycles;

    let cpi = arch.base_cpi
        + mix.floating_point * FP_EXTRA_CPI
        + mem_ratio * data_penalty
        + fetch_penalty
        + branch_penalty;

    let ipc = (1.0 / cpi).min(arch.issue_width);
    PipelineEstimate { cpi, ipc }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_friendly() -> CacheBehavior {
        CacheBehavior {
            l1i_hit: 0.99,
            l1d_hit: 0.97,
            l2_hit: 0.8,
            l3_hit: 0.7,
            mlp_friendliness: 0.9,
        }
    }

    fn cache_hostile() -> CacheBehavior {
        CacheBehavior {
            l1i_hit: 0.90,
            l1d_hit: 0.6,
            l2_hit: 0.3,
            l3_hit: 0.2,
            mlp_friendliness: 0.2,
        }
    }

    fn typical_mix() -> InstructionMix {
        InstructionMix::from_counts(45, 5, 25, 12, 13)
    }

    #[test]
    fn friendly_code_achieves_high_ipc() {
        let e = estimate(
            &ArchProfile::westmere_e5645(),
            &typical_mix(),
            &cache_friendly(),
            0.02,
        );
        assert!(e.ipc > 1.0, "ipc {}", e.ipc);
        assert!(e.ipc <= 4.0);
    }

    #[test]
    fn hostile_code_is_memory_bound() {
        let good = estimate(
            &ArchProfile::westmere_e5645(),
            &typical_mix(),
            &cache_friendly(),
            0.02,
        );
        let bad = estimate(
            &ArchProfile::westmere_e5645(),
            &typical_mix(),
            &cache_hostile(),
            0.1,
        );
        assert!(
            bad.ipc < good.ipc * 0.5,
            "bad {} vs good {}",
            bad.ipc,
            good.ipc
        );
    }

    #[test]
    fn branch_misses_hurt() {
        let arch = ArchProfile::westmere_e5645();
        let low = estimate(&arch, &typical_mix(), &cache_friendly(), 0.01);
        let high = estimate(&arch, &typical_mix(), &cache_friendly(), 0.2);
        assert!(high.cpi > low.cpi);
    }

    #[test]
    fn haswell_is_faster_than_westmere_on_same_behavior() {
        let mix = typical_mix();
        let w = estimate(
            &ArchProfile::westmere_e5645(),
            &mix,
            &cache_friendly(),
            0.03,
        );
        let h = estimate(
            &ArchProfile::haswell_e5_2620_v3(),
            &mix,
            &cache_friendly(),
            0.03,
        );
        assert!(h.ipc > w.ipc, "haswell {} westmere {}", h.ipc, w.ipc);
    }

    #[test]
    fn fp_heavy_mix_costs_more_base_cycles() {
        let arch = ArchProfile::westmere_e5645();
        let int_mix = InstructionMix::from_counts(70, 0, 15, 5, 10);
        let fp_mix = InstructionMix::from_counts(30, 40, 15, 5, 10);
        let i = estimate(&arch, &int_mix, &cache_friendly(), 0.02);
        let f = estimate(&arch, &fp_mix, &cache_friendly(), 0.02);
        assert!(f.cpi > i.cpi);
    }

    #[test]
    fn ipc_is_capped_by_issue_width() {
        let mut arch = ArchProfile::westmere_e5645();
        arch.base_cpi = 0.05;
        let perfect = CacheBehavior {
            l1i_hit: 1.0,
            l1d_hit: 1.0,
            l2_hit: 1.0,
            l3_hit: 1.0,
            mlp_friendliness: 1.0,
        };
        let e = estimate(&arch, &typical_mix(), &perfect, 0.0);
        assert!(e.ipc <= arch.issue_width);
    }

    #[test]
    fn mlp_unfriendly_access_pays_more() {
        let arch = ArchProfile::westmere_e5645();
        let mut chase = cache_hostile();
        chase.mlp_friendliness = 0.0;
        let mut stream = cache_hostile();
        stream.mlp_friendliness = 1.0;
        let c = estimate(&arch, &typical_mix(), &chase, 0.05);
        let s = estimate(&arch, &typical_mix(), &stream, 0.05);
        assert!(c.cpi > s.cpi);
    }
}
