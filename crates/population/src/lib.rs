//! # dmpb-population — stochastic workload populations
//!
//! The paper's central claim is that *any* big-data or AI workload
//! decomposes into the eight data motifs — yet the repro's campaign
//! engine only ever sweeps the eight hand-ported paper workloads.  This
//! crate breaks out of that set: a [`PopulationGenerator`] synthesizes
//! *novel* workloads as random-but-seeded motif DAGs, so a campaign can
//! sweep hundreds of distinct workload shapes from one `u64` seed.
//!
//! Each synthesized member is a [`SyntheticWorkload`] implementing the
//! existing `Workload` / `dag_plan()` contract, so it flows through the
//! whole pipeline unchanged: decomposition adopts its sampled fork/join
//! topology (the plan is built from exactly the sampled motif set, so
//! `covers_exactly` always holds), proxy generation tunes it like any
//! named workload, and the `DagExecutor` runs it on the streamed or
//! fused path.
//!
//! A member is sampled from a [`PopulationSpec`]:
//!
//! * **Topology** from a parameterized [`TopologyFamily`] — chain,
//!   fork-join, diamond, or layered random-acyclic graphs built over
//!   `DagPlanBuilder` (or `mixed`, which draws a family per member);
//! * **Kernel mix** — a distinct subset of [`MotifKind`]s (big-data or
//!   AI pool, chosen per member by `ai_fraction`) with weighted
//!   class ratios;
//! * **Data shape** — total bytes from a [`SizeDistribution`] (uniform,
//!   log-uniform or bounded zipf), plus sampled sparsity, element size,
//!   data class and value distribution.
//!
//! [`PopulationSpec::fit_to_paper`] estimates the family parameters from
//! the eight known workloads' configurations, so fitted populations stay
//! in-distribution with the paper's suite.
//!
//! Determinism is the contract everything downstream leans on: member
//! `rank` is synthesized from `derive_seed(base_seed, rank)` with a
//! fixed draw order, so one seed byte-reproduces the entire population —
//! and a campaign's duration budget truncates the population to a rank
//! prefix using the members' *modeled* cost, never wall-clock, keeping
//! truncation identical across machines, worker counts and store warmth.
//!
//! [`MotifKind`]: dmpb_motifs::MotifKind

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod spec;
pub mod synth;

pub use spec::{PopulationSpec, SizeDistribution, TopologyFamily, DEFAULT_POPULATION_SEED};
pub use synth::{BudgetedPopulation, PopulationGenerator, SyntheticWorkload};
