//! Population parameter families: what a population is sampled *from*.
//!
//! A [`PopulationSpec`] is a compact, `Copy` description of a whole
//! population: topology family, member count, base seed, and the
//! parameter ranges every member's kernel mix and data shape are drawn
//! from.  The spec travels through the scenario DSL (`[population]`
//! section), the campaign matrix (each synthetic cell carries it) and
//! the result store, so it is deliberately plain data with a stable
//! canonical rendering ([`PopulationSpec::spec_hash`]).

use dmpb_core::fnv::hash_bytes;
use dmpb_workloads::all_workloads;
use rand::rngs::StdRng;
use rand::Rng;

/// Default base seed for populations (distinct from the campaign
/// runner's `DEFAULT_BASE_SEED` so population and data-plane streams
/// never accidentally coincide).
pub const DEFAULT_POPULATION_SEED: u64 = 0x00DA_7A00_90D1_F00D;

/// Parameterized topology family a member's motif DAG is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyFamily {
    /// A straight pipeline, one stage per motif.
    Chain,
    /// Fan out of 2–4 parallel branches from the input, joining at the
    /// output (TensorFlow-tower / Spark-wide-dependency shape).
    ForkJoin,
    /// Two branches that fork at the input and join mid-graph, followed
    /// by a tail chain (falls back to a chain below 4 motifs).
    Diamond,
    /// Random acyclic layered graph: 2–4 layers of parallel motif edges
    /// between layer-boundary nodes, with occasional layer-skipping
    /// edges.
    Layered,
    /// Draw one of the four concrete families per member.
    Mixed,
}

impl TopologyFamily {
    /// All families in a stable order (`Mixed` last).
    pub const ALL: [TopologyFamily; 5] = [
        TopologyFamily::Chain,
        TopologyFamily::ForkJoin,
        TopologyFamily::Diamond,
        TopologyFamily::Layered,
        TopologyFamily::Mixed,
    ];

    /// The four concrete (non-`Mixed`) families `Mixed` draws from.
    pub const CONCRETE: [TopologyFamily; 4] = [
        TopologyFamily::Chain,
        TopologyFamily::ForkJoin,
        TopologyFamily::Diamond,
        TopologyFamily::Layered,
    ];

    /// Kebab-case name, as the scenario DSL and `/metrics` labels spell
    /// it.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyFamily::Chain => "chain",
            TopologyFamily::ForkJoin => "fork-join",
            TopologyFamily::Diamond => "diamond",
            TopologyFamily::Layered => "layered",
            TopologyFamily::Mixed => "mixed",
        }
    }
}

impl std::fmt::Display for TopologyFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TopologyFamily {
    type Err = String;

    /// Parses a family name, case-insensitively and ignoring `-` / `_`
    /// (`"fork-join"`, `"ForkJoin"`, `"fork_join"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| !matches!(c, '-' | '_' | ' '))
            .map(|c| c.to_ascii_lowercase())
            .collect();
        for family in TopologyFamily::ALL {
            let canonical: String = family.name().chars().filter(|c| *c != '-').collect();
            if normalized == canonical {
                return Ok(family);
            }
        }
        Err(format!(
            "unknown topology family `{s}` (expected one of: {})",
            TopologyFamily::ALL.map(|f| f.name()).join(", ")
        ))
    }
}

/// Distribution family the members' total data volumes are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeDistribution {
    /// Uniform over `[min, max]` bytes.
    Uniform,
    /// Uniform in log-space over `[min, max]` — equal probability per
    /// decade, the natural prior for data-set sizes.
    LogUniform,
    /// Bounded zipf / power-law over `[min, max]` with the spec's
    /// exponent (larger exponent = more mass near `min`).
    Zipf,
}

impl SizeDistribution {
    /// All distributions in a stable order.
    pub const ALL: [SizeDistribution; 3] = [
        SizeDistribution::Uniform,
        SizeDistribution::LogUniform,
        SizeDistribution::Zipf,
    ];

    /// Kebab-case name used by the scenario DSL.
    pub fn name(&self) -> &'static str {
        match self {
            SizeDistribution::Uniform => "uniform",
            SizeDistribution::LogUniform => "log-uniform",
            SizeDistribution::Zipf => "zipf",
        }
    }

    /// Draws one volume in `[min, max]` bytes.  `exponent` only matters
    /// for [`SizeDistribution::Zipf`] (an exponent of exactly 1 falls
    /// back to log-uniform, its analytic limit).
    pub fn sample_bytes(&self, rng: &mut StdRng, min: u64, max: u64, exponent: f64) -> u64 {
        if min >= max {
            return min;
        }
        let (lo, hi) = (min as f64, max as f64);
        let unit: f64 = rng.gen();
        let drawn = match self {
            SizeDistribution::Uniform => lo + (hi - lo) * unit,
            SizeDistribution::LogUniform => (lo.ln() + (hi.ln() - lo.ln()) * unit).exp(),
            SizeDistribution::Zipf => {
                let s = exponent;
                if (s - 1.0).abs() < 1e-9 {
                    (lo.ln() + (hi.ln() - lo.ln()) * unit).exp()
                } else {
                    // Inverse CDF of a power law truncated to [lo, hi].
                    let a = lo.powf(1.0 - s);
                    let b = hi.powf(1.0 - s);
                    (a + (b - a) * unit).powf(1.0 / (1.0 - s))
                }
            }
        };
        (drawn as u64).clamp(min, max)
    }
}

impl std::fmt::Display for SizeDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SizeDistribution {
    type Err = String;

    /// Parses a distribution name, case-insensitively and ignoring
    /// `-` / `_` (`"log-uniform"`, `"LogUniform"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String = s
            .chars()
            .filter(|c| !matches!(c, '-' | '_' | ' '))
            .map(|c| c.to_ascii_lowercase())
            .collect();
        for dist in SizeDistribution::ALL {
            let canonical: String = dist.name().chars().filter(|c| *c != '-').collect();
            if normalized == canonical {
                return Ok(dist);
            }
        }
        Err(format!(
            "unknown size distribution `{s}` (expected one of: {})",
            SizeDistribution::ALL.map(|d| d.name()).join(", ")
        ))
    }
}

/// Everything a population is sampled from: one `Copy` value that fully
/// determines every member (together with the member's rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationSpec {
    /// Topology family members' DAGs are built from.
    pub family: TopologyFamily,
    /// Number of members to synthesize (before any duration budget).
    pub size: u32,
    /// Base seed; member `rank` is drawn from
    /// `derive_seed(base_seed, rank)`.
    pub base_seed: u64,
    /// Probability that a member draws from the AI motif pool (and an
    /// AI carrier workload) rather than the big-data pool.
    pub ai_fraction: f64,
    /// Minimum distinct motif kernels per member.
    pub kernels_min: u32,
    /// Maximum distinct motif kernels per member (clamped to the pool
    /// size: 19 big-data / 14 AI kinds).
    pub kernels_max: u32,
    /// Distribution family for the members' total data volumes.
    pub size_distribution: SizeDistribution,
    /// Smallest member data volume in bytes.
    pub size_min_bytes: u64,
    /// Largest member data volume in bytes.
    pub size_max_bytes: u64,
    /// Exponent for [`SizeDistribution::Zipf`].
    pub zipf_exponent: f64,
    /// Smallest member sparsity (fraction of zero elements).
    pub sparsity_min: f64,
    /// Largest member sparsity.
    pub sparsity_max: f64,
    /// Optional per-campaign wall budget in (modeled) seconds.  When
    /// set, the population is truncated deterministically by rank so
    /// the members' summed modeled cost fits the budget — see
    /// [`crate::PopulationGenerator::generate_budgeted`].
    pub duration_budget_secs: Option<f64>,
}

impl Default for PopulationSpec {
    /// A small mixed-family, mostly-big-data population: 16 members,
    /// 3–8 kernels each, log-uniform 1–100 GB volumes.
    fn default() -> Self {
        Self {
            family: TopologyFamily::Mixed,
            size: 16,
            base_seed: DEFAULT_POPULATION_SEED,
            ai_fraction: 0.25,
            kernels_min: 3,
            kernels_max: 8,
            size_distribution: SizeDistribution::LogUniform,
            size_min_bytes: 1 << 30,
            size_max_bytes: 100 << 30,
            zipf_exponent: 1.5,
            sparsity_min: 0.0,
            sparsity_max: 0.5,
            duration_budget_secs: None,
        }
    }
}

impl PopulationSpec {
    /// Estimates the family parameters from the eight known workloads'
    /// configurations, so synthetic members stay in-distribution with
    /// the paper suite: data volumes span the observed input range
    /// (log-uniformly), sparsity spans the observed sparsities, the AI
    /// fraction and kernel-count range are the registry's own.
    pub fn fit_to_paper() -> Self {
        let workloads = all_workloads();
        let mut size_min = u64::MAX;
        let mut size_max = 0u64;
        let mut sparsity_min = f64::MAX;
        let mut sparsity_max = 0f64;
        let mut kernels_min = u32::MAX;
        let mut kernels_max = 0u32;
        let mut ai = 0usize;
        for w in &workloads {
            let input = w.input_descriptor();
            size_min = size_min.min(input.total_bytes);
            size_max = size_max.max(input.total_bytes);
            sparsity_min = sparsity_min.min(input.sparsity);
            sparsity_max = sparsity_max.max(input.sparsity);
            let kernels = w.involved_motifs().len() as u32;
            kernels_min = kernels_min.min(kernels);
            kernels_max = kernels_max.max(kernels);
            if w.kind().is_ai() {
                ai += 1;
            }
        }
        Self {
            ai_fraction: ai as f64 / workloads.len() as f64,
            kernels_min,
            kernels_max,
            size_distribution: SizeDistribution::LogUniform,
            size_min_bytes: size_min,
            size_max_bytes: size_max,
            sparsity_min,
            sparsity_max,
            ..Self::default()
        }
    }

    /// Validates the spec's ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.size == 0 {
            return Err("population size must be at least 1".into());
        }
        if self.kernels_min == 0 {
            return Err("kernels-min must be at least 1".into());
        }
        if self.kernels_min > self.kernels_max {
            return Err(format!(
                "kernels-min {} exceeds kernels-max {}",
                self.kernels_min, self.kernels_max
            ));
        }
        if !(0.0..=1.0).contains(&self.ai_fraction) {
            return Err(format!("ai-fraction {} outside [0, 1]", self.ai_fraction));
        }
        if self.size_min_bytes == 0 {
            return Err("size-min must be positive".into());
        }
        if self.size_min_bytes > self.size_max_bytes {
            return Err(format!(
                "size-min {} exceeds size-max {}",
                self.size_min_bytes, self.size_max_bytes
            ));
        }
        if !(0.0..=1.0).contains(&self.sparsity_min)
            || !(0.0..=1.0).contains(&self.sparsity_max)
            || self.sparsity_min > self.sparsity_max
        {
            return Err(format!(
                "sparsity range [{}, {}] invalid",
                self.sparsity_min, self.sparsity_max
            ));
        }
        if !self.zipf_exponent.is_finite() || self.zipf_exponent <= 0.0 {
            return Err(format!(
                "zipf-exponent {} must be positive",
                self.zipf_exponent
            ));
        }
        if let Some(budget) = self.duration_budget_secs {
            if !budget.is_finite() || budget <= 0.0 {
                return Err(format!("duration-budget-secs {budget} must be positive"));
            }
        }
        Ok(())
    }

    /// Hash of every *sampling-relevant* parameter — the fields that
    /// determine what member `rank` looks like.  `size` and the
    /// duration budget are deliberately excluded: they select *which*
    /// ranks run, not what a rank *is*, so stored results stay valid
    /// when a population is grown or re-budgeted.
    pub fn spec_hash(&self) -> u64 {
        let canonical = format!(
            "population-spec|family:{}|seed:{:016x}|ai:{:.9}|kernels:{}-{}|dist:{}|bytes:{}-{}|zipf:{:.9}|sparsity:{:.9}-{:.9}",
            self.family,
            self.base_seed,
            self.ai_fraction,
            self.kernels_min,
            self.kernels_max,
            self.size_distribution,
            self.size_min_bytes,
            self.size_max_bytes,
            self.zipf_exponent,
            self.sparsity_min,
            self.sparsity_max,
        );
        hash_bytes(canonical.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::rng::seeded_rng;

    #[test]
    fn family_names_round_trip() {
        for family in TopologyFamily::ALL {
            assert_eq!(family.name().parse::<TopologyFamily>(), Ok(family));
            assert_eq!(family.to_string().parse::<TopologyFamily>(), Ok(family));
        }
        assert_eq!("ForkJoin".parse(), Ok(TopologyFamily::ForkJoin));
        assert_eq!("fork_join".parse(), Ok(TopologyFamily::ForkJoin));
        assert!("ring".parse::<TopologyFamily>().is_err());
    }

    #[test]
    fn distribution_names_round_trip() {
        for dist in SizeDistribution::ALL {
            assert_eq!(dist.name().parse::<SizeDistribution>(), Ok(dist));
        }
        assert_eq!("LogUniform".parse(), Ok(SizeDistribution::LogUniform));
        assert!("pareto".parse::<SizeDistribution>().is_err());
    }

    #[test]
    fn samples_stay_in_range_for_every_distribution() {
        let (min, max) = (1u64 << 20, 1u64 << 36);
        for dist in SizeDistribution::ALL {
            let mut rng = seeded_rng(7);
            for _ in 0..200 {
                let v = dist.sample_bytes(&mut rng, min, max, 1.5);
                assert!((min..=max).contains(&v), "{dist}: {v}");
            }
        }
    }

    #[test]
    fn zipf_skews_toward_the_minimum_and_uniform_does_not() {
        let (min, max) = (1u64 << 20, 1u64 << 36);
        let median = |dist: SizeDistribution| {
            let mut rng = seeded_rng(11);
            let mut xs: Vec<u64> = (0..401)
                .map(|_| dist.sample_bytes(&mut rng, min, max, 2.0))
                .collect();
            xs.sort_unstable();
            xs[xs.len() / 2]
        };
        assert!(median(SizeDistribution::Zipf) < median(SizeDistribution::LogUniform));
        assert!(median(SizeDistribution::LogUniform) < median(SizeDistribution::Uniform));
    }

    #[test]
    fn degenerate_range_returns_the_single_point() {
        let mut rng = seeded_rng(3);
        let v = SizeDistribution::Uniform.sample_bytes(&mut rng, 42, 42, 1.5);
        assert_eq!(v, 42);
    }

    #[test]
    fn default_spec_validates() {
        PopulationSpec::default().validate().expect("default valid");
    }

    #[test]
    fn fitted_spec_spans_the_paper_suite() {
        let spec = PopulationSpec::fit_to_paper();
        spec.validate().expect("fitted spec valid");
        assert!((spec.ai_fraction - 0.25).abs() < 1e-9, "2 of 8 are AI");
        assert!(spec.size_min_bytes < spec.size_max_bytes);
        assert!(spec.kernels_min >= 1 && spec.kernels_min <= spec.kernels_max);
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let base = PopulationSpec::default();
        assert!(PopulationSpec { size: 0, ..base }.validate().is_err());
        assert!(PopulationSpec {
            kernels_min: 9,
            kernels_max: 3,
            ..base
        }
        .validate()
        .is_err());
        assert!(PopulationSpec {
            ai_fraction: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(PopulationSpec {
            size_min_bytes: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(PopulationSpec {
            sparsity_min: 0.9,
            sparsity_max: 0.1,
            ..base
        }
        .validate()
        .is_err());
        assert!(PopulationSpec {
            zipf_exponent: -1.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(PopulationSpec {
            duration_budget_secs: Some(0.0),
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn spec_hash_ignores_size_and_budget_but_not_sampling_params() {
        let base = PopulationSpec::default();
        let grown = PopulationSpec { size: 500, ..base };
        let budgeted = PopulationSpec {
            duration_budget_secs: Some(60.0),
            ..base
        };
        assert_eq!(base.spec_hash(), grown.spec_hash());
        assert_eq!(base.spec_hash(), budgeted.spec_hash());
        let reseeded = PopulationSpec {
            base_seed: 1,
            ..base
        };
        let refit = PopulationSpec {
            ai_fraction: 0.5,
            ..base
        };
        assert_ne!(base.spec_hash(), reseeded.spec_hash());
        assert_ne!(base.spec_hash(), refit.spec_hash());
    }
}
