//! Member synthesis: from a [`PopulationSpec`] + rank to a runnable
//! [`SyntheticWorkload`].
//!
//! Every draw a member makes comes from one `StdRng` seeded with
//! `derive_seed(base_seed, rank)`, in a **fixed order** (pool choice,
//! kernel count, kernel identities, class weights, family resolution,
//! topology, data shape, framework parameters).  That order is part of
//! the crate's determinism contract: one seed byte-reproduces every
//! member, and member `rank` is independent of the population size.

use dmpb_core::fnv::hash_bytes;
use dmpb_datagen::descriptor::{DataClass, DataDescriptor, Distribution};
use dmpb_datagen::rng::{derive_seed, seeded_rng};
use dmpb_metrics::json::ObjectWriter;
use dmpb_motifs::{DagPlan, MotifClass, MotifConfig, MotifKind};
use dmpb_perfmodel::profile::OpProfile;
use dmpb_workloads::framework::mapreduce::{per_node_job_profile, JobShape};
use dmpb_workloads::framework::tensorflow::{
    per_node_training_profile, LayerSpec, NetworkSpec, TrainingConfig,
};
use dmpb_workloads::{workload_by_kind, ClusterConfig, Workload, WorkloadKind};
use rand::rngs::StdRng;
use rand::Rng;

use crate::spec::{PopulationSpec, TopologyFamily};

/// A synthesized workload: a sampled motif DAG with a sampled data
/// shape and framework parameters, implementing the same [`Workload`]
/// contract as the eight named workloads.
///
/// The member reports a **carrier** [`WorkloadKind`] — the named
/// workload whose motif-class composition is nearest to the sampled one
/// (restricted to the matching big-data/AI side) — so the generic
/// pipeline stages that branch on `kind()` (parameter initialisation,
/// framework weighting) behave sensibly.  The member's *identity* is
/// never the carrier: it is the full synthesized description, hashed by
/// [`SyntheticWorkload::member_hash`] and carried by campaign cells.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    rank: u32,
    seed: u64,
    family: TopologyFamily,
    carrier: WorkloadKind,
    ai: bool,
    motifs: Vec<MotifKind>,
    plan: DagPlan,
    composition: Vec<(MotifClass, f64)>,
    input: DataDescriptor,
    job: Option<JobShape>,
    training: Option<TrainingConfig>,
    layers: Vec<LayerSpec>,
    label: String,
}

impl SyntheticWorkload {
    /// The member's rank within its population.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The derived seed the member was synthesized from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The concrete topology family the member's DAG was built from
    /// (`mixed` specs resolve to one of the four concrete families).
    pub fn family(&self) -> TopologyFamily {
        self.family
    }

    /// Whether the member draws from the AI motif pool.
    pub fn is_ai(&self) -> bool {
        self.ai
    }

    /// Stable display label, e.g. `"synthetic-fork-join-0007"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The sampled distinct kernel mix, in sampling order.
    pub fn kernel_mix(&self) -> &[MotifKind] {
        &self.motifs
    }

    /// Coarse *modeled* cost of running this member's campaign cell, in
    /// seconds.  A pure function of the synthesized description — never
    /// wall-clock — so duration-budget truncation is identical across
    /// machines, worker counts and store warmth.
    pub fn modeled_cost_secs(&self) -> f64 {
        let kernels = self.motifs.len() as f64;
        let gib = self.input.total_bytes as f64 / (1u64 << 30) as f64;
        let mut cost = 0.5 + 0.12 * kernels + 0.04 * gib;
        if let Some(training) = self.training {
            cost += training.total_steps as f64 * f64::from(training.batch_size) / 2.0e6;
        }
        cost
    }

    /// One-line JSON description of the full synthesized spec: identity,
    /// topology shape, kernel mix and every sampled parameter.  This is
    /// both the `--describe-population` output and the preimage of
    /// [`SyntheticWorkload::member_hash`].
    pub fn describe_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("record", "member");
        w.field_int("rank", i64::from(self.rank));
        w.field_u64_hex("seed", self.seed);
        w.field_str("label", &self.label);
        w.field_str("family", self.family.name());
        w.field_str("carrier", self.carrier.short_name());
        w.field_str("framework", self.carrier.framework().name());
        w.field_bool("ai", self.ai);
        w.field_int("kernels", self.motifs.len() as i64);
        let mix: Vec<&str> = self.motifs.iter().map(|m| m.name()).collect();
        w.field_str("motifs", &mix.join("+"));
        w.field_str("shape", &self.plan.shape_summary());
        w.field_str("data_class", self.input.class.name());
        w.field_int("total_bytes", self.input.total_bytes as i64);
        w.field_int("element_bytes", self.input.element_bytes as i64);
        w.field_f64("sparsity", self.input.sparsity);
        w.field_str("value_distribution", self.input.distribution.name());
        if let Some(job) = &self.job {
            w.field_f64("shuffle_ratio", job.shuffle_ratio);
            w.field_f64("output_ratio", job.output_ratio);
            w.field_int("output_replication", i64::from(job.output_replication));
            w.field_int("heap_bytes", job.heap_bytes as i64);
            w.field_f64("pipeline_factor", job.pipeline_factor);
        }
        if let Some(training) = &self.training {
            w.field_int("total_steps", training.total_steps as i64);
            w.field_int("batch_size", i64::from(training.batch_size));
        }
        w.field_f64("modeled_cost_secs", self.modeled_cost_secs());
        w.finish()
    }

    /// Hash of the full synthesized description — the member's identity
    /// in campaign-cell fingerprints and tuning-cache keys.
    pub fn member_hash(&self) -> u64 {
        hash_bytes(self.describe_json().as_bytes())
    }

    /// The per-motif weight the decomposition will assign this motif:
    /// its class's composition ratio split evenly over the class's
    /// sampled motifs (the same rule `dmpb_core::decompose` applies).
    fn motif_weight(&self, motif: MotifKind) -> f64 {
        let class = motif.class();
        let ratio = self
            .composition
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, r)| *r)
            .unwrap_or(0.0);
        let class_count = self.motifs.iter().filter(|m| m.class() == class).count();
        ratio / class_count.max(1) as f64
    }
}

impl Workload for SyntheticWorkload {
    fn kind(&self) -> WorkloadKind {
        self.carrier
    }

    fn pattern(&self) -> &'static str {
        match self.family {
            TopologyFamily::Chain => "synthetic chain",
            TopologyFamily::ForkJoin => "synthetic fork-join",
            TopologyFamily::Diamond => "synthetic diamond",
            TopologyFamily::Layered => "synthetic layered",
            TopologyFamily::Mixed => "synthetic mixed",
        }
    }

    fn input_descriptor(&self) -> DataDescriptor {
        self.input
    }

    fn motif_composition(&self) -> Vec<(MotifClass, f64)> {
        self.composition.clone()
    }

    fn involved_motifs(&self) -> Vec<MotifKind> {
        self.motifs.clone()
    }

    fn dag_plan(&self) -> DagPlan {
        self.plan.clone()
    }

    fn per_node_profile(&self, cluster: &ClusterConfig) -> OpProfile {
        if let Some(training) = self.training {
            let network = NetworkSpec {
                name: "Synthetic",
                layers: self.layers.clone(),
                input_image_bytes: self.input.element_bytes,
            };
            return per_node_training_profile(&network, training, cluster);
        }
        let job = self.job.expect("big-data members carry a job shape");
        let per_node = (self.input.total_bytes / u64::from(cluster.slave_nodes()))
            .max(self.input.element_bytes);
        let config = MotifConfig::big_data_default().with_num_tasks(cluster.tasks_per_node);
        let data = self.input.scaled_to(per_node);
        let profiles: Vec<OpProfile> = self
            .motifs
            .iter()
            .map(|&motif| {
                let share = ((per_node as f64 * self.motif_weight(motif)) as u64)
                    .max(self.input.element_bytes);
                motif.cost_profile(&data.scaled_to(share), &config)
            })
            .collect();
        per_node_job_profile(&job, cluster, profiles, &self.label)
    }
}

/// Synthesizes the members of one [`PopulationSpec`].
#[derive(Debug, Clone)]
pub struct PopulationGenerator {
    spec: PopulationSpec,
}

/// A generated population after duration-budget truncation.
#[derive(Debug)]
pub struct BudgetedPopulation {
    /// The members kept, a rank prefix of the full population.
    pub members: Vec<SyntheticWorkload>,
    /// The population size before truncation.
    pub full_size: u32,
    /// The budget applied, if any.
    pub budget_secs: Option<f64>,
    /// Summed modeled cost of the kept members.
    pub modeled_cost_secs: f64,
}

impl BudgetedPopulation {
    /// Whether the budget dropped any member.
    pub fn truncated(&self) -> bool {
        self.members.len() < self.full_size as usize
    }
}

impl PopulationGenerator {
    /// Creates a generator, validating the spec.
    pub fn new(spec: PopulationSpec) -> Result<Self, String> {
        spec.validate()?;
        Ok(Self { spec })
    }

    /// The spec members are sampled from.
    pub fn spec(&self) -> &PopulationSpec {
        &self.spec
    }

    /// Synthesizes member `rank`.  Pure: depends only on the spec's
    /// sampling parameters and the rank.
    pub fn member(&self, rank: u32) -> SyntheticWorkload {
        synthesize(&self.spec, rank)
    }

    /// Synthesizes the full population, ignoring any duration budget.
    pub fn generate(&self) -> Vec<SyntheticWorkload> {
        (0..self.spec.size).map(|rank| self.member(rank)).collect()
    }

    /// Synthesizes the population and applies the spec's duration
    /// budget: members are kept in rank order while their summed
    /// [modeled cost](SyntheticWorkload::modeled_cost_secs) fits the
    /// budget.  At least one member is always kept, so a budgeted
    /// campaign never silently degenerates to zero cells.
    pub fn generate_budgeted(&self) -> BudgetedPopulation {
        let all = self.generate();
        let full_size = self.spec.size;
        let budget = self.spec.duration_budget_secs;
        let mut members = Vec::with_capacity(all.len());
        let mut spent = 0.0;
        for member in all {
            let cost = member.modeled_cost_secs();
            if let Some(budget) = budget {
                if !members.is_empty() && spent + cost > budget {
                    break;
                }
            }
            spent += cost;
            members.push(member);
        }
        BudgetedPopulation {
            members,
            full_size,
            budget_secs: budget,
            modeled_cost_secs: spent,
        }
    }
}

/// Synthesizes one member.  The draw order below is frozen — see the
/// module docs.
fn synthesize(spec: &PopulationSpec, rank: u32) -> SyntheticWorkload {
    let seed = derive_seed(spec.base_seed, u64::from(rank));
    let mut rng = seeded_rng(seed);

    // 1. Pool choice and kernel mix.
    let ai = rng.gen_bool(spec.ai_fraction);
    let pool: Vec<MotifKind> = MotifKind::ALL
        .iter()
        .copied()
        .filter(|k| k.is_ai() == ai)
        .collect();
    let lo = spec.kernels_min.clamp(1, pool.len() as u32);
    let hi = spec.kernels_max.clamp(lo, pool.len() as u32);
    let kernels = rng.gen_range(lo..=hi) as usize;
    let mut remaining = pool;
    let mut motifs = Vec::with_capacity(kernels);
    for _ in 0..kernels {
        let i = rng.gen_range(0..remaining.len());
        motifs.push(remaining.swap_remove(i));
    }

    // 2. Class-ratio composition from per-motif weights.
    let mut composition: Vec<(MotifClass, f64)> = Vec::new();
    for &motif in &motifs {
        let weight = 0.5 + rng.gen::<f64>();
        match composition.iter_mut().find(|(c, _)| *c == motif.class()) {
            Some((_, w)) => *w += weight,
            None => composition.push((motif.class(), weight)),
        }
    }
    let total: f64 = composition.iter().map(|(_, w)| w).sum();
    for (_, w) in &mut composition {
        *w /= total;
    }

    // 3. Topology.
    let family = match spec.family {
        TopologyFamily::Mixed => TopologyFamily::CONCRETE[rng.gen_range(0..4)],
        concrete => concrete,
    };
    let plan = build_plan(family, &motifs, &mut rng);

    // 4. Data shape.
    let total_bytes = spec.size_distribution.sample_bytes(
        &mut rng,
        spec.size_min_bytes,
        spec.size_max_bytes,
        spec.zipf_exponent,
    );
    let sparsity = if spec.sparsity_max > spec.sparsity_min {
        rng.gen_range(spec.sparsity_min..spec.sparsity_max)
    } else {
        spec.sparsity_min
    };

    // 5. Framework parameters and the final descriptor.
    let (input, job, training, layers) = if ai {
        let side = [16u32, 32, 64][rng.gen_range(0..3)];
        let element_bytes = u64::from(side) * u64::from(side) * 3;
        let training = TrainingConfig {
            total_steps: rng.gen_range(200u64..=2_000),
            batch_size: [32u32, 64, 128][rng.gen_range(0..3)],
        };
        let layers: Vec<LayerSpec> = motifs
            .iter()
            .enumerate()
            .map(|(i, &motif)| {
                let channels = if i == 0 { 3 } else { rng.gen_range(8u32..=64) };
                let filter = if matches!(
                    motif,
                    MotifKind::Convolution | MotifKind::MaxPooling | MotifKind::AveragePooling
                ) {
                    [2u32, 3, 5][rng.gen_range(0..3)]
                } else {
                    1
                };
                LayerSpec::new(motif, side, side, channels, filter)
            })
            .collect();
        let input = DataDescriptor::new(
            DataClass::Image,
            total_bytes,
            element_bytes,
            sparsity,
            Distribution::Uniform,
        );
        (input, None, Some(training), layers)
    } else {
        let class = [
            DataClass::Text,
            DataClass::Vector,
            DataClass::Graph,
            DataClass::Matrix,
        ][rng.gen_range(0..4)];
        let element_bytes = [64u64, 100, 128, 256, 512, 1024][rng.gen_range(0..6)];
        let distribution = match rng.gen_range(0..3u32) {
            0 => Distribution::Uniform,
            1 => Distribution::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            },
            _ => Distribution::PowerLaw {
                exponent: spec.zipf_exponent,
            },
        };
        let job = JobShape {
            input_bytes: total_bytes,
            shuffle_ratio: rng.gen_range(0.05..1.0),
            output_ratio: rng.gen_range(0.01..1.0),
            output_replication: rng.gen_range(1u32..=3),
            heap_bytes: rng.gen_range(2u64..=8) << 30,
            pipeline_factor: rng.gen_range(0.2..1.0),
        };
        let input = DataDescriptor::new(class, total_bytes, element_bytes, sparsity, distribution);
        (input, Some(job), None, Vec::new())
    };

    let carrier = nearest_carrier(&composition, ai);
    let label = format!("synthetic-{}-{rank:04}", family.name());

    SyntheticWorkload {
        rank,
        seed,
        family,
        carrier,
        ai,
        motifs,
        plan,
        composition,
        input,
        job,
        training,
        layers,
        label,
    }
}

/// The named workload whose motif-class composition is nearest (squared
/// Euclidean distance over the eight classes) to the sampled one, among
/// the workloads on the same big-data/AI side.  Ties break toward suite
/// order, so the choice is deterministic.
fn nearest_carrier(composition: &[(MotifClass, f64)], ai: bool) -> WorkloadKind {
    let ratio_of = |ratios: &[(MotifClass, f64)], class: MotifClass| -> f64 {
        ratios
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|(_, r)| *r)
            .sum()
    };
    let mut best: Option<(f64, WorkloadKind)> = None;
    for kind in WorkloadKind::ALL {
        if kind.is_ai() != ai {
            continue;
        }
        let named = workload_by_kind(kind).motif_composition();
        let distance: f64 = MotifClass::ALL
            .iter()
            .map(|&class| {
                let d = ratio_of(composition, class) - ratio_of(&named, class);
                d * d
            })
            .sum();
        if best.map_or(true, |(d, _)| distance < d) {
            best = Some((distance, kind));
        }
    }
    best.expect("both pools have named workloads").1
}

/// Builds the member's DAG for a concrete family.  Families that need
/// more motifs than sampled degrade to a chain (documented on
/// [`TopologyFamily`]); every built plan places exactly `motifs`, so
/// the decomposition always adopts it.
fn build_plan(family: TopologyFamily, motifs: &[MotifKind], rng: &mut StdRng) -> DagPlan {
    match family {
        TopologyFamily::Chain | TopologyFamily::Mixed => DagPlan::chain(motifs),
        TopologyFamily::ForkJoin => fork_join_plan(motifs, rng),
        TopologyFamily::Diamond => diamond_plan(motifs),
        TopologyFamily::Layered => layered_plan(motifs, rng),
    }
}

/// 2–4 parallel branches from the input, joining at one output node;
/// motifs are dealt round-robin so every branch is non-empty.
fn fork_join_plan(motifs: &[MotifKind], rng: &mut StdRng) -> DagPlan {
    if motifs.len() < 2 {
        return DagPlan::chain(motifs);
    }
    let branches = rng.gen_range(2..=motifs.len().min(4));
    let mut b = DagPlan::builder();
    let input = b.node("input");
    let join = b.node("join");
    for branch in 0..branches {
        let lane: Vec<MotifKind> = motifs
            .iter()
            .copied()
            .skip(branch)
            .step_by(branches)
            .collect();
        let mut previous = input;
        for (stage, &motif) in lane.iter().enumerate() {
            if stage + 1 == lane.len() {
                b.edge(previous, join, motif);
            } else {
                let node = b.node(format!("b{branch}-s{stage}"));
                b.edge(previous, node, motif);
                previous = node;
            }
        }
    }
    b.build()
}

/// Fork into two branches, join mid-graph, then a tail chain of the
/// remaining motifs.  Needs ≥ 4 motifs; degrades to a chain below that.
fn diamond_plan(motifs: &[MotifKind]) -> DagPlan {
    if motifs.len() < 4 {
        return DagPlan::chain(motifs);
    }
    let mut b = DagPlan::builder();
    let input = b.node("input");
    let left = b.node("left");
    let right = b.node("right");
    let mut previous = b.node("merged");
    b.edge(input, left, motifs[0]);
    b.edge(input, right, motifs[1]);
    b.edge(left, previous, motifs[2]);
    b.edge(right, previous, motifs[3]);
    for (i, &motif) in motifs[4..].iter().enumerate() {
        let node = b.node(format!("tail-{i}"));
        b.edge(previous, node, motif);
        previous = node;
    }
    b.build()
}

/// Random acyclic layered graph: 2–4 layers of parallel motif edges
/// between layer-boundary nodes.  Each layer keeps at least one motif,
/// and motifs past the first layer occasionally source from one
/// boundary earlier (a forward layer-skipping edge, still acyclic).
fn layered_plan(motifs: &[MotifKind], rng: &mut StdRng) -> DagPlan {
    if motifs.len() < 2 {
        return DagPlan::chain(motifs);
    }
    let layers = rng.gen_range(2..=motifs.len().min(4));
    let assignment: Vec<usize> = (0..motifs.len())
        .map(|i| {
            if i < layers {
                i
            } else {
                rng.gen_range(0..layers)
            }
        })
        .collect();
    let mut b = DagPlan::builder();
    let bounds: Vec<usize> = (0..=layers).map(|i| b.node(format!("layer-{i}"))).collect();
    for layer in 0..layers {
        for (i, &motif) in motifs.iter().enumerate() {
            if assignment[i] != layer {
                continue;
            }
            let from = if layer >= 1 && rng.gen_bool(0.25) {
                bounds[layer - 1]
            } else {
                bounds[layer]
            };
            b.edge(from, bounds[layer + 1], motif);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SizeDistribution;
    use dmpb_core::decompose::decompose;

    fn spec() -> PopulationSpec {
        PopulationSpec {
            size: 24,
            ..PopulationSpec::default()
        }
    }

    fn generator(spec: PopulationSpec) -> PopulationGenerator {
        PopulationGenerator::new(spec).expect("valid spec")
    }

    #[test]
    fn one_seed_byte_reproduces_the_population() {
        let a: Vec<String> = generator(spec())
            .generate()
            .iter()
            .map(|m| m.describe_json())
            .collect();
        let b: Vec<String> = generator(spec())
            .generate()
            .iter()
            .map(|m| m.describe_json())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn members_are_distinct_and_ranks_are_size_independent() {
        let small = generator(spec()).generate();
        let grown = generator(PopulationSpec { size: 48, ..spec() }).generate();
        let mut hashes: Vec<u64> = grown.iter().map(|m| m.member_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 48, "members must be pairwise distinct");
        for (a, b) in small.iter().zip(&grown) {
            assert_eq!(a.describe_json(), b.describe_json(), "rank {}", a.rank());
        }
    }

    #[test]
    fn plans_cover_exactly_the_sampled_motifs_and_decompose_adopts_them() {
        for member in generator(spec()).generate() {
            assert!(
                member.dag_plan().covers_exactly(&member.involved_motifs()),
                "{}",
                member.label()
            );
            let d = decompose(&member);
            assert_eq!(d.plan, member.dag_plan(), "{}", member.label());
            assert!((d.total_weight() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn compositions_are_normalised_and_class_pure() {
        for member in generator(spec()).generate() {
            let total: f64 = member.motif_composition().iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", member.label());
            for motif in member.kernel_mix() {
                assert_eq!(motif.is_ai(), member.is_ai(), "{}", member.label());
            }
            assert_eq!(member.kind().is_ai(), member.is_ai(), "carrier side");
        }
    }

    #[test]
    fn ai_fraction_extremes_pin_the_pool() {
        let all_bd = generator(PopulationSpec {
            ai_fraction: 0.0,
            ..spec()
        })
        .generate();
        assert!(all_bd.iter().all(|m| !m.is_ai()));
        let all_ai = generator(PopulationSpec {
            ai_fraction: 1.0,
            kernels_max: 14,
            ..spec()
        })
        .generate();
        assert!(all_ai.iter().all(|m| m.is_ai()));
    }

    #[test]
    fn branching_families_genuinely_branch() {
        for family in [
            TopologyFamily::ForkJoin,
            TopologyFamily::Diamond,
            TopologyFamily::Layered,
        ] {
            let members = generator(PopulationSpec {
                family,
                kernels_min: 4,
                kernels_max: 8,
                size: 12,
                ..spec()
            })
            .generate();
            let branching = members
                .iter()
                .filter(|m| m.dag_plan().is_branching())
                .count();
            assert!(
                branching >= members.len() - 2,
                "{family}: only {branching} of {} branch",
                members.len()
            );
        }
    }

    #[test]
    fn chain_family_stays_linear() {
        for member in generator(PopulationSpec {
            family: TopologyFamily::Chain,
            ..spec()
        })
        .generate()
        {
            assert!(!member.dag_plan().is_branching(), "{}", member.label());
        }
    }

    #[test]
    fn members_measure_to_finite_metrics() {
        let cluster = ClusterConfig::five_node_westmere();
        let members = generator(PopulationSpec {
            size: 4,
            ai_fraction: 0.5,
            size_max_bytes: 10 << 30,
            ..spec()
        })
        .generate();
        assert!(members.iter().any(|m| m.is_ai()) || members.iter().any(|m| !m.is_ai()));
        for member in members {
            let m = member.measure(&cluster);
            assert!(m.is_finite(), "{}", member.label());
            assert!(m.runtime_secs > 0.0, "{}", member.label());
        }
    }

    #[test]
    fn budget_truncation_keeps_a_rank_prefix() {
        let unbudgeted = generator(spec()).generate();
        let total: f64 = unbudgeted.iter().map(|m| m.modeled_cost_secs()).sum();
        let budgeted = generator(PopulationSpec {
            duration_budget_secs: Some(total / 3.0),
            ..spec()
        })
        .generate_budgeted();
        assert!(budgeted.truncated());
        assert!(!budgeted.members.is_empty());
        assert!(budgeted.modeled_cost_secs <= total / 3.0 + 1e-9);
        for (kept, full) in budgeted.members.iter().zip(&unbudgeted) {
            assert_eq!(kept.describe_json(), full.describe_json());
        }
    }

    #[test]
    fn tiny_budget_still_keeps_one_member() {
        let budgeted = generator(PopulationSpec {
            duration_budget_secs: Some(1e-6),
            ..spec()
        })
        .generate_budgeted();
        assert_eq!(budgeted.members.len(), 1);
        assert!(budgeted.truncated());
    }

    #[test]
    fn no_budget_keeps_the_full_population() {
        let budgeted = generator(spec()).generate_budgeted();
        assert!(!budgeted.truncated());
        assert_eq!(budgeted.members.len(), spec().size as usize);
    }

    #[test]
    fn kernel_counts_respect_the_spec_and_the_pool() {
        for member in generator(PopulationSpec {
            kernels_min: 5,
            kernels_max: 16,
            ai_fraction: 0.5,
            ..spec()
        })
        .generate()
        {
            let k = member.kernel_mix().len() as u32;
            let pool = if member.is_ai() { 14 } else { 19 };
            assert!(k >= 5 && k <= 16.min(pool), "{}: {k}", member.label());
            let mut distinct = member.kernel_mix().to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len() as u32, k, "kernels must be distinct");
        }
    }

    #[test]
    fn data_volumes_respect_the_sampling_range() {
        let spec = PopulationSpec {
            size_distribution: SizeDistribution::Zipf,
            size_min_bytes: 1 << 28,
            size_max_bytes: 1 << 34,
            ..spec()
        };
        for member in generator(spec).generate() {
            let bytes = member.input_descriptor().total_bytes;
            assert!(
                (spec.size_min_bytes..=spec.size_max_bytes).contains(&bytes),
                "{}: {bytes}",
                member.label()
            );
        }
    }

    #[test]
    fn fitted_population_synthesizes_cleanly() {
        let fitted = PopulationSpec {
            size: 8,
            ..PopulationSpec::fit_to_paper()
        };
        let members = generator(fitted).generate();
        assert_eq!(members.len(), 8);
        for member in &members {
            assert!(member.dag_plan().covers_exactly(&member.involved_motifs()));
        }
    }
}
