//! Instruction-mix breakdown (Fig. 5 of the paper).
//!
//! The mix is expressed as fractions of dynamic instructions that are
//! integer, floating-point, load, store or branch operations.  The five
//! fractions sum to one; [`InstructionMix::normalized`] enforces that.

/// Fractions of the dynamic instruction stream per category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Fraction of integer ALU instructions.
    pub integer: f64,
    /// Fraction of floating-point instructions.
    pub floating_point: f64,
    /// Fraction of load instructions.
    pub load: f64,
    /// Fraction of store instructions.
    pub store: f64,
    /// Fraction of branch instructions.
    pub branch: f64,
}

impl InstructionMix {
    /// Builds a mix from raw instruction counts.
    ///
    /// Returns an all-zero mix if every count is zero.
    pub fn from_counts(
        integer: u64,
        floating_point: u64,
        load: u64,
        store: u64,
        branch: u64,
    ) -> Self {
        let total = (integer + floating_point + load + store + branch) as f64;
        if total == 0.0 {
            return Self::zero();
        }
        Self {
            integer: integer as f64 / total,
            floating_point: floating_point as f64 / total,
            load: load as f64 / total,
            store: store as f64 / total,
            branch: branch as f64 / total,
        }
    }

    /// The all-zero mix.
    pub fn zero() -> Self {
        Self {
            integer: 0.0,
            floating_point: 0.0,
            load: 0.0,
            store: 0.0,
            branch: 0.0,
        }
    }

    /// Sum of the five fractions.
    pub fn total(&self) -> f64 {
        self.integer + self.floating_point + self.load + self.store + self.branch
    }

    /// Returns a copy rescaled so the fractions sum to one (no-op for an
    /// all-zero mix).
    pub fn normalized(&self) -> Self {
        let t = self.total();
        if t == 0.0 {
            return *self;
        }
        Self {
            integer: self.integer / t,
            floating_point: self.floating_point / t,
            load: self.load / t,
            store: self.store / t,
            branch: self.branch / t,
        }
    }

    /// Fraction of data-movement instructions (load + store), the quantity
    /// the paper quotes when comparing TeraSort (39 % real vs 37 % proxy).
    pub fn data_movement(&self) -> f64 {
        self.load + self.store
    }

    /// Per-category values paired with their report labels.
    pub fn categories(&self) -> [(&'static str, f64); 5] {
        [
            ("integer", self.integer),
            ("floating-point", self.floating_point),
            ("load", self.load),
            ("store", self.store),
            ("branch", self.branch),
        ]
    }

    /// Weighted blend of two mixes: `self * (1 - t) + other * t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0, 1]`.
    pub fn blend(&self, other: &InstructionMix, t: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&t),
            "blend factor must be within [0, 1]"
        );
        Self {
            integer: self.integer * (1.0 - t) + other.integer * t,
            floating_point: self.floating_point * (1.0 - t) + other.floating_point * t,
            load: self.load * (1.0 - t) + other.load * t,
            store: self.store * (1.0 - t) + other.store * t,
            branch: self.branch * (1.0 - t) + other.branch * t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_normalises() {
        let mix = InstructionMix::from_counts(40, 10, 25, 15, 10);
        assert!((mix.total() - 1.0).abs() < 1e-12);
        assert!((mix.integer - 0.4).abs() < 1e-12);
        assert!((mix.data_movement() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_counts_give_zero_mix() {
        let mix = InstructionMix::from_counts(0, 0, 0, 0, 0);
        assert_eq!(mix, InstructionMix::zero());
        assert_eq!(mix.normalized(), mix);
    }

    #[test]
    fn normalized_sums_to_one() {
        let mix = InstructionMix {
            integer: 2.0,
            floating_point: 1.0,
            load: 1.0,
            store: 0.5,
            branch: 0.5,
        };
        assert!((mix.normalized().total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blend_endpoints() {
        let a = InstructionMix::from_counts(10, 0, 0, 0, 0);
        let b = InstructionMix::from_counts(0, 10, 0, 0, 0);
        assert_eq!(a.blend(&b, 0.0), a);
        assert_eq!(a.blend(&b, 1.0), b);
        let mid = a.blend(&b, 0.5);
        assert!((mid.integer - 0.5).abs() < 1e-12);
        assert!((mid.floating_point - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn blend_rejects_out_of_range_factor() {
        let a = InstructionMix::zero();
        let _ = a.blend(&a, 2.0);
    }

    #[test]
    fn categories_cover_all_fields() {
        let mix = InstructionMix::from_counts(1, 2, 3, 4, 5);
        let sum: f64 = mix.categories().iter().map(|(_, v)| v).sum();
        assert!((sum - mix.total()).abs() < 1e-12);
    }
}
