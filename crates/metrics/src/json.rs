//! Minimal, dependency-free JSON serialization for reports.
//!
//! The workspace has no serde; this module provides the small subset the
//! reporting paths need: writing *flat* JSON objects (string / integer /
//! float / bool values, no nesting) and parsing them back.  The scenario
//! campaign engine's content-addressed result store persists one such
//! object per line (JSON lines), and the bench snapshot emitters use the
//! same writer.
//!
//! Round-trip guarantees, which the store's byte-identical-cache-hit
//! invariant rests on:
//!
//! * **Floats** are written with Rust's shortest-round-trip `Display`
//!   formatting, so `write → parse` reproduces the exact same `f64` bits
//!   for every finite value.  Non-finite values are rejected by
//!   [`ObjectWriter::field_f64`] (the reports never contain them).
//! * **`u64` identities** (seeds, fingerprints, checksums) are written as
//!   fixed-width hex *strings* — encoding them as JSON numbers would lose
//!   precision beyond 2^53 in standard JSON tooling.
//! * **Key order is preserved** by [`parse_object`], so re-serializing a
//!   parsed object yields the original line byte for byte.

use std::fmt::Write as _;

/// A scalar value of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A (string) value, unescaped.
    Str(String),
    /// An integer value (no decimal point or exponent in the source).
    Int(i64),
    /// A floating-point value.
    Float(f64),
    /// A boolean value.
    Bool(bool),
}

impl JsonScalar {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            JsonScalar::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Float(v) => Some(*v),
            JsonScalar::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonScalar::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

/// Escapes a string for inclusion in a JSON document (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for one flat JSON object.
///
/// ```
/// use dmpb_metrics::json::ObjectWriter;
/// let mut w = ObjectWriter::new();
/// w.field_str("name", "TeraSort");
/// w.field_int("cells", 8);
/// w.field_f64("ratio", 0.5);
/// assert_eq!(w.finish(), r#"{"name":"TeraSort","cells":8,"ratio":0.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) {
        self.buf.push(if self.buf.is_empty() { '{' } else { ',' });
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Appends a string field.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
    }

    /// Appends an integer field.
    pub fn field_int(&mut self, key: &str, value: i64) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Appends a `u64` identity (seed / fingerprint / checksum) as a
    /// fixed-width hex string, lossless beyond JSON's 2^53 number range.
    pub fn field_u64_hex(&mut self, key: &str, value: u64) {
        self.key(key);
        let _ = write!(self.buf, "\"{value:016x}\"");
    }

    /// Appends a float field with shortest-round-trip formatting.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — the reports this writer serializes
    /// never legitimately contain them, and silently emitting invalid
    /// JSON would corrupt the store.
    pub fn field_f64(&mut self, key: &str, value: f64) {
        assert!(value.is_finite(), "non-finite value for JSON field {key}");
        self.key(key);
        let mut text = format!("{value}");
        // `1.0` renders as "1": add the point back so the reader sees a
        // float, keeping Int/Float round-trips unambiguous.
        if !text.contains(['.', 'e', 'E']) {
            text.push_str(".0");
        }
        self.buf.push_str(&text);
    }

    /// Appends a bool field.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        let _ = write!(self.buf, "{value}");
    }

    /// Closes and returns the object.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

/// Parses one flat JSON object into its `(key, scalar)` pairs, preserving
/// the key order of the source.  Nested objects and arrays are rejected —
/// the report formats this module serves are flat by construction.
pub fn parse_object(src: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.scalar()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        p.pos, other
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected `{}` at byte {}, found {:?}",
                want as char,
                self.pos.saturating_sub(1),
                other.map(|b| b as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<JsonScalar, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonScalar::Str(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonScalar::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonScalar::Bool(false))
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("number bytes are ASCII");
                if text.contains(['.', 'e', 'E']) {
                    text.parse::<f64>()
                        .map(JsonScalar::Float)
                        .map_err(|e| format!("bad float `{text}`: {e}"))
                } else {
                    text.parse::<i64>()
                        .map(JsonScalar::Int)
                        .map_err(|e| format!("bad integer `{text}`: {e}"))
                }
            }
            other => Err(format!(
                "unsupported JSON value starting with {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_flat_objects() {
        let mut w = ObjectWriter::new();
        w.field_str("name", "Tera\"Sort\"");
        w.field_int("cells", -3);
        w.field_u64_hex("seed", 0x00D4_17A4_0F1F);
        w.field_f64("ratio", 0.9375);
        w.field_bool("ok", true);
        assert_eq!(
            w.finish(),
            r#"{"name":"Tera\"Sort\"","cells":-3,"seed":"000000d417a40f1f","ratio":0.9375,"ok":true}"#
        );
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }

    #[test]
    fn whole_floats_stay_floats_across_a_round_trip() {
        let mut w = ObjectWriter::new();
        w.field_f64("a", 1.0);
        w.field_f64("b", -2.0);
        w.field_f64("c", 0.5);
        let line = w.finish();
        assert_eq!(line, r#"{"a":1.0,"b":-2.0,"c":0.5}"#);
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields[0].1, JsonScalar::Float(1.0));
        assert_eq!(fields[1].1, JsonScalar::Float(-2.0));
        assert_eq!(fields[2].1, JsonScalar::Float(0.5));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.1f64,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            123_456_789.123_456_79,
            -0.0,
            2.0f64.powi(60),
        ] {
            let mut w = ObjectWriter::new();
            w.field_f64("v", v);
            let line = w.finish();
            let parsed = parse_object(&line).unwrap();
            let back = parsed[0].1.as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{line}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_are_rejected() {
        ObjectWriter::new().field_f64("bad", f64::NAN);
    }

    #[test]
    fn parser_reads_back_what_the_writer_wrote() {
        let mut w = ObjectWriter::new();
        w.field_str("k", "v with \n newline and ünïcode");
        w.field_int("n", 42);
        w.field_f64("f", 2.25);
        w.field_bool("b", false);
        let line = w.finish();
        let fields = parse_object(&line).unwrap();
        assert_eq!(
            fields,
            vec![
                (
                    "k".to_string(),
                    JsonScalar::Str("v with \n newline and ünïcode".to_string())
                ),
                ("n".to_string(), JsonScalar::Int(42)),
                ("f".to_string(), JsonScalar::Float(2.25)),
                ("b".to_string(), JsonScalar::Bool(false)),
            ]
        );
    }

    #[test]
    fn parser_rejects_nesting_and_garbage() {
        assert!(parse_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_object(r#"{"a":[1,2]}"#).is_err());
        assert!(parse_object(r#"{"a":1} trailing"#).is_err());
        assert!(parse_object("not json").is_err());
        assert_eq!(parse_object("{}").unwrap(), vec![]);
    }

    #[test]
    fn u64_identities_survive_the_hex_encoding() {
        let mut w = ObjectWriter::new();
        w.field_u64_hex("fp", u64::MAX);
        let line = w.finish();
        let fields = parse_object(&line).unwrap();
        let parsed = u64::from_str_radix(fields[0].1.as_str().unwrap(), 16).unwrap();
        assert_eq!(parsed, u64::MAX);
    }
}
