//! # dmpb-metrics — metric vectors, accuracy scoring and reporting
//!
//! The proxy benchmark methodology evaluates a candidate proxy by comparing
//! its **metric vector M** against the metric vector of the original
//! workload (Table V of the paper):
//!
//! * processor performance — IPC, MIPS;
//! * instruction mix — load / store / branch / floating-point / integer ratios;
//! * branch prediction — branch miss-prediction ratio;
//! * cache behaviour — L1I / L1D / L2 / L3 hit ratios;
//! * memory bandwidth — read / write / total;
//! * disk I/O behaviour — disk I/O bandwidth;
//! * runtime.
//!
//! The per-metric accuracy is Equation 3 of the paper:
//! `Accuracy(ValR, ValP) = 1 - |ValP - ValR| / ValR`, and a proxy is
//! *qualified* when every tracked metric deviates by less than the
//! configured bound (15 % by default).
//!
//! This crate is dependency-free so every other crate in the workspace can
//! use it: the performance-model substrate produces [`MetricVector`]s, the
//! auto-tuner consumes [`accuracy::AccuracyReport`]s, and the experiment
//! harness renders them with [`table`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod histogram;
pub mod instruction_mix;
pub mod json;
pub mod stats;
pub mod table;
pub mod vector;

pub use accuracy::{accuracy, AccuracyReport};
pub use histogram::{HistogramSnapshot, LatencyHistogram, LATENCY_BUCKET_BOUNDS_NS};
pub use instruction_mix::InstructionMix;
pub use vector::{MetricId, MetricVector};
