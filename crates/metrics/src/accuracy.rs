//! Accuracy scoring (Equation 3 of the paper) and deviation analysis.
//!
//! `Accuracy(ValR, ValP) = 1 - |ValP - ValR| / ValR`, where `ValR` is the
//! real workload's (node-averaged) value and `ValP` the proxy's value.
//! The paper clamps interpretation to `[0, 1]`: numbers closer to 1 mean
//! higher accuracy.  The feedback stage of the auto-tuner instead works
//! with the *deviation* `|ValP - ValR| / ValR` and iterates until every
//! tracked metric deviates by less than the configured bound (15 %).

use crate::vector::{MetricId, MetricVector};

/// Per-metric accuracy of a proxy benchmark versus the real workload,
/// following Equation 3.
///
/// A zero real value with a non-zero proxy value yields an accuracy of 0
/// (the deviation is unbounded); two zero values are a perfect match.
pub fn accuracy(real: f64, proxy: f64) -> f64 {
    if real == 0.0 {
        return if proxy == 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - ((proxy - real) / real).abs()).clamp(0.0, 1.0)
}

/// Relative deviation `|ValP - ValR| / ValR` used by the feedback stage.
///
/// A zero real value with a non-zero proxy value is reported as an infinite
/// deviation.
pub fn deviation(real: f64, proxy: f64) -> f64 {
    if real == 0.0 {
        return if proxy == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((proxy - real) / real).abs()
}

/// Accuracy of a proxy metric vector against the real workload's vector
/// over a chosen set of metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    entries: Vec<(MetricId, f64)>,
}

impl AccuracyReport {
    /// Compares `proxy` against `real` over `metrics`.
    pub fn compare(real: &MetricVector, proxy: &MetricVector, metrics: &[MetricId]) -> Self {
        let entries = metrics
            .iter()
            .map(|&id| (id, accuracy(real.get(id), proxy.get(id))))
            .collect();
        Self { entries }
    }

    /// Compares over the paper's default tuning metrics (everything except
    /// raw runtime).
    pub fn compare_default(real: &MetricVector, proxy: &MetricVector) -> Self {
        Self::compare(real, proxy, &MetricId::TUNABLE)
    }

    /// Per-metric `(id, accuracy)` entries in the order they were requested.
    pub fn entries(&self) -> &[(MetricId, f64)] {
        &self.entries
    }

    /// Accuracy of a single metric, if it was part of the comparison.
    pub fn get(&self, id: MetricId) -> Option<f64> {
        self.entries.iter().find(|(m, _)| *m == id).map(|(_, a)| *a)
    }

    /// Arithmetic mean accuracy across all compared metrics (the "average
    /// accuracy above 90 %" headline number of the paper).
    pub fn average(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        self.entries.iter().map(|(_, a)| a).sum::<f64>() / self.entries.len() as f64
    }

    /// Minimum accuracy across all compared metrics.
    pub fn worst(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, a)| *a)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// The metric with the lowest accuracy, if any metrics were compared.
    pub fn worst_metric(&self) -> Option<(MetricId, f64)> {
        self.entries
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("accuracy is finite"))
    }

    /// Metrics whose deviation exceeds `threshold` (i.e. accuracy below
    /// `1 - threshold`), the set fed back to the adjusting stage.
    pub fn exceeding(&self, threshold: f64) -> Vec<(MetricId, f64)> {
        self.entries
            .iter()
            .copied()
            .filter(|(_, a)| *a < 1.0 - threshold)
            .collect()
    }

    /// Returns true if every compared metric deviates by at most
    /// `threshold` — the paper's qualification condition.
    pub fn is_qualified(&self, threshold: f64) -> bool {
        self.exceeding(threshold).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction_mix::InstructionMix;

    fn vector(scale: f64) -> MetricVector {
        MetricVector {
            runtime_secs: 100.0 * scale,
            ipc: 1.0 * scale,
            mips: 2000.0 * scale,
            instruction_mix: InstructionMix::from_counts(40, 5, 25, 15, 15),
            branch_miss_ratio: 0.05 * scale,
            l1i_hit_ratio: 0.95,
            l1d_hit_ratio: 0.9,
            l2_hit_ratio: 0.6,
            l3_hit_ratio: 0.5,
            mem_read_bw_mbps: 1000.0 * scale,
            mem_write_bw_mbps: 500.0 * scale,
            disk_io_bw_mbps: 30.0 * scale,
        }
    }

    #[test]
    fn accuracy_of_exact_match_is_one() {
        assert_eq!(accuracy(10.0, 10.0), 1.0);
    }

    #[test]
    fn accuracy_of_ten_percent_error_is_point_nine() {
        assert!((accuracy(100.0, 110.0) - 0.9).abs() < 1e-12);
        assert!((accuracy(100.0, 90.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn accuracy_clamps_to_zero_for_huge_errors() {
        assert_eq!(accuracy(1.0, 100.0), 0.0);
    }

    #[test]
    fn accuracy_handles_zero_real_value() {
        assert_eq!(accuracy(0.0, 0.0), 1.0);
        assert_eq!(accuracy(0.0, 1.0), 0.0);
    }

    #[test]
    fn deviation_matches_definition() {
        assert!((deviation(100.0, 85.0) - 0.15).abs() < 1e-12);
        assert_eq!(deviation(0.0, 0.0), 0.0);
        assert!(deviation(0.0, 1.0).is_infinite());
    }

    #[test]
    fn identical_vectors_are_fully_accurate() {
        let v = vector(1.0);
        let report = AccuracyReport::compare_default(&v, &v);
        assert_eq!(report.average(), 1.0);
        assert!(report.is_qualified(0.15));
    }

    #[test]
    fn ten_percent_off_is_qualified_at_fifteen_percent() {
        let real = vector(1.0);
        let proxy = vector(1.1);
        let report = AccuracyReport::compare_default(&real, &proxy);
        assert!(
            report.is_qualified(0.15),
            "worst {:?}",
            report.worst_metric()
        );
        assert!(!report.is_qualified(0.05));
    }

    #[test]
    fn worst_metric_identifies_biggest_deviation() {
        let real = vector(1.0);
        let mut proxy = vector(1.0);
        proxy.disk_io_bw_mbps = real.disk_io_bw_mbps * 2.0;
        let report = AccuracyReport::compare_default(&real, &proxy);
        let (worst, acc) = report.worst_metric().unwrap();
        assert_eq!(worst, MetricId::DiskIoBandwidth);
        assert_eq!(acc, 0.0);
        assert_eq!(report.worst(), 0.0);
    }

    #[test]
    fn exceeding_lists_only_violations() {
        let real = vector(1.0);
        let mut proxy = vector(1.0);
        proxy.ipc = real.ipc * 0.5;
        proxy.l2_hit_ratio = real.l2_hit_ratio * 0.99;
        let report = AccuracyReport::compare_default(&real, &proxy);
        let violations = report.exceeding(0.15);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].0, MetricId::Ipc);
    }

    #[test]
    fn get_returns_only_compared_metrics() {
        let v = vector(1.0);
        let report = AccuracyReport::compare(&v, &v, &[MetricId::Ipc]);
        assert!(report.get(MetricId::Ipc).is_some());
        assert!(report.get(MetricId::Runtime).is_none());
    }

    #[test]
    fn empty_report_is_trivially_qualified() {
        let v = vector(1.0);
        let report = AccuracyReport::compare(&v, &v, &[]);
        assert_eq!(report.average(), 1.0);
        assert!(report.is_qualified(0.0));
        assert!(report.worst_metric().is_none());
    }
}
