//! The metric vector **M** (Table V of the paper).

use crate::instruction_mix::InstructionMix;

/// Identifier of one metric tracked by the methodology.
///
/// The variants cover every row of Table V: processor performance,
/// instruction mix, branch prediction, cache behaviour, memory bandwidth
/// and disk I/O behaviour, plus the wall-clock runtime used for the
/// speedup tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MetricId {
    /// Wall-clock runtime in seconds.
    Runtime,
    /// Instructions per cycle.
    Ipc,
    /// Million instructions per second.
    Mips,
    /// Fraction of integer instructions.
    IntegerRatio,
    /// Fraction of floating-point instructions.
    FloatRatio,
    /// Fraction of load instructions.
    LoadRatio,
    /// Fraction of store instructions.
    StoreRatio,
    /// Fraction of branch instructions.
    BranchRatio,
    /// Branch miss-prediction ratio.
    BranchMissRatio,
    /// L1 instruction-cache hit ratio.
    L1iHitRatio,
    /// L1 data-cache hit ratio.
    L1dHitRatio,
    /// L2 cache hit ratio.
    L2HitRatio,
    /// L3 cache hit ratio.
    L3HitRatio,
    /// Memory read bandwidth in MB/s.
    MemReadBandwidth,
    /// Memory write bandwidth in MB/s.
    MemWriteBandwidth,
    /// Total memory bandwidth in MB/s.
    MemTotalBandwidth,
    /// Disk I/O bandwidth in MB/s (Equation 2 of the paper).
    DiskIoBandwidth,
}

impl MetricId {
    /// Every metric, in report order.
    pub const ALL: [MetricId; 17] = [
        MetricId::Runtime,
        MetricId::Ipc,
        MetricId::Mips,
        MetricId::IntegerRatio,
        MetricId::FloatRatio,
        MetricId::LoadRatio,
        MetricId::StoreRatio,
        MetricId::BranchRatio,
        MetricId::BranchMissRatio,
        MetricId::L1iHitRatio,
        MetricId::L1dHitRatio,
        MetricId::L2HitRatio,
        MetricId::L3HitRatio,
        MetricId::MemReadBandwidth,
        MetricId::MemWriteBandwidth,
        MetricId::MemTotalBandwidth,
        MetricId::DiskIoBandwidth,
    ];

    /// The micro-architectural metrics of Table V.
    pub const MICRO_ARCHITECTURAL: [MetricId; 12] = [
        MetricId::Ipc,
        MetricId::Mips,
        MetricId::IntegerRatio,
        MetricId::FloatRatio,
        MetricId::LoadRatio,
        MetricId::StoreRatio,
        MetricId::BranchRatio,
        MetricId::BranchMissRatio,
        MetricId::L1iHitRatio,
        MetricId::L1dHitRatio,
        MetricId::L2HitRatio,
        MetricId::L3HitRatio,
    ];

    /// The system-level metrics of Table V (plus runtime).
    pub const SYSTEM: [MetricId; 5] = [
        MetricId::Runtime,
        MetricId::MemReadBandwidth,
        MetricId::MemWriteBandwidth,
        MetricId::MemTotalBandwidth,
        MetricId::DiskIoBandwidth,
    ];

    /// The default tuning target used by the auto-tuner: every metric of
    /// Table V except raw runtime (the proxy is *supposed* to run much
    /// faster than the original, so runtime itself is never matched).
    pub const TUNABLE: [MetricId; 16] = [
        MetricId::Ipc,
        MetricId::Mips,
        MetricId::IntegerRatio,
        MetricId::FloatRatio,
        MetricId::LoadRatio,
        MetricId::StoreRatio,
        MetricId::BranchRatio,
        MetricId::BranchMissRatio,
        MetricId::L1iHitRatio,
        MetricId::L1dHitRatio,
        MetricId::L2HitRatio,
        MetricId::L3HitRatio,
        MetricId::MemReadBandwidth,
        MetricId::MemWriteBandwidth,
        MetricId::MemTotalBandwidth,
        MetricId::DiskIoBandwidth,
    ];

    /// Short name used in reports (matches the paper's abbreviations where
    /// it has one, e.g. `br_miss`, `read_bw`).
    pub fn name(&self) -> &'static str {
        match self {
            MetricId::Runtime => "runtime",
            MetricId::Ipc => "IPC",
            MetricId::Mips => "MIPS",
            MetricId::IntegerRatio => "int_ratio",
            MetricId::FloatRatio => "fp_ratio",
            MetricId::LoadRatio => "load_ratio",
            MetricId::StoreRatio => "store_ratio",
            MetricId::BranchRatio => "branch_ratio",
            MetricId::BranchMissRatio => "br_miss",
            MetricId::L1iHitRatio => "L1I_hitR",
            MetricId::L1dHitRatio => "L1D_hitR",
            MetricId::L2HitRatio => "L2_hitR",
            MetricId::L3HitRatio => "L3_hitR",
            MetricId::MemReadBandwidth => "read_bw",
            MetricId::MemWriteBandwidth => "write_bw",
            MetricId::MemTotalBandwidth => "mem_bw",
            MetricId::DiskIoBandwidth => "disk_io_bw",
        }
    }

    /// Returns true if the metric belongs to the system-level group.
    pub fn is_system(&self) -> bool {
        MetricId::SYSTEM.contains(self)
    }
}

impl std::fmt::Display for MetricId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The metric vector **M**: one concrete measurement of a workload or
/// proxy benchmark under the shared performance-model instrument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricVector {
    /// Wall-clock runtime in seconds.
    pub runtime_secs: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Million instructions per second.
    pub mips: f64,
    /// Instruction mix fractions.
    pub instruction_mix: InstructionMix,
    /// Branch miss-prediction ratio.
    pub branch_miss_ratio: f64,
    /// L1 instruction-cache hit ratio.
    pub l1i_hit_ratio: f64,
    /// L1 data-cache hit ratio.
    pub l1d_hit_ratio: f64,
    /// L2 cache hit ratio.
    pub l2_hit_ratio: f64,
    /// L3 cache hit ratio.
    pub l3_hit_ratio: f64,
    /// Memory read bandwidth in MB/s.
    pub mem_read_bw_mbps: f64,
    /// Memory write bandwidth in MB/s.
    pub mem_write_bw_mbps: f64,
    /// Disk I/O bandwidth in MB/s.
    pub disk_io_bw_mbps: f64,
}

impl MetricVector {
    /// An all-zero vector, useful as an accumulator identity.
    pub fn zero() -> Self {
        Self {
            runtime_secs: 0.0,
            ipc: 0.0,
            mips: 0.0,
            instruction_mix: InstructionMix::zero(),
            branch_miss_ratio: 0.0,
            l1i_hit_ratio: 0.0,
            l1d_hit_ratio: 0.0,
            l2_hit_ratio: 0.0,
            l3_hit_ratio: 0.0,
            mem_read_bw_mbps: 0.0,
            mem_write_bw_mbps: 0.0,
            disk_io_bw_mbps: 0.0,
        }
    }

    /// Total memory bandwidth (read + write) in MB/s.
    pub fn mem_total_bw_mbps(&self) -> f64 {
        self.mem_read_bw_mbps + self.mem_write_bw_mbps
    }

    /// Looks up a single metric by id.
    pub fn get(&self, id: MetricId) -> f64 {
        match id {
            MetricId::Runtime => self.runtime_secs,
            MetricId::Ipc => self.ipc,
            MetricId::Mips => self.mips,
            MetricId::IntegerRatio => self.instruction_mix.integer,
            MetricId::FloatRatio => self.instruction_mix.floating_point,
            MetricId::LoadRatio => self.instruction_mix.load,
            MetricId::StoreRatio => self.instruction_mix.store,
            MetricId::BranchRatio => self.instruction_mix.branch,
            MetricId::BranchMissRatio => self.branch_miss_ratio,
            MetricId::L1iHitRatio => self.l1i_hit_ratio,
            MetricId::L1dHitRatio => self.l1d_hit_ratio,
            MetricId::L2HitRatio => self.l2_hit_ratio,
            MetricId::L3HitRatio => self.l3_hit_ratio,
            MetricId::MemReadBandwidth => self.mem_read_bw_mbps,
            MetricId::MemWriteBandwidth => self.mem_write_bw_mbps,
            MetricId::MemTotalBandwidth => self.mem_total_bw_mbps(),
            MetricId::DiskIoBandwidth => self.disk_io_bw_mbps,
        }
    }

    /// Iterates over `(id, value)` pairs for every metric in report order.
    pub fn iter(&self) -> impl Iterator<Item = (MetricId, f64)> + '_ {
        MetricId::ALL.iter().map(move |&id| (id, self.get(id)))
    }

    /// Returns true if every field is finite (guards against division by
    /// zero in downstream accuracy computations).
    pub fn is_finite(&self) -> bool {
        self.iter().all(|(_, v)| v.is_finite())
    }

    /// Element-wise arithmetic mean of a non-empty slice of vectors, used
    /// to average per-node or per-run measurements exactly as the paper
    /// averages measurements across slave nodes and repeated runs.
    ///
    /// Returns `None` for an empty slice.
    pub fn mean(vectors: &[MetricVector]) -> Option<MetricVector> {
        if vectors.is_empty() {
            return None;
        }
        let n = vectors.len() as f64;
        let mut acc = MetricVector::zero();
        for v in vectors {
            acc.runtime_secs += v.runtime_secs;
            acc.ipc += v.ipc;
            acc.mips += v.mips;
            acc.instruction_mix.integer += v.instruction_mix.integer;
            acc.instruction_mix.floating_point += v.instruction_mix.floating_point;
            acc.instruction_mix.load += v.instruction_mix.load;
            acc.instruction_mix.store += v.instruction_mix.store;
            acc.instruction_mix.branch += v.instruction_mix.branch;
            acc.branch_miss_ratio += v.branch_miss_ratio;
            acc.l1i_hit_ratio += v.l1i_hit_ratio;
            acc.l1d_hit_ratio += v.l1d_hit_ratio;
            acc.l2_hit_ratio += v.l2_hit_ratio;
            acc.l3_hit_ratio += v.l3_hit_ratio;
            acc.mem_read_bw_mbps += v.mem_read_bw_mbps;
            acc.mem_write_bw_mbps += v.mem_write_bw_mbps;
            acc.disk_io_bw_mbps += v.disk_io_bw_mbps;
        }
        acc.runtime_secs /= n;
        acc.ipc /= n;
        acc.mips /= n;
        acc.instruction_mix.integer /= n;
        acc.instruction_mix.floating_point /= n;
        acc.instruction_mix.load /= n;
        acc.instruction_mix.store /= n;
        acc.instruction_mix.branch /= n;
        acc.branch_miss_ratio /= n;
        acc.l1i_hit_ratio /= n;
        acc.l1d_hit_ratio /= n;
        acc.l2_hit_ratio /= n;
        acc.l3_hit_ratio /= n;
        acc.mem_read_bw_mbps /= n;
        acc.mem_write_bw_mbps /= n;
        acc.disk_io_bw_mbps /= n;
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricVector {
        MetricVector {
            runtime_secs: 100.0,
            ipc: 1.2,
            mips: 2_400.0,
            instruction_mix: InstructionMix::from_counts(44, 1, 26, 13, 16),
            branch_miss_ratio: 0.04,
            l1i_hit_ratio: 0.98,
            l1d_hit_ratio: 0.92,
            l2_hit_ratio: 0.6,
            l3_hit_ratio: 0.5,
            mem_read_bw_mbps: 1_800.0,
            mem_write_bw_mbps: 900.0,
            disk_io_bw_mbps: 34.0,
        }
    }

    #[test]
    fn get_covers_every_metric_id() {
        let v = sample();
        for id in MetricId::ALL {
            let value = v.get(id);
            assert!(value.is_finite(), "{id} not finite");
        }
    }

    #[test]
    fn total_bandwidth_is_sum_of_read_and_write() {
        let v = sample();
        assert!((v.get(MetricId::MemTotalBandwidth) - 2_700.0).abs() < 1e-9);
    }

    #[test]
    fn metric_groups_partition_all() {
        let mut all: Vec<MetricId> = MetricId::MICRO_ARCHITECTURAL.to_vec();
        all.extend_from_slice(&MetricId::SYSTEM);
        all.sort();
        let mut expected = MetricId::ALL.to_vec();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn tunable_excludes_runtime() {
        assert!(!MetricId::TUNABLE.contains(&MetricId::Runtime));
        assert_eq!(MetricId::TUNABLE.len(), MetricId::ALL.len() - 1);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = MetricId::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MetricId::ALL.len());
    }

    #[test]
    fn mean_of_identical_vectors_is_identity() {
        let v = sample();
        let m = MetricVector::mean(&[v, v, v]).unwrap();
        for id in MetricId::ALL {
            assert!((m.get(id) - v.get(id)).abs() < 1e-9, "{id}");
        }
    }

    #[test]
    fn mean_of_empty_slice_is_none() {
        assert!(MetricVector::mean(&[]).is_none());
    }

    #[test]
    fn mean_averages_runtime() {
        let mut a = sample();
        let mut b = sample();
        a.runtime_secs = 10.0;
        b.runtime_secs = 30.0;
        let m = MetricVector::mean(&[a, b]).unwrap();
        assert!((m.runtime_secs - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_is_finite() {
        assert!(MetricVector::zero().is_finite());
    }
}
