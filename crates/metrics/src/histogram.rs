//! A lock-free latency histogram for long-running services.
//!
//! The campaign daemon records every cell's wall-clock latency here and
//! exposes the buckets on its Prometheus-style `/metrics` endpoint.
//! Recording is a handful of relaxed atomic adds — cheap enough to sit
//! on the per-cell hot path of a concurrent campaign — and snapshots are
//! consistent enough for monitoring (counters are read individually;
//! they never tear, though a snapshot taken mid-record may be ahead on
//! one counter and behind on another by one event).
//!
//! The bucket bounds are fixed at compile time and chosen for the two
//! regimes a result-store-backed campaign produces: store-served cells
//! (tens of microseconds) and cold tuned-and-executed cells
//! (milliseconds to seconds).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (inclusive, in nanoseconds) of the histogram buckets.
/// An observation larger than every bound lands in the overflow bucket.
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 13] = [
    10_000,         // 10µs
    50_000,         // 50µs
    100_000,        // 100µs
    500_000,        // 500µs
    1_000_000,      // 1ms
    5_000_000,      // 5ms
    10_000_000,     // 10ms
    50_000_000,     // 50ms
    100_000_000,    // 100ms
    500_000_000,    // 500ms
    1_000_000_000,  // 1s
    5_000_000_000,  // 5s
    10_000_000_000, // 10s
];

/// Number of buckets, including the overflow bucket.
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket latency histogram with lock-free recording.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        self.record_ns(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one observation in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let bucket = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes every counter.  Not atomic with respect to concurrent
    /// recorders: an observation racing the reset may be partially kept.
    /// Callers that need an exact window (the kernel profiler's
    /// reset-then-measure flows) reset while no recording is in flight.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.sum_ns.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`LATENCY_BUCKET_BOUNDS_NS`] order,
    /// plus the overflow bucket last).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Sum of all observations, in nanoseconds.
    pub sum_ns: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Cumulative counts per bucket — the Prometheus `le` convention,
    /// where each entry counts every observation at or below its bound
    /// (the final entry equals [`HistogramSnapshot::count`]).
    pub fn cumulative(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = self.buckets;
        for i in 1..out.len() {
            out[i] += out[i - 1];
        }
        out
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds as the
    /// upper bound of the bucket the quantile falls into (the overflow
    /// bucket reports the largest finite bound).  `None` when empty.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(
                    *LATENCY_BUCKET_BOUNDS_NS
                        .get(i)
                        .unwrap_or(LATENCY_BUCKET_BOUNDS_NS.last().unwrap()),
                );
            }
        }
        LATENCY_BUCKET_BOUNDS_NS.last().copied()
    }

    /// Mean observation in nanoseconds; `None` when empty.
    pub fn mean_ns(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_ns as f64 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_their_buckets() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(5)); // <= 10µs: bucket 0
        h.record(Duration::from_micros(10)); // inclusive bound: bucket 0
        h.record(Duration::from_millis(2)); // <= 5ms: bucket 5
        h.record(Duration::from_secs(60)); // beyond every bound: overflow
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[5], 1);
        assert_eq!(s.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(s.cumulative()[LATENCY_BUCKETS - 1], 4);
        assert_eq!(s.sum_ns, 5_000 + 10_000 + 2_000_000 + 60 * 1_000_000_000u64);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_ns(40_000); // bucket 1 (≤ 50µs)
        }
        h.record_ns(900_000_000); // bucket 10 (≤ 1s)
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(0.5), Some(50_000));
        assert_eq!(s.quantile_ns(0.95), Some(50_000));
        assert_eq!(s.quantile_ns(1.0), Some(1_000_000_000));
        assert!((s.mean_ns().unwrap() - 9_039_600.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_ns(0.5), None);
        assert_eq!(s.mean_ns(), None);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record_ns(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4_000);
        assert_eq!(s.cumulative()[LATENCY_BUCKETS - 1], 4_000);
    }
}
