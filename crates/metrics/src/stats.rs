//! Small statistics helpers used by the harness and the auto-tuner.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean of strictly positive values; `None` if the slice is empty
/// or any value is non-positive.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Coefficient of variation (std dev / mean); `None` for an empty slice or
/// a zero mean.
pub fn coefficient_of_variation(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    if m == 0.0 {
        return None;
    }
    Some(std_dev(values)? / m)
}

/// Relative change `(new - old) / old`; `None` when `old` is zero.
pub fn relative_change(old: f64, new: f64) -> Option<f64> {
    if old == 0.0 {
        None
    } else {
        Some((new - old) / old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn geomean_of_values() {
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), Some(0.0));
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cov_handles_degenerate_input() {
        assert_eq!(coefficient_of_variation(&[]), None);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), None);
        assert!(coefficient_of_variation(&[1.0, 1.0]).unwrap() < 1e-12);
    }

    #[test]
    fn relative_change_matches_definition() {
        assert_eq!(relative_change(10.0, 15.0), Some(0.5));
        assert_eq!(relative_change(0.0, 15.0), None);
    }
}
