//! Gates for the sharded result store: concurrency under 8 pool
//! workers, sidecar-vs-scan open equivalence, per-segment torn-tail
//! isolation, deterministic shard routing, cross-layout campaign
//! byte-identity (legacy file, migrated store, fresh sharded store) and
//! the cross-shard compaction round trip.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dmpb_core::runner::SuiteRunner;
use dmpb_motifs::workers::WorkerPool;
use dmpb_scenario::{
    compact_sharded_store, read_records, read_store_records, segment_path, shard_for,
    CampaignRunner, CellResult, ResultStore, Scenario, DEFAULT_STORE_SHARDS, SIDECAR_FILE,
};
use dmpb_workloads::{ClusterConfig, WorkloadKind};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmpb-sharded-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One real computed record, cloned into synthetic variants per
/// fingerprint so the tests don't pay for hundreds of real runs.
fn template_result() -> CellResult {
    let cell = Scenario::with_defaults("sharded").expand()[0].clone();
    let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
    let run = runner.run_cell(cell.kind, cell.elements, cell.seed);
    CellResult::compute(&cell, &run, 1)
}

fn small_scenario() -> Scenario {
    let mut s = Scenario::with_defaults("sharded-campaign");
    s.workloads = vec![WorkloadKind::TeraSort, WorkloadKind::AlexNet];
    s
}

/// Fills a fresh sharded store at `dir` with `count` synthetic records
/// (fingerprints `base..base + count`), synced and closed.
fn filled_store(dir: &Path, shards: usize, base: u64, count: u64) -> Vec<CellResult> {
    let template = template_result();
    let store = ResultStore::open_sharded(dir, shards).unwrap();
    let mut records = Vec::new();
    for i in 0..count {
        let mut record = template.clone();
        record.fingerprint = base + i;
        store.insert(record.clone()).unwrap();
        records.push(record);
    }
    store.sync().unwrap();
    records
}

#[test]
fn eight_pool_workers_hammer_one_sharded_store() {
    let dir = temp_dir("hammer");
    let store_dir = dir.join("store");
    let store = ResultStore::open_sharded(&store_dir, DEFAULT_STORE_SHARDS).unwrap();
    let template = template_result();

    // 8 pool workers x 64 operations over 48 distinct fingerprints:
    // plenty of insert/insert and insert/lookup collisions, spread over
    // every shard.
    const WORKERS: usize = 8;
    const OPS_PER_WORKER: u64 = 64;
    const DISTINCT: u64 = 48;
    const BASE: u64 = 0x2000;

    let pool = WorkerPool::new(WORKERS);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    pool.scope(|scope| {
        for worker in 0..WORKERS as u64 {
            let store = &store;
            let template = &template;
            let hits = &hits;
            let misses = &misses;
            scope.spawn(move |_| {
                for op in 0..OPS_PER_WORKER {
                    let fingerprint = BASE + (worker * OPS_PER_WORKER + op) % DISTINCT;
                    if op % 3 == 0 {
                        match store.lookup(fingerprint) {
                            Some(found) => {
                                assert_eq!(found.fingerprint, fingerprint);
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                misses.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        let mut record = template.clone();
                        record.fingerprint = fingerprint;
                        record.seed = worker; // differs per worker: first insert must win
                        store.insert(record).unwrap();
                    }
                }
            });
        }
    });

    // Counters add up exactly: the aggregate matches the hammer's own
    // bookkeeping, and the per-shard counters sum to the aggregate.
    let stats = store.stats();
    assert_eq!(stats.entries, DISTINCT as usize);
    assert_eq!(stats.hits, hits.load(Ordering::Relaxed));
    assert_eq!(stats.misses, misses.load(Ordering::Relaxed));
    assert_eq!(stats.persist_errors, 0);
    let shard_stats = store.shard_stats();
    assert_eq!(shard_stats.len(), DEFAULT_STORE_SHARDS);
    assert_eq!(shard_stats.iter().map(|s| s.hits).sum::<u64>(), stats.hits);
    assert_eq!(
        shard_stats.iter().map(|s| s.misses).sum::<u64>(),
        stats.misses
    );
    assert_eq!(
        shard_stats.iter().map(|s| s.entries).sum::<usize>(),
        stats.entries
    );

    // After a sync, every segment parses under the STRICT reader —
    // concurrent buffered appends must never interleave bytes or tear
    // lines — and every record sits in the segment its fingerprint
    // routes to.
    store.sync().unwrap();
    let mut persisted = 0;
    for k in 0..DEFAULT_STORE_SHARDS {
        let records = read_records(&segment_path(&store_dir, k))
            .expect("hammered segment must stay strictly parseable");
        for record in &records {
            assert_eq!(shard_for(record.fingerprint, DEFAULT_STORE_SHARDS), k);
        }
        persisted += records.len();
    }
    assert_eq!(persisted, DISTINCT as usize);

    // Reopen-with-sidecar == reopen-without-sidecar == in-memory state.
    let in_memory: Vec<CellResult> = (BASE..BASE + DISTINCT)
        .map(|f| store.lookup(f).unwrap())
        .collect();
    drop(store);
    let with_sidecar = ResultStore::open(&store_dir).unwrap();
    assert!(
        with_sidecar.opened_from_sidecar(),
        "a cleanly closed sharded store must reopen via the sidecar index"
    );
    assert_eq!(with_sidecar.stats().entries, DISTINCT as usize);
    for (i, fingerprint) in (BASE..BASE + DISTINCT).enumerate() {
        assert_eq!(with_sidecar.lookup(fingerprint).unwrap(), in_memory[i]);
    }
    drop(with_sidecar);
    std::fs::remove_file(store_dir.join(SIDECAR_FILE)).unwrap();
    let scanned = ResultStore::open(&store_dir).unwrap();
    assert!(!scanned.opened_from_sidecar());
    assert_eq!(scanned.stats().entries, DISTINCT as usize);
    for (i, fingerprint) in (BASE..BASE + DISTINCT).enumerate() {
        assert_eq!(scanned.lookup(fingerprint).unwrap(), in_memory[i]);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_in_one_segment_recovers_without_touching_the_others() {
    let dir = temp_dir("torn");
    let store_dir = dir.join("store");
    const SHARDS: usize = 4;
    const COUNT: u64 = 16; // 4 records per segment
    let records = filled_store(&store_dir, SHARDS, 0x3000, COUNT);

    // Snapshot every segment, then tear the tail of segment 2 only: a
    // crash mid-append leaves a partial line with no newline.
    let clean: Vec<Vec<u8>> = (0..SHARDS)
        .map(|k| std::fs::read(segment_path(&store_dir, k)).unwrap())
        .collect();
    let victim = segment_path(&store_dir, 2);
    let torn_line = template_result().to_line();
    let mut torn_bytes = clean[2].clone();
    torn_bytes.extend_from_slice(&torn_line.as_bytes()[..25]);
    std::fs::write(&victim, &torn_bytes).unwrap();

    // The sidecar is now stale for segment 2 (its length drifted), so
    // the open falls back to a scan — which truncates the torn tail of
    // that one segment and leaves the other three byte-untouched.
    let reopened = ResultStore::open(&store_dir).unwrap();
    assert!(!reopened.opened_from_sidecar());
    assert_eq!(reopened.recovered_tails().len(), 1);
    assert_eq!(reopened.stats().entries, COUNT as usize);
    for record in &records {
        assert_eq!(reopened.lookup(record.fingerprint).unwrap(), *record);
    }
    drop(reopened);
    for (k, bytes) in clean.iter().enumerate() {
        assert_eq!(
            &std::fs::read(segment_path(&store_dir, k)).unwrap(),
            bytes,
            "segment {k} must be byte-identical to its pre-crash state"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaigns_are_byte_identical_across_store_layouts() {
    let dir = temp_dir("campaign");
    let scenario = small_scenario();

    // Cold run filling a legacy single-file store, and a warm legacy
    // re-run as the byte-identity reference.
    let legacy_path = dir.join("store.jsonl");
    let cold = CampaignRunner::with_store(ResultStore::open(&legacy_path).unwrap()).run(&scenario);
    let warm_legacy =
        CampaignRunner::with_store(ResultStore::open(&legacy_path).unwrap()).run(&scenario);
    assert_eq!(warm_legacy.cache_hits(), cold.outcomes.len());
    assert_eq!(cold.to_lines(), warm_legacy.to_lines());
    assert_eq!(cold.digest(), warm_legacy.digest());

    // Migrate the monolithic-filled legacy store to shards in place; a
    // *streamed* campaign served from the migrated store must still be
    // byte-identical (the store was filled monolithically).
    let migrated = ResultStore::open_sharded(&legacy_path, 4).unwrap();
    assert!(legacy_path.is_dir(), "migration replaces the file in place");
    assert_eq!(migrated.shard_count(), 4);
    let streamed_scenario = {
        let mut s = small_scenario();
        s.chunk_elements = Some(4096);
        s
    };
    let warm_migrated = CampaignRunner::with_store(migrated).run(&streamed_scenario);
    assert_eq!(warm_migrated.cache_hits(), cold.outcomes.len());
    assert_eq!(cold.to_lines(), warm_migrated.to_lines());
    assert_eq!(cold.digest(), warm_migrated.digest());

    // A fresh sharded store: the cold run writes the same bytes, and a
    // sidecar-served warm reopen reads them back identically.
    let sharded_dir = dir.join("sharded-store");
    let cold_sharded = CampaignRunner::with_store(
        ResultStore::open_sharded(&sharded_dir, DEFAULT_STORE_SHARDS).unwrap(),
    )
    .run(&scenario);
    assert_eq!(cold.to_lines(), cold_sharded.to_lines());
    let reopened = ResultStore::open(&sharded_dir).unwrap();
    assert!(reopened.opened_from_sidecar());
    let warm_sharded = CampaignRunner::with_store(reopened).run(&scenario);
    assert_eq!(warm_sharded.cache_hits(), cold.outcomes.len());
    assert_eq!(cold.to_lines(), warm_sharded.to_lines());
    assert_eq!(cold.digest(), warm_sharded.digest());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_compaction_drops_cross_shard_duplicates_and_round_trips() {
    let dir = temp_dir("compact");
    let store_dir = dir.join("store");
    const SHARDS: usize = 4;
    const COUNT: u64 = 12;
    let records = filled_store(&store_dir, SHARDS, 0x4000, COUNT);

    // Hand-assemble the degenerate shapes compaction exists to heal:
    // * a same-segment duplicate with drifted payload (first wins);
    // * a *cross-shard* duplicate parked in a later segment (the
    //   earlier, correctly-routed copy wins in segment-major order);
    // * a misrouted but unique record (re-routed to its home segment);
    // * a torn tail (dropped).
    let append = |k: usize, text: &str| {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(segment_path(&store_dir, k))
            .unwrap();
        file.write_all(text.as_bytes()).unwrap();
    };
    let home0 = records
        .iter()
        .find(|r| shard_for(r.fingerprint, SHARDS) == 0)
        .unwrap();
    let mut same_segment_dup = home0.clone();
    same_segment_dup.checksum ^= 0xbad;
    append(0, &format!("{}\n", same_segment_dup.to_line()));
    let home1 = records
        .iter()
        .find(|r| shard_for(r.fingerprint, SHARDS) == 1)
        .unwrap();
    let mut cross_shard_dup = home1.clone();
    cross_shard_dup.checksum ^= 0xbad;
    append(3, &format!("{}\n", cross_shard_dup.to_line()));
    let mut misrouted = records[0].clone();
    misrouted.fingerprint = 0x4000 + COUNT; // routes to some home segment
    let misrouted_home = shard_for(misrouted.fingerprint, SHARDS);
    let parked_in = (misrouted_home + 1) % SHARDS;
    append(parked_in, &format!("{}\n", misrouted.to_line()));
    append(2, &records[0].to_line()[..25]); // torn tail, no newline

    let stats = compact_sharded_store(&store_dir).unwrap();
    assert_eq!(stats.len(), SHARDS);
    let kept: usize = stats.iter().map(|s| s.kept).sum();
    let dropped: usize = stats.iter().map(|s| s.dropped).sum();
    assert_eq!(
        kept,
        COUNT as usize + 1,
        "originals plus the misrouted record"
    );
    // Dropped: both duplicates, the torn tail, and the misrouted record
    // leaving the segment it was found in (it is kept in its home).
    assert_eq!(dropped, 4);
    assert_eq!(stats[2].dropped, 1, "segment 2 drops only its torn tail");

    // Strict round trip: every segment parses, every record sits in its
    // home segment, and the surviving payloads are the first-written
    // ones (the drifted duplicates are gone).
    let compacted = read_store_records(&store_dir).unwrap();
    assert_eq!(compacted.len(), COUNT as usize + 1);
    for k in 0..SHARDS {
        for record in read_records(&segment_path(&store_dir, k)).unwrap() {
            assert_eq!(shard_for(record.fingerprint, SHARDS), k);
        }
    }
    let reopened = ResultStore::open(&store_dir).unwrap();
    assert!(
        reopened.opened_from_sidecar(),
        "compaction must leave a fresh, consistent sidecar behind"
    );
    for record in records.iter().chain([&misrouted]) {
        assert_eq!(reopened.lookup(record.fingerprint).unwrap(), *record);
    }
    drop(reopened);

    // Compacting a compacted store is a no-op.
    let stats = compact_sharded_store(&store_dir).unwrap();
    assert_eq!(
        stats.iter().map(|s| s.kept).sum::<usize>(),
        COUNT as usize + 1
    );
    assert_eq!(stats.iter().map(|s| s.dropped).sum::<usize>(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shard routing is a pure function of (fingerprint, shard count):
    /// deterministic across calls, always in range, and exactly the
    /// documented `fingerprint % shards` — so a store's segment
    /// assignment can never drift between sessions.
    #[test]
    fn shard_routing_is_deterministic_and_in_range(
        fingerprint in 0u64..u64::MAX,
        shards in 1usize..64,
    ) {
        let first = shard_for(fingerprint, shards);
        let again = shard_for(fingerprint, shards);
        prop_assert_eq!(first, again);
        prop_assert!(first < shards);
        prop_assert_eq!(first as u64, fingerprint % shards as u64);
    }
}
