//! Determinism gates for synthetic workload populations (PR 10): one
//! seed byte-reproduces the population and its campaign digest across
//! worker counts, streaming modes and store warmth; duration-budget
//! truncation always keeps a rank prefix of the untruncated population.

use dmpb_population::{PopulationGenerator, PopulationSpec};
use dmpb_scenario::{CampaignRunner, ResultStore, Scenario};
use dmpb_workloads::WorkloadKind;
use proptest::prelude::*;

fn population_scenario(size: u32, seed: u64) -> Scenario {
    let mut s = Scenario::with_defaults("population-determinism");
    s.workloads = Vec::new();
    s.population = Some(PopulationSpec {
        size,
        base_seed: seed,
        ..PopulationSpec::default()
    });
    s
}

/// The satellite gate: the same seeded population campaign digests
/// byte-identically under 1 vs 8 workers, monolithic vs chunked
/// streaming, and cold vs warm store.
#[test]
fn campaign_digests_survive_workers_streaming_and_warmth() {
    let scenario = population_scenario(2, 0xBEEF);

    let runner = CampaignRunner::new().with_workers(1);
    let cold = runner.run(&scenario);
    assert_eq!(cold.cells().count(), 2);
    assert_eq!(cold.cache_hits(), 0);
    assert!(cold.cells().all(|c| c.population.is_some()));
    let plan = cold.population.as_ref().expect("population plan");
    assert_eq!(plan.planned, 2);
    assert!(!plan.truncated());

    let warm = runner.run(&scenario);
    assert_eq!(warm.cache_hits(), 2);
    assert_eq!(cold.to_lines(), warm.to_lines());
    assert_eq!(cold.digest(), warm.digest());

    let parallel = CampaignRunner::new().with_workers(8).run(&scenario);
    assert_eq!(parallel.to_lines(), cold.to_lines());
    assert_eq!(parallel.digest(), cold.digest());

    let chunked = {
        let mut s = scenario.clone();
        s.chunk_elements = Some(512);
        CampaignRunner::new().run(&s)
    };
    assert_eq!(chunked.to_lines(), cold.to_lines());
    assert_eq!(chunked.digest(), cold.digest());
}

/// A mixed (named + synthetic) campaign persisted to a sharded store is
/// served byte-identically by a fresh process-equivalent reopen — the
/// synthetic records round-trip through the store's JSONL and the
/// lookup path keeps named and synthetic cells disjoint.
#[test]
fn mixed_campaign_round_trips_through_a_sharded_store() {
    let dir = std::env::temp_dir().join(format!("dmpb-population-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut scenario = population_scenario(2, 0xF00D);
    scenario.workloads = vec![WorkloadKind::TeraSort];

    let cold = {
        let store = ResultStore::open_sharded(&dir, 4).unwrap();
        CampaignRunner::with_store(store).run(&scenario)
    };
    assert_eq!(cold.cells().count(), 3);
    assert_eq!(cold.cache_hits(), 0);

    let warm = {
        let store = ResultStore::open_sharded(&dir, 4).unwrap();
        CampaignRunner::with_store(store).run(&scenario)
    };
    assert_eq!(warm.cache_hits(), 3, "every cell is served from disk");
    assert_eq!(warm.to_lines(), cold.to_lines());
    assert_eq!(warm.digest(), cold.digest());

    // The named cell and the synthetic cells stayed distinct records.
    let named: Vec<_> = warm.cells().filter(|c| c.population.is_none()).collect();
    let synthetic: Vec<_> = warm.cells().filter(|c| c.population.is_some()).collect();
    assert_eq!((named.len(), synthetic.len()), (1, 2));
    assert!(synthetic.iter().all(|c| c
        .population
        .as_ref()
        .unwrap()
        .label
        .starts_with("synthetic-")));

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One seed byte-reproduces the whole population: two independent
    /// generators over the same spec emit identical members.
    #[test]
    fn one_seed_byte_reproduces_the_population(seed in 0u64..u64::MAX) {
        let spec = PopulationSpec {
            size: 12,
            base_seed: seed,
            ..PopulationSpec::default()
        };
        let a = PopulationGenerator::new(spec).unwrap().generate();
        let b = PopulationGenerator::new(spec).unwrap().generate();
        prop_assert_eq!(a.len(), 12);
        for (ma, mb) in a.iter().zip(&b) {
            prop_assert_eq!(ma.describe_json(), mb.describe_json());
            prop_assert_eq!(ma.member_hash(), mb.member_hash());
        }
    }

    /// Duration-budget truncation yields a rank prefix of the
    /// untruncated population — never a reordering or resampling.
    #[test]
    fn budget_truncation_is_a_rank_prefix(
        seed in 0u64..u64::MAX,
        budget in 1u64..200,
    ) {
        let spec = PopulationSpec {
            size: 10,
            base_seed: seed,
            ..PopulationSpec::default()
        };
        let full = PopulationGenerator::new(spec).unwrap().generate();
        let mut bounded = spec;
        bounded.duration_budget_secs = Some(budget as f64 / 10.0);
        let kept = PopulationGenerator::new(bounded).unwrap().generate_budgeted();
        prop_assert!(!kept.members.is_empty(), "a budget always keeps rank 0");
        prop_assert!(kept.members.len() <= full.len());
        for (k, f) in kept.members.iter().zip(&full) {
            prop_assert_eq!(k.describe_json(), f.describe_json());
        }
    }
}
