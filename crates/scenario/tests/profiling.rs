//! Profiling determinism: turning the kernel profiler on must never
//! change what a campaign produces — reports and digests are
//! byte-identical with profiling on or off, serial or parallel — and
//! the profiler's counters must account for exactly the elements the
//! campaign's cells executed.
//!
//! Both tests flip the process-global [`KernelProfiler`], so they
//! serialize on a file-local mutex (this integration-test binary is its
//! own process; nothing outside it shares the profiler instance).

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use dmpb_core::executor::DagExecutor;
use dmpb_core::runner::SuiteRunner;
use dmpb_core::ProxyGenerator;
use dmpb_motifs::KernelProfiler;
use dmpb_scenario::runner::CampaignRunner;
use dmpb_scenario::Scenario;
use dmpb_workloads::WorkloadKind;

/// Serializes the tests' use of the process-global profiler.
fn profiler_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn profiling_on_or_off_yields_byte_identical_campaign_reports() {
    let _guard = profiler_lock();
    let profiler = KernelProfiler::global();
    let was_enabled = profiler.set_enabled(false);

    // All eight workloads — the full suite matrix, so every registered
    // kernel kind (and both superkernel sites) is on the line.
    let scenario = Scenario::with_defaults("profiling-determinism");
    assert_eq!(scenario.workloads.len(), WorkloadKind::ALL.len());

    // Fresh runners throughout: every campaign is cold (nothing served
    // from a store), so all four really execute kernels.
    let plain_serial = CampaignRunner::new().with_workers(1).run(&scenario);
    let plain_parallel = CampaignRunner::new().with_workers(8).run(&scenario);
    assert!(
        !profiler.enabled(),
        "plain campaigns must not enable profiling"
    );

    let profiled_serial = CampaignRunner::new()
        .with_workers(1)
        .with_kernel_profiling(true)
        .run(&scenario);
    assert!(
        profiler.enabled(),
        "a profiling campaign enables the global profiler"
    );
    let profiled_parallel = CampaignRunner::new()
        .with_workers(8)
        .with_kernel_profiling(true)
        .run(&scenario);
    profiler.set_enabled(was_enabled);

    // Byte-identical across profiling state and worker count alike.
    let baseline = plain_serial.to_lines();
    assert!(!baseline.is_empty());
    assert_eq!(baseline, plain_parallel.to_lines());
    assert_eq!(baseline, profiled_serial.to_lines());
    assert_eq!(baseline, profiled_parallel.to_lines());
    assert_eq!(plain_serial.digest(), profiled_parallel.digest());
}

#[test]
fn profiler_counters_account_for_every_executed_element() {
    let _guard = profiler_lock();
    let profiler = KernelProfiler::global();
    let was_enabled = profiler.set_enabled(false);

    // Two workloads keep the independent re-derivation below cheap.
    let scenario = {
        let mut s = Scenario::with_defaults("profiling-totals");
        s.workloads = vec![WorkloadKind::TeraSort, WorkloadKind::PageRank];
        s
    };

    // Expected totals, derived independently of the profiler: rebuild
    // each cell's proxy and re-execute its DAG (profiling off), summing
    // what the execution itself reports.  Fusion does not perturb the
    // accounting — fused edges still record their per-edge runs — and
    // while profiling *is* on, fusion is suppressed, so each of these
    // edges is dispatched (and counted) individually.
    let mut expected_elements = 0u64;
    let mut expected_invocations = 0u64;
    for cell in scenario.expand() {
        let runner = SuiteRunner::with_generator(ProxyGenerator::new(cell.tuning_cluster()))
            .with_intra_parallel(1);
        let run = runner
            .try_run_cell(cell.kind, cell.elements, cell.seed)
            .expect("cell runs");
        let execution = run
            .report
            .proxy
            .execute_dag(&DagExecutor::new(), cell.elements, cell.seed);
        expected_elements += execution.total_elements() as u64;
        expected_invocations += execution.kernels_run() as u64;
    }
    assert!(expected_elements > 0);
    assert!(
        !profiler.enabled(),
        "expected-total derivation must not record into the profiler"
    );

    // One cold profiled campaign; the counter deltas around it must
    // equal the independent sums exactly — per-kind counters roll up to
    // per-cell element counts with nothing lost and nothing double
    // counted.
    let before = profiler.snapshot();
    let report = CampaignRunner::new()
        .with_workers(1)
        .with_kernel_profiling(true)
        .run(&scenario);
    profiler.set_enabled(was_enabled);
    let after = profiler.snapshot();

    assert_eq!(report.cache_hits(), 0, "campaign must really execute");
    assert_eq!(
        after.total_elements() - before.total_elements(),
        expected_elements
    );
    assert_eq!(
        after.total_invocations() - before.total_invocations(),
        expected_invocations
    );
}
