//! Concurrency hammer for the result store: many workers inserting and
//! looking up overlapping fingerprints against one persistent store must
//! never tear a line, lose an entry, or drift the counters.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dmpb_core::runner::SuiteRunner;
use dmpb_motifs::workers::WorkerPool;
use dmpb_scenario::{read_records, CellResult, ResultStore, Scenario};
use dmpb_workloads::ClusterConfig;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmpb-resilience-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("store.jsonl")
}

/// One real computed record, cloned into synthetic variants per
/// fingerprint so the hammer doesn't pay for hundreds of real runs.
fn template_result() -> CellResult {
    let cell = Scenario::with_defaults("resilience").expand()[0].clone();
    let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
    let run = runner.run_cell(cell.kind, cell.elements, cell.seed);
    CellResult::compute(&cell, &run, 1)
}

#[test]
fn concurrent_inserts_and_lookups_never_tear_the_store() {
    let path = temp_store("hammer");
    let store = ResultStore::open(&path).unwrap();
    let template = template_result();

    // 8 workers x 64 operations over 32 distinct fingerprints: plenty of
    // insert/insert and insert/lookup collisions.
    const WORKERS: usize = 8;
    const OPS_PER_WORKER: u64 = 64;
    const DISTINCT: u64 = 32;

    let pool = WorkerPool::new(WORKERS);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    pool.scope(|scope| {
        for worker in 0..WORKERS as u64 {
            let store = &store;
            let template = &template;
            let hits = &hits;
            let misses = &misses;
            scope.spawn(move |_| {
                for op in 0..OPS_PER_WORKER {
                    let fingerprint = 0x1000 + (worker * OPS_PER_WORKER + op) % DISTINCT;
                    if op % 3 == 0 {
                        match store.lookup(fingerprint) {
                            Some(found) => {
                                assert_eq!(found.fingerprint, fingerprint);
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                misses.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        let mut record = template.clone();
                        record.fingerprint = fingerprint;
                        record.seed = worker; // differs per worker: first insert must win
                        store.insert(record).unwrap();
                    }
                }
            });
        }
    });

    // The in-memory index holds exactly the distinct fingerprints, and
    // the counters account for every lookup the hammer made.
    let stats = store.stats();
    assert_eq!(stats.entries, DISTINCT as usize);
    assert_eq!(stats.hits, hits.load(Ordering::Relaxed));
    assert_eq!(stats.misses, misses.load(Ordering::Relaxed));
    assert_eq!(
        stats.lookups(),
        hits.load(Ordering::Relaxed) + misses.load(Ordering::Relaxed)
    );
    assert_eq!(stats.persist_errors, 0);

    // The backing file parses under the STRICT reader — concurrent
    // appends must never interleave bytes or tear lines — and holds one
    // record per fingerprint (first insert wins, duplicates skipped).
    let records = read_records(&path).expect("hammered store file must stay strictly parseable");
    assert_eq!(records.len(), DISTINCT as usize);
    let mut fingerprints: Vec<u64> = records.iter().map(|r| r.fingerprint).collect();
    fingerprints.sort_unstable();
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), DISTINCT as usize);

    // Reopening sees exactly what the index held: winner-per-fingerprint.
    let reopened = ResultStore::open(&path).unwrap();
    assert!(reopened.recovered_tail().is_none());
    for fingerprint in 0x1000..0x1000 + DISTINCT {
        let original = store.lookup(fingerprint).unwrap();
        let reloaded = reopened.lookup(fingerprint).unwrap();
        assert_eq!(original, reloaded, "fingerprint {fingerprint:#x}");
    }
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
