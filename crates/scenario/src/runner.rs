//! The batch campaign runner: expands a scenario and executes its cells
//! on the persistent work-stealing worker pool, short-circuiting through
//! the content-addressed [`ResultStore`].
//!
//! Per-cluster tuning goes through one [`SuiteRunner`] per distinct
//! tuning cluster, so the PR 4 tuning cache memoizes across cells (eight
//! cells of one suite slice share eight tunes, a second seed axis value
//! re-tunes nothing), and every runner shares the campaign's single
//! [`WorkerPool`] — steady-state campaigns spawn no threads beyond it.
//!
//! Determinism: cells are executed with their pre-derived seeds and
//! collected into their matrix positions, so the produced
//! [`CampaignReport`] is byte-for-byte identical for any worker count,
//! and a warm run (every cell served from the store) is byte-identical
//! to the cold run that filled it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use dmpb_core::fnv::hash_bytes;
use dmpb_core::runner::{fingerprint_cluster, SuiteRunner};
use dmpb_core::ProxyGenerator;
use dmpb_metrics::table::{fmt_percent, fmt_speedup, TextTable};
use dmpb_motifs::workers::WorkerPool;
use dmpb_motifs::{KernelProfile, KernelProfiler};
use dmpb_population::PopulationGenerator;

use crate::dsl::Scenario;
use crate::matrix::{CampaignCell, PopulationPlan};
use crate::store::{CellResult, ResultStore, StoreStats};
use crate::CODE_MODEL_VERSION;

/// Default worker-pool width for cell batching when neither the scenario
/// nor the caller picks one.
pub const DEFAULT_WORKERS: usize = 8;

/// One executed (or store-served) cell of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The result payload (identical whether computed or served).
    pub result: CellResult,
    /// Whether the result came out of the store.
    pub cached: bool,
}

/// The structured result of one campaign run.
///
/// Only [`CampaignReport::cells`] participates in the digest — the
/// cached-ness of a cell is telemetry, not payload, so cold and warm runs
/// digest identically.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The scenario's name.
    pub scenario: String,
    /// Per-cell results in matrix order.
    pub outcomes: Vec<CellOutcome>,
    /// How the scenario's population expanded (spec, per-combination
    /// budget, truncation), when it swept one.  Telemetry like
    /// cached-ness: not part of the digest.
    pub population: Option<PopulationPlan>,
}

impl CampaignReport {
    /// The cell results in matrix order.
    pub fn cells(&self) -> impl Iterator<Item = &CellResult> {
        self.outcomes.iter().map(|o| &o.result)
    }

    /// Number of cells served from the result store.
    pub fn cache_hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.cached).count()
    }

    /// Fraction of cells served from the result store (`0.0` for an
    /// empty campaign).
    pub fn hit_ratio(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.cache_hits() as f64 / self.outcomes.len() as f64
        }
    }

    /// A stable digest over every cell's serialized result.  Identical
    /// for cold and warm runs and for any worker count.
    pub fn digest(&self) -> u64 {
        hash_bytes(self.to_lines().as_bytes())
    }

    /// The report as JSON lines (the baseline/store interchange format).
    pub fn to_lines(&self) -> String {
        let mut out = String::new();
        for cell in self.cells() {
            out.push_str(&cell.to_line());
            out.push('\n');
        }
        out
    }

    /// Renders the campaign as a summary table, one row per cell.
    pub fn summary_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("Campaign `{}`", self.scenario),
            &[
                "workload", "cluster", "arch", "elements", "seed", "accuracy", "speedup",
                "checksum", "source",
            ],
        );
        for outcome in &self.outcomes {
            let c = &outcome.result;
            t.add_row(&[
                c.population
                    .as_ref()
                    .map(|p| p.label.clone())
                    .unwrap_or_else(|| c.workload.to_string()),
                c.cluster.clone(),
                c.architecture.clone(),
                c.elements.to_string(),
                format!("{:016x}", c.seed),
                fmt_percent(c.accuracy_avg),
                fmt_speedup(c.speedup),
                format!("{:016x}", c.checksum),
                if outcome.cached { "store" } else { "computed" }.to_string(),
            ]);
        }
        t
    }

    /// Diffs this run against a stored baseline (cells matched by
    /// fingerprint).
    pub fn diff(&self, baseline: &[CellResult]) -> CampaignDiff {
        let ours: HashMap<u64, &CellResult> = self.cells().map(|c| (c.fingerprint, c)).collect();
        let theirs: HashMap<u64, &CellResult> =
            baseline.iter().map(|c| (c.fingerprint, c)).collect();
        let mut diff = CampaignDiff::default();
        for cell in self.cells() {
            match theirs.get(&cell.fingerprint) {
                None => diff.added.push(cell.clone()),
                Some(base) => {
                    if cell.accuracy_avg < base.accuracy_avg - ACCURACY_EPSILON {
                        diff.regressed
                            .push((cell.clone(), base.accuracy_avg, cell.accuracy_avg));
                    } else if *base != cell {
                        diff.changed.push((cell.clone(), (*base).clone()));
                    }
                }
            }
        }
        for base in baseline {
            if !ours.contains_key(&base.fingerprint) {
                diff.missing.push(base.clone());
            }
        }
        diff
    }
}

/// Accuracy slack below which a baseline comparison counts as a
/// regression rather than noise.  The model is deterministic, so any
/// drop at all is a real change; the epsilon only absorbs decimal
/// re-parsing of hand-edited baselines.
pub const ACCURACY_EPSILON: f64 = 1e-9;

/// The outcome of diffing a campaign run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CampaignDiff {
    /// Cells present now but absent from the baseline (benign).
    pub added: Vec<CellResult>,
    /// Baseline cells this run did not produce.
    pub missing: Vec<CellResult>,
    /// Cells whose accuracy dropped below the baseline: `(now, baseline
    /// accuracy, current accuracy)`.
    pub regressed: Vec<(CellResult, f64, f64)>,
    /// Cells that differ from the baseline in some other field: `(now,
    /// baseline)`.
    pub changed: Vec<(CellResult, CellResult)>,
}

impl CampaignDiff {
    /// Whether the diff should gate (fail) a campaign: an accuracy
    /// regression, a changed result, or a baseline cell that went
    /// missing.  Added cells are fine — campaigns grow.
    pub fn is_regression(&self) -> bool {
        !self.regressed.is_empty() || !self.changed.is_empty() || !self.missing.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "baseline diff: {} regressed, {} changed, {} missing, {} added",
            self.regressed.len(),
            self.changed.len(),
            self.missing.len(),
            self.added.len()
        )
    }
}

/// Callback invoked after every cell with its outcome and wall-clock
/// latency — the hook the campaign daemon hangs its per-cell latency
/// histogram on.  Called for computed and store-served cells alike.
pub type CellObserver = Arc<dyn Fn(&CellOutcome, Duration) + Send + Sync>;

/// A campaign that could not produce every cell: the cells that did
/// complete are not reported (a partial campaign report would silently
/// shrink baselines), only the per-cell failures.
#[derive(Debug, Clone)]
pub struct CampaignError {
    /// The scenario that failed.
    pub scenario: String,
    /// One message per failed cell.
    pub failures: Vec<String>,
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign `{}`: {} cell(s) failed: {}",
            self.scenario,
            self.failures.len(),
            self.failures.join("; ")
        )
    }
}

impl std::error::Error for CampaignError {}

/// Cache of tuned [`SuiteRunner`]s, keyed by cluster fingerprint and
/// streaming chunk size — a streamed and a monolithic runner over the
/// same cluster coexist without retuning each other away.
type RunnerCache = Mutex<HashMap<(u64, Option<usize>), Arc<SuiteRunner>>>;

/// Batch executor for scenario campaigns.
pub struct CampaignRunner {
    version: u32,
    workers: usize,
    chunk_elements: Option<usize>,
    profile_kernels: bool,
    store: Arc<ResultStore>,
    pool: OnceLock<Arc<WorkerPool>>,
    runners: RunnerCache,
    observer: Option<CellObserver>,
}

impl std::fmt::Debug for CampaignRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("version", &self.version)
            .field("workers", &self.workers)
            .field("store", &self.store)
            .field("observer", &self.observer.as_ref().map(|_| "…"))
            .finish_non_exhaustive()
    }
}

impl Default for CampaignRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl CampaignRunner {
    /// A runner with an in-memory (process-lifetime) result store.
    pub fn new() -> Self {
        Self::with_store(ResultStore::in_memory())
    }

    /// A runner over an explicit (typically persistent) result store.
    pub fn with_store(store: ResultStore) -> Self {
        Self {
            version: CODE_MODEL_VERSION,
            workers: DEFAULT_WORKERS,
            chunk_elements: None,
            profile_kernels: false,
            store: Arc::new(store),
            pool: OnceLock::new(),
            runners: Mutex::new(HashMap::new()),
            observer: None,
        }
    }

    /// Enables kernel-execution profiling for campaigns run through this
    /// runner: [`CampaignRunner::try_run`] turns the process-global
    /// [`KernelProfiler`] on before executing (and leaves it on, so a
    /// sequence of campaigns accumulates one profile — read it with
    /// [`CampaignRunner::kernel_profile`]).  Profiling never changes
    /// results: executors suppress superkernel fusion while sampling, and
    /// reports and digests stay byte-identical.
    pub fn with_kernel_profiling(mut self, enabled: bool) -> Self {
        self.profile_kernels = enabled;
        self
    }

    /// A point-in-time snapshot of the process-global kernel profile
    /// (all executors in this process record into it while profiling is
    /// enabled).
    pub fn kernel_profile(&self) -> KernelProfile {
        KernelProfiler::global().snapshot()
    }

    /// Registers a per-cell observer, called with every cell's outcome
    /// and wall-clock latency (from possibly-concurrent worker threads).
    pub fn with_cell_observer(mut self, observer: CellObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Bounds the number of concurrently executed cells (≥ 1).  A
    /// scenario's `[executor] workers` takes precedence for its own run,
    /// and the persistent pool is sized for whichever is wider on first
    /// use — but the pool is created exactly once, so a *later* run's
    /// wider request is capped at the existing pool's width.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Pre-seeds the campaign's shared worker pool with an existing one
    /// — so a pool used to scan a sharded store's segments at open time
    /// (see [`ResultStore::open_sharded_with_pool`]) is the same pool
    /// the campaign's cells later run on, instead of a second thread
    /// fleet.  Must be called before the first campaign runs; once the
    /// pool has been created lazily, a later pre-seed is ignored.
    pub fn with_worker_pool(self, pool: Arc<WorkerPool>) -> Self {
        let _ = self.pool.set(pool);
        self
    }

    /// Streams every cell's sample execution in granule-aligned chunks of
    /// at most `chunk_elements` elements (bounded peak RSS at large
    /// element counts).  A scenario's `[executor] chunk_elements` takes
    /// precedence for its own run.  Streaming never changes results:
    /// checksums, fingerprints and report digests are byte-identical to
    /// monolithic execution, so a store filled monolithically serves
    /// streamed campaigns and vice versa.
    pub fn with_chunk_elements(mut self, chunk_elements: Option<usize>) -> Self {
        self.chunk_elements = chunk_elements;
        self
    }

    /// The backing result store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Snapshot of the store's cumulative hit/miss counters.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The campaign's shared worker pool, created exactly once, sized
    /// for at least `width` concurrent tasks (the calling thread
    /// participates, so `width - 1` pool threads suffice).  Once built,
    /// the width is fixed — later, wider requests are capped by the
    /// caller via [`WorkerPool::workers`].
    fn pool(&self, width: usize) -> &Arc<WorkerPool> {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(width.max(self.workers).saturating_sub(1))))
    }

    /// The tuning runner for a cell's tuning cluster, created on first
    /// use and shared (with its tuning cache) by every cell that tunes
    /// there.
    fn cluster_runner(
        &self,
        cell: &CampaignCell,
        chunk_elements: Option<usize>,
    ) -> Arc<SuiteRunner> {
        let cluster = cell.tuning_cluster();
        let key = (fingerprint_cluster(&cluster), chunk_elements);
        // Recover a poisoned map instead of cascading the panic into
        // every later cell: entries are only ever inserted whole.
        let mut runners = self.runners.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(runners.entry(key).or_insert_with(|| {
            Arc::new(
                SuiteRunner::with_generator(ProxyGenerator::new(cluster))
                    .with_intra_parallel(1)
                    .with_chunk_elements(chunk_elements)
                    .with_worker_pool(Arc::clone(self.pool(self.workers))),
            )
        }))
    }

    /// Executes one cell: store lookup first, then tune + execute +
    /// measure and store the result.  A panicking cell becomes an error
    /// (via [`SuiteRunner::try_run_cell`]) instead of unwinding through
    /// the pool into every sibling.
    fn run_cell(
        &self,
        cell: &CampaignCell,
        chunk_elements: Option<usize>,
    ) -> Result<CellOutcome, String> {
        let start = Instant::now();
        let fingerprint = cell.fingerprint(self.version);
        let outcome = match self.store.lookup(fingerprint) {
            Some(result) => CellOutcome {
                result,
                cached: true,
            },
            None => {
                let runner = self.cluster_runner(cell, chunk_elements);
                let result = match &cell.population {
                    Some(pop) => {
                        // Re-synthesize the member from its spec + rank —
                        // cheap, deterministic, and it keeps cells (which
                        // cross thread and queue boundaries) plain data.
                        let member = PopulationGenerator::new(pop.spec)
                            .map_err(|e| format!("invalid population spec: {e}"))?
                            .member(pop.rank);
                        let run = runner.try_run_synthetic_cell(
                            &member,
                            pop.member_hash,
                            cell.elements,
                            cell.seed,
                        )?;
                        CellResult::compute_for(cell, &run, self.version, &member)
                    }
                    None => {
                        let run = runner.try_run_cell(cell.kind, cell.elements, cell.seed)?;
                        CellResult::compute(cell, &run, self.version)
                    }
                };
                debug_assert_eq!(result.fingerprint, fingerprint);
                // A failed append already degraded the store to
                // in-memory with a recorded warning; the result itself
                // is good and the campaign goes on.
                let _ = self.store.insert(result.clone());
                CellOutcome {
                    result,
                    cached: false,
                }
            }
        };
        if let Some(observer) = &self.observer {
            observer(&outcome, start.elapsed());
        }
        Ok(outcome)
    }

    /// Runs a whole campaign: expands the scenario and batches the cells
    /// onto the worker pool.  The report lists cells in matrix order and
    /// is identical run to run regardless of worker count and of which
    /// cells the store served.
    ///
    /// A failing cell fails the whole campaign (the other cells still
    /// complete — their results stay in the store, so a re-run after a
    /// fix is warm).  Long-running hosts should prefer this over
    /// [`CampaignRunner::run`], which panics on the same condition.
    pub fn try_run(&self, scenario: &Scenario) -> Result<CampaignReport, CampaignError> {
        if self.profile_kernels {
            KernelProfiler::global().set_enabled(true);
        }
        let cells = scenario.expand();
        let requested = scenario
            .workers
            .unwrap_or(self.workers)
            .clamp(1, cells.len().max(1));
        let chunk_elements = scenario.chunk_elements.or(self.chunk_elements);

        let slots: Vec<OnceLock<Result<CellOutcome, String>>> =
            cells.iter().map(|_| OnceLock::new()).collect();
        if requested <= 1 {
            for (slot, cell) in slots.iter().zip(&cells) {
                assert!(
                    slot.set(self.run_cell(cell, chunk_elements)).is_ok(),
                    "campaign slot filled twice"
                );
            }
        } else {
            // Size the pool for this run's request on first use; once it
            // exists, its width (plus the participating caller) caps the
            // effective concurrency of later, wider requests.
            let pool = self.pool(requested);
            let workers = requested.min(pool.workers() + 1);
            let cursor = AtomicUsize::new(0);
            pool.scope(|scope| {
                for _ in 0..workers {
                    let slots = &slots;
                    let cells = &cells;
                    let cursor = &cursor;
                    scope.spawn(move |_| loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= cells.len() {
                            break;
                        }
                        assert!(
                            slots[index]
                                .set(self.run_cell(&cells[index], chunk_elements))
                                .is_ok(),
                            "campaign slot filled twice"
                        );
                    });
                }
            });
        }

        // Amortized persistence: one flush (and, for sharded stores, one
        // sidecar rebuild) per campaign instead of one per record.  A
        // sync failure already degraded the store and warned; the
        // campaign's results are all still served from memory.
        let _ = self.store.sync();

        let mut outcomes = Vec::with_capacity(slots.len());
        let mut failures = Vec::new();
        for slot in slots {
            match slot.into_inner().expect("every cell produced an outcome") {
                Ok(outcome) => outcomes.push(outcome),
                Err(failure) => failures.push(failure),
            }
        }
        if !failures.is_empty() {
            return Err(CampaignError {
                scenario: scenario.name.clone(),
                failures,
            });
        }
        Ok(CampaignReport {
            scenario: scenario.name.clone(),
            outcomes,
            population: scenario.population_plan(),
        })
    }

    /// [`CampaignRunner::try_run`], panicking on a failed cell — the
    /// one-shot CLI surface, where unwinding to `main` is the right
    /// failure mode.
    pub fn run(&self, scenario: &Scenario) -> CampaignReport {
        self.try_run(scenario).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_core::runner::DEFAULT_BASE_SEED;
    use dmpb_workloads::WorkloadKind;

    fn small_scenario() -> Scenario {
        let mut s = Scenario::with_defaults("small");
        s.workloads = vec![WorkloadKind::TeraSort, WorkloadKind::AlexNet];
        s
    }

    #[test]
    fn cold_then_warm_runs_are_byte_identical_and_store_served() {
        let runner = CampaignRunner::new();
        let scenario = small_scenario();
        let cold = runner.run(&scenario);
        assert_eq!(cold.cells().count(), 2);
        assert_eq!(cold.cache_hits(), 0);

        let warm = runner.run(&scenario);
        assert_eq!(warm.cache_hits(), 2);
        assert!((warm.hit_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(cold.to_lines(), warm.to_lines());
        assert_eq!(cold.digest(), warm.digest());
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let scenario = small_scenario();
        let serial = CampaignRunner::new().with_workers(1).run(&scenario);
        let parallel = CampaignRunner::new().with_workers(8).run(&scenario);
        assert_eq!(serial.to_lines(), parallel.to_lines());
        assert_eq!(serial.digest(), parallel.digest());
    }

    #[test]
    fn tuning_cache_memoizes_across_seed_axis_values() {
        // Serial, so the second seed's cells deterministically find the
        // first seed's tunes in the cache (parallel cells may race to
        // tune the same key — harmless duplicate work, same results).
        let runner = CampaignRunner::new().with_workers(1);
        let mut scenario = small_scenario();
        scenario.seeds = vec![DEFAULT_BASE_SEED, 99];
        let report = runner.run(&scenario);
        assert_eq!(report.cells().count(), 4);
        // 2 workloads × 2 seeds, but only 2 tunes: the second seed's
        // cells reuse the per-cluster runner's tuning cache.
        let runners = runner.runners.lock().unwrap();
        assert_eq!(runners.len(), 1);
        let stats = runners.values().next().unwrap().cache_stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn seed_axis_changes_execution_but_not_tuning_metrics() {
        let runner = CampaignRunner::new();
        let mut scenario = small_scenario();
        scenario.seeds = vec![DEFAULT_BASE_SEED, 99];
        let report = runner.run(&scenario);
        let cells: Vec<_> = report.cells().collect();
        // Same workload under two seeds: same accuracy, different checksum.
        assert_eq!(cells[0].workload, cells[2].workload);
        assert_eq!(cells[0].accuracy_avg, cells[2].accuracy_avg);
        assert_ne!(cells[0].seed, cells[2].seed);
        assert_ne!(cells[0].checksum, cells[2].checksum);
        assert_ne!(cells[0].fingerprint, cells[2].fingerprint);
    }

    #[test]
    fn diff_flags_regressions_changes_and_missing_cells() {
        let runner = CampaignRunner::new();
        let scenario = small_scenario();
        let report = runner.run(&scenario);
        let baseline: Vec<CellResult> = report.cells().cloned().collect();

        let clean = report.diff(&baseline);
        assert!(!clean.is_regression(), "{}", clean.summary());

        let mut worse = baseline.clone();
        worse[0].accuracy_avg += 0.05; // the baseline was better than us
        let diff = report.diff(&worse);
        assert_eq!(diff.regressed.len(), 1);
        assert!(diff.is_regression());

        let mut changed = baseline.clone();
        changed[1].checksum ^= 1;
        let diff = report.diff(&changed);
        assert_eq!(diff.changed.len(), 1);
        assert!(diff.is_regression());

        let mut extra = baseline.clone();
        extra.push({
            let mut cell = baseline[0].clone();
            cell.fingerprint ^= 0xdead_beef;
            cell
        });
        let diff = report.diff(&extra);
        assert_eq!(diff.missing.len(), 1);
        assert!(diff.is_regression());

        let diff = report.diff(&baseline[..1]);
        assert_eq!(diff.added.len(), 1);
        assert!(!diff.is_regression(), "added cells are benign");
    }

    #[test]
    fn scenario_executor_workers_override_the_runner_default() {
        let scenario = {
            let mut s = small_scenario();
            s.workers = Some(1);
            s
        };
        // No panic / deadlock with a 1-wide scenario on an 8-wide runner,
        // and the output matches the parallel run.
        let a = CampaignRunner::new().with_workers(8).run(&scenario);
        let b = CampaignRunner::new().run(&small_scenario());
        assert_eq!(a.to_lines(), b.to_lines());
    }

    #[test]
    fn streamed_campaign_is_byte_identical_to_monolithic() {
        let scenario = {
            let mut s = small_scenario();
            s.chunk_elements = Some(4096);
            s
        };
        let streamed = CampaignRunner::new().run(&scenario);
        let monolithic = CampaignRunner::new().run(&small_scenario());
        assert_eq!(streamed.to_lines(), monolithic.to_lines());
        assert_eq!(streamed.digest(), monolithic.digest());
    }

    #[test]
    fn summary_table_lists_every_cell() {
        let report = CampaignRunner::new().run(&small_scenario());
        let rendered = report.summary_table().render();
        assert!(rendered.contains("TeraSort"), "{rendered}");
        assert!(rendered.contains("AlexNet"), "{rendered}");
        assert!(rendered.contains("computed"), "{rendered}");
    }
}
