//! The content-addressed result store.
//!
//! Every campaign cell's result is addressed by its
//! [`CampaignCell::fingerprint`] — a hash of everything that determines
//! the result (workload, stack, full cluster and tuning-cluster
//! configurations, sample size, derived seed and the
//! [`CODE_MODEL_VERSION`](crate::CODE_MODEL_VERSION)).  A store maps
//! fingerprints to [`CellResult`]s and optionally persists them as JSON
//! lines, one object per cell, via [`dmpb_metrics::json`]; re-running a
//! campaign against a warm store skips every already-computed cell.
//!
//! The serialization round-trips byte-exactly (floats use
//! shortest-round-trip formatting, `u64` identities travel as hex
//! strings), so a result served from disk is indistinguishable — field
//! for field and byte for byte — from one computed cold.  The campaign
//! determinism tests pin that invariant.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use dmpb_core::fnv::hash_bytes;
use dmpb_core::runner::ProxyRun;
use dmpb_metrics::json::{parse_object, JsonScalar, ObjectWriter};
use dmpb_workloads::{workload_by_kind, Framework, WorkloadKind};

use crate::matrix::CampaignCell;

/// The persisted result of one campaign cell: tuning outcome, accuracy,
/// runtime model measurements on the cell's cluster, and the kernel
/// execution checksum.  Everything needed by the report renderers, and
/// nothing that differs between a cold computation and a store hit.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's content address (see [`CampaignCell::fingerprint`]).
    pub fingerprint: u64,
    /// Code-model version the result was computed under.
    pub version: u32,
    /// The cell's workload.
    pub workload: WorkloadKind,
    /// The workload's software stack.
    pub framework: Framework,
    /// Measurement-cluster slug.
    pub cluster: String,
    /// Architecture override slug (`"default"` = the cluster's own).
    pub architecture: String,
    /// Tuning-cluster slug (equals `cluster` unless the scenario pinned
    /// one).
    pub tuning_cluster: String,
    /// Sample-execution size.
    pub elements: usize,
    /// Base seed of the cell's axis point.
    pub base_seed: u64,
    /// Derived per-cell sample seed.
    pub seed: u64,
    /// Whether the tuned proxy met the deviation bound on every metric.
    pub qualified: bool,
    /// Auto-tuning iterations spent.
    pub iterations: usize,
    /// Average accuracy across tracked metrics (tuning cluster).
    pub accuracy_avg: f64,
    /// Name of the worst-matching metric.
    pub worst_metric: String,
    /// Its accuracy.
    pub worst_accuracy: f64,
    /// Runtime speedup of the proxy over the original (tuning cluster).
    pub speedup: f64,
    /// Original workload's modelled runtime on the tuning cluster.
    pub real_runtime_secs: f64,
    /// Proxy's modelled runtime on the tuning cluster.
    pub proxy_runtime_secs: f64,
    /// Original workload's modelled runtime on the *cell's* cluster
    /// (differs from `real_runtime_secs` when a tuning cluster is pinned
    /// or an architecture override is in play).
    pub cell_real_runtime_secs: f64,
    /// Proxy's modelled runtime on the cell's architecture.
    pub cell_proxy_runtime_secs: f64,
    /// Motif kernels executed by the sample run.
    pub kernels_run: usize,
    /// Folded checksum over all kernel outputs.
    pub checksum: u64,
    /// Per-metric accuracies in the tuner's tracked-metric order.
    pub accuracies: Vec<(String, f64)>,
}

impl CellResult {
    /// Computes a cell's result from its [`ProxyRun`] (tuning + sample
    /// execution on the tuning cluster) plus the pure performance-model
    /// measurements on the cell's own cluster.
    pub fn compute(cell: &CampaignCell, run: &ProxyRun, version: u32) -> CellResult {
        let cluster = cell.cluster();
        let (worst_metric, worst_accuracy) = run
            .report
            .accuracy
            .worst_metric()
            .map(|(id, acc)| (id.name().to_string(), acc))
            .unwrap_or_else(|| ("none".to_string(), 1.0));
        CellResult {
            fingerprint: cell.fingerprint(version),
            version,
            workload: cell.kind,
            framework: cell.kind.framework(),
            cluster: cell.cluster_name.clone(),
            architecture: cell.architecture.clone(),
            tuning_cluster: cell
                .tuning_cluster_name
                .clone()
                .unwrap_or_else(|| cell.cluster_name.clone()),
            elements: cell.elements,
            base_seed: cell.base_seed,
            seed: cell.seed,
            qualified: run.report.qualified,
            iterations: run.report.iterations,
            accuracy_avg: run.report.accuracy.average(),
            worst_metric,
            worst_accuracy,
            speedup: run.report.speedup,
            real_runtime_secs: run.report.real_metrics.runtime_secs,
            proxy_runtime_secs: run.report.proxy_metrics.runtime_secs,
            cell_real_runtime_secs: workload_by_kind(cell.kind).measure(&cluster).runtime_secs,
            cell_proxy_runtime_secs: run.report.proxy.measure(&cluster.node.arch).runtime_secs,
            kernels_run: run.execution.kernels_run,
            checksum: run.execution.checksum,
            accuracies: run
                .report
                .accuracy
                .entries()
                .iter()
                .map(|(id, acc)| (id.name().to_string(), *acc))
                .collect(),
        }
    }

    /// Looks up a per-metric accuracy by metric name.
    pub fn accuracy_for(&self, metric: &str) -> Option<f64> {
        self.accuracies
            .iter()
            .find(|(name, _)| name == metric)
            .map(|(_, acc)| *acc)
    }

    /// Serializes the result as one flat JSON line.  The inverse of
    /// [`CellResult::from_line`]; `from_line(to_line(r)) == r` exactly.
    pub fn to_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_u64_hex("fingerprint", self.fingerprint);
        w.field_int("version", i64::from(self.version));
        w.field_str("workload", self.workload.short_name());
        w.field_str("framework", self.framework.name());
        w.field_str("cluster", &self.cluster);
        w.field_str("architecture", &self.architecture);
        w.field_str("tuning_cluster", &self.tuning_cluster);
        w.field_int("elements", self.elements as i64);
        w.field_u64_hex("base_seed", self.base_seed);
        w.field_u64_hex("seed", self.seed);
        w.field_bool("qualified", self.qualified);
        w.field_int("iterations", self.iterations as i64);
        w.field_f64("accuracy_avg", self.accuracy_avg);
        w.field_str("worst_metric", &self.worst_metric);
        w.field_f64("worst_accuracy", self.worst_accuracy);
        w.field_f64("speedup", self.speedup);
        w.field_f64("real_runtime_secs", self.real_runtime_secs);
        w.field_f64("proxy_runtime_secs", self.proxy_runtime_secs);
        w.field_f64("cell_real_runtime_secs", self.cell_real_runtime_secs);
        w.field_f64("cell_proxy_runtime_secs", self.cell_proxy_runtime_secs);
        w.field_int("kernels_run", self.kernels_run as i64);
        w.field_u64_hex("checksum", self.checksum);
        for (metric, acc) in &self.accuracies {
            w.field_f64(&format!("acc:{metric}"), *acc);
        }
        w.finish()
    }

    /// A stable digest over the serialized result.
    pub fn digest(&self) -> u64 {
        hash_bytes(self.to_line().as_bytes())
    }

    /// Parses a result from its JSON line.
    pub fn from_line(line: &str) -> Result<CellResult, String> {
        let fields = parse_object(line)?;
        let mut map: HashMap<&str, &JsonScalar> = HashMap::new();
        let mut accuracies = Vec::new();
        for (key, value) in &fields {
            if let Some(metric) = key.strip_prefix("acc:") {
                let acc = value
                    .as_f64()
                    .ok_or_else(|| format!("field `{key}` is not a number"))?;
                accuracies.push((metric.to_string(), acc));
            } else {
                map.insert(key.as_str(), value);
            }
        }
        let get = |key: &str| {
            map.get(key)
                .copied()
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let str_field = |key: &str| -> Result<String, String> {
            Ok(get(key)?
                .as_str()
                .ok_or_else(|| format!("field `{key}` is not a string"))?
                .to_string())
        };
        let hex_field = |key: &str| -> Result<u64, String> {
            let s = str_field(key)?;
            u64::from_str_radix(&s, 16).map_err(|e| format!("field `{key}`: {e}"))
        };
        // Reject negatives instead of `as`-wrapping them into huge
        // unsigned values — a corrupt line must error, not round-trip.
        let uint_field = |key: &str| -> Result<u64, String> {
            let value = get(key)?
                .as_int()
                .ok_or_else(|| format!("field `{key}` is not an integer"))?;
            u64::try_from(value).map_err(|_| format!("field `{key}` is negative: {value}"))
        };
        let f64_field = |key: &str| -> Result<f64, String> {
            get(key)?
                .as_f64()
                .ok_or_else(|| format!("field `{key}` is not a number"))
        };
        Ok(CellResult {
            fingerprint: hex_field("fingerprint")?,
            version: u32::try_from(uint_field("version")?)
                .map_err(|_| "field `version` exceeds u32".to_string())?,
            workload: str_field("workload")?.parse::<WorkloadKind>()?,
            framework: str_field("framework")?.parse::<Framework>()?,
            cluster: str_field("cluster")?,
            architecture: str_field("architecture")?,
            tuning_cluster: str_field("tuning_cluster")?,
            elements: uint_field("elements")? as usize,
            base_seed: hex_field("base_seed")?,
            seed: hex_field("seed")?,
            qualified: get("qualified")?
                .as_bool()
                .ok_or("field `qualified` is not a bool")?,
            iterations: uint_field("iterations")? as usize,
            accuracy_avg: f64_field("accuracy_avg")?,
            worst_metric: str_field("worst_metric")?,
            worst_accuracy: f64_field("worst_accuracy")?,
            speedup: f64_field("speedup")?,
            real_runtime_secs: f64_field("real_runtime_secs")?,
            proxy_runtime_secs: f64_field("proxy_runtime_secs")?,
            cell_real_runtime_secs: f64_field("cell_real_runtime_secs")?,
            cell_proxy_runtime_secs: f64_field("cell_proxy_runtime_secs")?,
            kernels_run: uint_field("kernels_run")? as usize,
            checksum: hex_field("checksum")?,
            accuracies,
        })
    }
}

/// Reads a JSON-lines campaign report / store file into its records.
/// Blank lines are skipped; a malformed line is an error (a corrupt store
/// must not silently shrink a baseline).
pub fn read_records(path: &Path) -> Result<Vec<CellResult>, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(
            CellResult::from_line(&line)
                .map_err(|e| format!("{} line {}: {e}", path.display(), idx + 1))?,
        );
    }
    Ok(records)
}

/// A malformed final line found (and discarded) while loading a store
/// file — the footprint of a crash or kill mid-append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// 1-based line number of the discarded line.
    pub line: usize,
    /// Why the line did not parse.
    pub error: String,
    /// Bytes of the torn tail (from the end of the last good line to
    /// end-of-file).
    pub discarded_bytes: u64,
}

/// The outcome of loading a store file with torn-tail recovery.
#[derive(Debug)]
pub struct LoadedRecords {
    /// The successfully parsed records, in file order.
    pub records: Vec<CellResult>,
    /// Length in bytes of the valid prefix (every parsed record plus its
    /// newline, plus any interior blank lines).  Truncating the file to
    /// this length removes a torn tail.
    pub valid_len: u64,
    /// Whether the last *valid* line is missing its trailing newline
    /// (a tear that landed between the payload and the `\n`).  Appending
    /// to the file without fixing this would glue two records together.
    pub missing_newline: bool,
    /// The discarded torn tail, if the final line was malformed.
    pub torn_tail: Option<TornTail>,
}

/// Loads a store file, recovering from a torn *final* line: a crash or
/// kill mid-append leaves a partial last line, and refusing to open the
/// store forever over it would brick every later run.  The torn tail is
/// reported (so [`ResultStore::open`] can truncate it away with a
/// warning); a malformed line in the *interior* of the file is still a
/// hard error — that is corruption, not a tear.
pub fn load_records_recovering(path: &Path) -> Result<LoadedRecords, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut reader = BufReader::new(file);
    // Split into raw byte chunks first so "is this the final line?" is
    // known when a parse fails.
    let mut chunks: Vec<Vec<u8>> = Vec::new();
    loop {
        let mut chunk = Vec::new();
        let n = reader
            .read_until(b'\n', &mut chunk)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if n == 0 {
            break;
        }
        chunks.push(chunk);
    }
    let is_blank = |chunk: &[u8]| chunk.iter().all(|b| b.is_ascii_whitespace());
    let last_content = chunks.iter().rposition(|c| !is_blank(c));

    let mut loaded = LoadedRecords {
        records: Vec::new(),
        valid_len: 0,
        missing_newline: false,
        torn_tail: None,
    };
    let mut offset = 0u64;
    for (idx, chunk) in chunks.iter().enumerate() {
        let end = offset + chunk.len() as u64;
        if is_blank(chunk) {
            loaded.valid_len = end;
            loaded.missing_newline = false;
            offset = end;
            continue;
        }
        let parsed = std::str::from_utf8(chunk)
            .map_err(|e| format!("invalid UTF-8: {e}"))
            .and_then(|text| CellResult::from_line(text.trim_end_matches(['\n', '\r'])));
        match parsed {
            Ok(record) => {
                loaded.records.push(record);
                loaded.valid_len = end;
                loaded.missing_newline = !chunk.ends_with(b"\n");
                offset = end;
            }
            Err(error) if Some(idx) == last_content => {
                loaded.torn_tail = Some(TornTail {
                    line: idx + 1,
                    error,
                    discarded_bytes: chunks[idx..].iter().map(|c| c.len() as u64).sum(),
                });
                break;
            }
            Err(error) => {
                return Err(format!("{} line {}: {error}", path.display(), idx + 1));
            }
        }
    }
    Ok(loaded)
}

/// Outcome of a [`compact_store`] rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Records surviving compaction (one per distinct fingerprint).
    pub kept: usize,
    /// Records dropped: appends shadowed by an earlier record with the
    /// same fingerprint (first wins, matching [`ResultStore`] load
    /// semantics), plus a torn final line if the file had one.
    pub dropped: usize,
}

/// Rewrites a JSONL store file, dropping every record shadowed by
/// first-wins fingerprint dedup (the footprint of racing workers or of
/// concatenated store files), interior blank lines, and a torn final
/// line.  Surviving records keep first-appearance order, so the
/// compacted file loads to exactly the index the original did and
/// parses with the strict [`read_records`] reader.
///
/// The rewrite goes through a temporary sibling file and an atomic
/// rename: a crash mid-compaction leaves either the old or the new
/// file, never a half-written one.  Do not compact a file another
/// process has open for appending — the rename strands that process's
/// file handle on the replaced inode.
pub fn compact_store(path: &Path) -> Result<CompactionStats, String> {
    let loaded = load_records_recovering(path)?;
    let torn = usize::from(loaded.torn_tail.is_some());
    let total = loaded.records.len();
    let mut seen = std::collections::HashSet::with_capacity(total);
    let mut out = String::new();
    let mut kept = 0usize;
    for record in loaded.records {
        if seen.insert(record.fingerprint) {
            out.push_str(&record.to_line());
            out.push('\n');
            kept += 1;
        }
    }
    let tmp = path.with_extension("jsonl.compact-tmp");
    std::fs::write(&tmp, out).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        format!("{} -> {}: {e}", tmp.display(), path.display())
    })?;
    Ok(CompactionStats {
        kept,
        dropped: total - kept + torn,
    })
}

/// Hit/miss counters of a [`ResultStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that fell through to a fresh computation.
    pub misses: u64,
    /// Results currently held.
    pub entries: usize,
    /// Appends that failed at the I/O layer (after the first failure the
    /// store degrades to in-memory, so this is 0 or 1 in practice).
    pub persist_errors: u64,
}

impl StoreStats {
    /// Total lookups answered (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the store, or `None` when there
    /// were no lookups at all.  An idle store has no hit ratio — gates
    /// must treat the zero-lookup case explicitly instead of reading the
    /// `0.0` that [`StoreStats::hit_ratio`] reports for it.
    pub fn try_hit_ratio(&self) -> Option<f64> {
        let total = self.lookups();
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Fraction of lookups served from the store (`0.0` when idle — use
    /// [`StoreStats::try_hit_ratio`] anywhere a zero-lookup run must not
    /// be confused with an all-miss run).
    pub fn hit_ratio(&self) -> f64 {
        self.try_hit_ratio().unwrap_or(0.0)
    }
}

/// A content-addressed map from cell fingerprints to results, optionally
/// backed by an append-only JSON-lines file.
///
/// Thread-safe: campaign workers probe and fill it concurrently.  On a
/// fingerprint collision between an existing and a new entry the existing
/// one wins — results are deterministic functions of their address, so
/// the two are identical anyway.
#[derive(Debug)]
pub struct ResultStore {
    index: Mutex<HashMap<u64, CellResult>>,
    file: Option<Mutex<File>>,
    path: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Set after the first failed append: the store keeps serving (and
    /// accepting) results in memory but stops touching the sick file.
    persist_disabled: AtomicBool,
    persist_errors: AtomicU64,
    persist_error: Mutex<Option<String>>,
    recovered_tail: Option<TornTail>,
}

impl ResultStore {
    /// An unpersisted store (results live for the process only).
    pub fn in_memory() -> Self {
        Self {
            index: Mutex::new(HashMap::new()),
            file: None,
            path: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist_disabled: AtomicBool::new(false),
            persist_errors: AtomicU64::new(0),
            persist_error: Mutex::new(None),
            recovered_tail: None,
        }
    }

    /// Opens (or creates) a persistent store at `path`, loading any
    /// existing records.
    ///
    /// A malformed *final* line (the footprint of a crash mid-append) is
    /// truncated away with a warning instead of bricking the store;
    /// malformed interior lines are still hard errors.  See
    /// [`ResultStore::recovered_tail`] for the discarded tail, if any.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, String> {
        let path = path.into();
        let mut index = HashMap::new();
        let mut recovered_tail = None;
        let mut missing_newline = false;
        if path.exists() {
            let loaded = load_records_recovering(&path)?;
            for record in loaded.records {
                index.entry(record.fingerprint).or_insert(record);
            }
            missing_newline = loaded.missing_newline;
            if let Some(tail) = loaded.torn_tail {
                eprintln!(
                    "warning: result store {}: discarding torn final line {} \
                     ({} bytes; {}) — truncating to the last good record",
                    path.display(),
                    tail.line,
                    tail.discarded_bytes,
                    tail.error
                );
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                file.set_len(loaded.valid_len)
                    .map_err(|e| format!("{}: truncating torn tail: {e}", path.display()))?;
                recovered_tail = Some(tail);
            }
        } else if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("{}: {e}", parent.display()))?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if missing_newline {
            // The last record is intact but its newline was torn off;
            // complete the line so the next append starts fresh.
            file.write_all(b"\n")
                .and_then(|()| file.flush())
                .map_err(|e| format!("{}: completing final line: {e}", path.display()))?;
        }
        Ok(Self {
            index: Mutex::new(index),
            file: Some(Mutex::new(file)),
            path: Some(path),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist_disabled: AtomicBool::new(false),
            persist_errors: AtomicU64::new(0),
            persist_error: Mutex::new(None),
            recovered_tail,
        })
    }

    /// The torn tail [`ResultStore::open`] truncated away, if the backing
    /// file had one.
    pub fn recovered_tail(&self) -> Option<&TornTail> {
        self.recovered_tail.as_ref()
    }

    /// The first append error, if persistence has degraded to in-memory.
    pub fn persist_error(&self) -> Option<String> {
        self.persist_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The backing file, if the store persists.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up a result by fingerprint, counting a hit or miss.
    ///
    /// A poisoned index lock is recovered, not propagated: the index is a
    /// content-addressed map filled first-wins, so whatever a panicking
    /// thread managed to insert is a complete, valid record.
    pub fn lookup(&self, fingerprint: u64) -> Option<CellResult> {
        let found = self
            .index
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&fingerprint)
            .cloned();
        match found {
            Some(record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a result under its fingerprint, appending it to the backing
    /// file.  A result already present under the same fingerprint is kept
    /// and not re-appended.
    ///
    /// A failed append (full disk, EIO, revoked handle) must not kill a
    /// batch run or a daemon: the error is recorded, a warning is printed
    /// and the store degrades to in-memory — the in-memory insert always
    /// succeeds.  Returns the persistence error, if this append hit one.
    pub fn insert(&self, record: CellResult) -> Result<(), String> {
        let fresh = {
            let mut index = self.index.lock().unwrap_or_else(PoisonError::into_inner);
            match index.entry(record.fingerprint) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(record.clone());
                    true
                }
            }
        };
        if !fresh || self.persist_disabled.load(Ordering::Acquire) {
            return Ok(());
        }
        if let Some(file) = &self.file {
            let mut file = file.lock().unwrap_or_else(PoisonError::into_inner);
            let appended = writeln!(file, "{}", record.to_line()).and_then(|()| file.flush());
            if let Err(e) = appended {
                let message = match self.path() {
                    Some(path) => format!("{}: {e}", path.display()),
                    None => e.to_string(),
                };
                self.persist_errors.fetch_add(1, Ordering::Relaxed);
                // First failure wins; later results stay in memory only.
                if !self.persist_disabled.swap(true, Ordering::AcqRel) {
                    eprintln!(
                        "warning: result store append failed ({message}); \
                         degrading to in-memory for the rest of this process"
                    );
                    *self
                        .persist_error
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(message.clone());
                }
                return Err(message);
            }
        }
        Ok(())
    }

    /// Snapshot of the hit/miss counters and entry count.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .index
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            persist_errors: self.persist_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Scenario;
    use dmpb_core::runner::SuiteRunner;
    use dmpb_workloads::ClusterConfig;

    fn sample_result() -> CellResult {
        let cell = Scenario::with_defaults("store-test").expand()[0].clone();
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let run = runner.run_cell(cell.kind, cell.elements, cell.seed);
        CellResult::compute(&cell, &run, 1)
    }

    #[test]
    fn serialization_round_trips_exactly() {
        let result = sample_result();
        let line = result.to_line();
        let back = CellResult::from_line(&line).unwrap();
        assert_eq!(back, result);
        assert_eq!(
            back.to_line(),
            line,
            "re-serialization must be byte-identical"
        );
        assert_eq!(back.digest(), result.digest());
        assert!(!result.accuracies.is_empty());
        assert_eq!(
            result.accuracy_for(&result.worst_metric),
            Some(result.worst_accuracy)
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(CellResult::from_line("{}").is_err());
        assert!(CellResult::from_line("not json").is_err());
        let line = sample_result().to_line();
        let bad_workload = line.replace("\"workload\":\"TeraSort\"", "\"workload\":\"Quicksort\"");
        assert!(CellResult::from_line(&bad_workload).is_err());
        // Negative counts must error, not wrap into huge unsigned values.
        let negative = line.replace("\"elements\":2000", "\"elements\":-1");
        let err = CellResult::from_line(&negative).unwrap_err();
        assert!(err.contains("negative"), "{err}");
    }

    #[test]
    fn store_persists_and_reloads() {
        let result = sample_result();
        let dir = std::env::temp_dir().join(format!(
            "dmpb-store-test-{}-{:016x}",
            std::process::id(),
            result.digest()
        ));
        let path = dir.join("results.jsonl");
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.lookup(result.fingerprint), None);
        store.insert(result.clone()).unwrap();
        store.insert(result.clone()).unwrap(); // dedup: not re-appended
        assert_eq!(store.stats().entries, 1);
        drop(store);

        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.stats().entries, 1);
        let served = reopened.lookup(result.fingerprint).unwrap();
        assert_eq!(served, result);
        assert_eq!(served.to_line(), result.to_line());
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        assert_eq!(read_records(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hit_ratio_counts_lookups() {
        let store = ResultStore::in_memory();
        let result = sample_result();
        assert!(store.lookup(result.fingerprint).is_none());
        store.insert(result.clone()).unwrap();
        assert!(store.lookup(result.fingerprint).is_some());
        assert!(store.lookup(result.fingerprint).is_some());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.lookups(), 3);
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_store_has_no_hit_ratio() {
        let idle = StoreStats::default();
        assert_eq!(idle.lookups(), 0);
        assert_eq!(idle.try_hit_ratio(), None);
        assert_eq!(idle.hit_ratio(), 0.0);
    }

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmpb-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn torn_final_line_is_truncated_on_reopen() {
        let result = sample_result();
        let dir = temp_store_dir("torn-tail");
        let path = dir.join("results.jsonl");
        {
            let store = ResultStore::open(&path).unwrap();
            store.insert(result.clone()).unwrap();
        }
        // A crash mid-append leaves a partial final line.
        let torn = &result.to_line()[..40];
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            write!(file, "{torn}").unwrap();
        }
        assert!(
            read_records(&path).is_err(),
            "the strict reader must reject the torn tail"
        );

        let reopened = ResultStore::open(&path).expect("torn tail must not brick the store");
        assert_eq!(reopened.stats().entries, 1);
        let tail = reopened.recovered_tail().expect("tail was recovered");
        assert_eq!(tail.line, 2);
        assert_eq!(tail.discarded_bytes, torn.len() as u64);
        assert_eq!(reopened.lookup(result.fingerprint).unwrap(), result);

        // The truncated file appends cleanly and parses strictly again.
        let mut second = result.clone();
        second.fingerprint ^= 0x5eed;
        reopened.insert(second.clone()).unwrap();
        drop(reopened);
        let records = read_records(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].fingerprint, second.fingerprint);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_newline_only_is_completed_on_reopen() {
        // The tear can land between the payload and its '\n': the record
        // is intact but appending blindly would glue two lines together.
        let result = sample_result();
        let dir = temp_store_dir("torn-newline");
        let path = dir.join("results.jsonl");
        std::fs::write(&path, result.to_line()).unwrap(); // no trailing '\n'

        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.stats().entries, 1);
        assert!(store.recovered_tail().is_none());
        let mut second = result.clone();
        second.fingerprint ^= 0xbeef;
        store.insert(second).unwrap();
        drop(store);
        assert_eq!(read_records(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_corruption_is_still_a_hard_error() {
        let result = sample_result();
        let dir = temp_store_dir("interior");
        let path = dir.join("results.jsonl");
        std::fs::write(&path, format!("garbage not json\n{}\n", result.to_line())).unwrap();
        let err = ResultStore::open(&path).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_failure_degrades_to_in_memory_without_panicking() {
        let result = sample_result();
        let dir = temp_store_dir("io-degrade");
        let path = dir.join("results.jsonl");
        std::fs::write(&path, "").unwrap();
        // A read-only handle makes every append fail with a real I/O
        // error (EBADF), standing in for a full disk or EIO.
        let store = ResultStore {
            index: Mutex::new(HashMap::new()),
            file: Some(Mutex::new(File::open(&path).unwrap())),
            path: Some(path.clone()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist_disabled: AtomicBool::new(false),
            persist_errors: AtomicU64::new(0),
            persist_error: Mutex::new(None),
            recovered_tail: None,
        };
        let err = store.insert(result.clone()).unwrap_err();
        assert!(err.contains("results.jsonl"), "{err}");
        // The result is still served from memory; the error is recorded.
        assert_eq!(store.lookup(result.fingerprint).unwrap(), result);
        assert_eq!(store.stats().persist_errors, 1);
        assert!(store.persist_error().is_some());
        // Later inserts silently stay in memory (degraded, not dead).
        let mut second = result.clone();
        second.fingerprint ^= 1;
        store.insert(second.clone()).unwrap();
        assert_eq!(store.stats().entries, 2);
        assert_eq!(store.stats().persist_errors, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_drops_shadowed_records_and_round_trips_strictly() {
        let result = sample_result();
        let dir = temp_store_dir("compact");
        let path = dir.join("results.jsonl");

        // First-wins shadowing: a record re-appended under the same
        // fingerprint with *different* payload (e.g. two concatenated
        // store generations) must compact to the first occurrence.
        let mut shadowed = result.clone();
        shadowed.checksum ^= 0xbad;
        let mut second = result.clone();
        second.fingerprint ^= 0x5eed;
        let mut contents = String::new();
        for r in [&result, &shadowed, &second, &result] {
            contents.push_str(&r.to_line());
            contents.push('\n');
        }
        contents.push('\n'); // interior blank line, legal but noise
        contents.push_str(&second.to_line());
        contents.push('\n');
        // ... and a torn tail from a crash mid-append.
        contents.push_str(&result.to_line()[..25]);
        std::fs::write(&path, &contents).unwrap();

        let stats = compact_store(&path).unwrap();
        assert_eq!(
            stats,
            CompactionStats {
                kept: 2,
                dropped: 4
            }
        );

        // The compacted file parses with the strict reader and loads to
        // the same first-wins index the original did.
        let records = read_records(&path).unwrap();
        assert_eq!(records, vec![result.clone(), second.clone()]);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.stats().entries, 2);
        assert_eq!(store.lookup(result.fingerprint).unwrap(), result);

        // Compacting a compacted store is a no-op.
        drop(store);
        let stats = compact_store(&path).unwrap();
        assert_eq!(
            stats,
            CompactionStats {
                kept: 2,
                dropped: 0
            }
        );
        assert_eq!(read_records(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_locks_are_recovered_not_cascaded() {
        let result = sample_result();
        let store = std::sync::Arc::new(ResultStore::in_memory());
        store.insert(result.clone()).unwrap();
        // A worker panicking while holding the index lock poisons it.
        let poisoner = std::sync::Arc::clone(&store);
        let panicked = std::thread::spawn(move || {
            let _guard = poisoner.index.lock().unwrap();
            panic!("worker died mid-insert");
        })
        .join();
        assert!(panicked.is_err());
        assert!(store.index.lock().is_err(), "the lock really is poisoned");
        // Every other worker and later request keeps working.
        assert_eq!(store.lookup(result.fingerprint).unwrap(), result);
        let mut second = result.clone();
        second.fingerprint ^= 2;
        store.insert(second).unwrap();
        assert_eq!(store.stats().entries, 2);
    }
}
