//! The content-addressed result store.
//!
//! Every campaign cell's result is addressed by its
//! [`CampaignCell::fingerprint`] — a hash of everything that determines
//! the result (workload, stack, full cluster and tuning-cluster
//! configurations, sample size, derived seed and the
//! [`CODE_MODEL_VERSION`](crate::CODE_MODEL_VERSION)).  A store maps
//! fingerprints to [`CellResult`]s and optionally persists them as JSON
//! lines, one object per cell, via [`dmpb_metrics::json`]; re-running a
//! campaign against a warm store skips every already-computed cell.
//!
//! The serialization round-trips byte-exactly (floats use
//! shortest-round-trip formatting, `u64` identities travel as hex
//! strings), so a result served from disk is indistinguishable — field
//! for field and byte for byte — from one computed cold.  The campaign
//! determinism tests pin that invariant.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dmpb_core::fnv::hash_bytes;
use dmpb_core::runner::ProxyRun;
use dmpb_metrics::json::{parse_object, JsonScalar, ObjectWriter};
use dmpb_workloads::{workload_by_kind, Framework, WorkloadKind};

use crate::matrix::CampaignCell;

/// The persisted result of one campaign cell: tuning outcome, accuracy,
/// runtime model measurements on the cell's cluster, and the kernel
/// execution checksum.  Everything needed by the report renderers, and
/// nothing that differs between a cold computation and a store hit.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's content address (see [`CampaignCell::fingerprint`]).
    pub fingerprint: u64,
    /// Code-model version the result was computed under.
    pub version: u32,
    /// The cell's workload.
    pub workload: WorkloadKind,
    /// The workload's software stack.
    pub framework: Framework,
    /// Measurement-cluster slug.
    pub cluster: String,
    /// Architecture override slug (`"default"` = the cluster's own).
    pub architecture: String,
    /// Tuning-cluster slug (equals `cluster` unless the scenario pinned
    /// one).
    pub tuning_cluster: String,
    /// Sample-execution size.
    pub elements: usize,
    /// Base seed of the cell's axis point.
    pub base_seed: u64,
    /// Derived per-cell sample seed.
    pub seed: u64,
    /// Whether the tuned proxy met the deviation bound on every metric.
    pub qualified: bool,
    /// Auto-tuning iterations spent.
    pub iterations: usize,
    /// Average accuracy across tracked metrics (tuning cluster).
    pub accuracy_avg: f64,
    /// Name of the worst-matching metric.
    pub worst_metric: String,
    /// Its accuracy.
    pub worst_accuracy: f64,
    /// Runtime speedup of the proxy over the original (tuning cluster).
    pub speedup: f64,
    /// Original workload's modelled runtime on the tuning cluster.
    pub real_runtime_secs: f64,
    /// Proxy's modelled runtime on the tuning cluster.
    pub proxy_runtime_secs: f64,
    /// Original workload's modelled runtime on the *cell's* cluster
    /// (differs from `real_runtime_secs` when a tuning cluster is pinned
    /// or an architecture override is in play).
    pub cell_real_runtime_secs: f64,
    /// Proxy's modelled runtime on the cell's architecture.
    pub cell_proxy_runtime_secs: f64,
    /// Motif kernels executed by the sample run.
    pub kernels_run: usize,
    /// Folded checksum over all kernel outputs.
    pub checksum: u64,
    /// Per-metric accuracies in the tuner's tracked-metric order.
    pub accuracies: Vec<(String, f64)>,
}

impl CellResult {
    /// Computes a cell's result from its [`ProxyRun`] (tuning + sample
    /// execution on the tuning cluster) plus the pure performance-model
    /// measurements on the cell's own cluster.
    pub fn compute(cell: &CampaignCell, run: &ProxyRun, version: u32) -> CellResult {
        let cluster = cell.cluster();
        let (worst_metric, worst_accuracy) = run
            .report
            .accuracy
            .worst_metric()
            .map(|(id, acc)| (id.name().to_string(), acc))
            .unwrap_or_else(|| ("none".to_string(), 1.0));
        CellResult {
            fingerprint: cell.fingerprint(version),
            version,
            workload: cell.kind,
            framework: cell.kind.framework(),
            cluster: cell.cluster_name.clone(),
            architecture: cell.architecture.clone(),
            tuning_cluster: cell
                .tuning_cluster_name
                .clone()
                .unwrap_or_else(|| cell.cluster_name.clone()),
            elements: cell.elements,
            base_seed: cell.base_seed,
            seed: cell.seed,
            qualified: run.report.qualified,
            iterations: run.report.iterations,
            accuracy_avg: run.report.accuracy.average(),
            worst_metric,
            worst_accuracy,
            speedup: run.report.speedup,
            real_runtime_secs: run.report.real_metrics.runtime_secs,
            proxy_runtime_secs: run.report.proxy_metrics.runtime_secs,
            cell_real_runtime_secs: workload_by_kind(cell.kind).measure(&cluster).runtime_secs,
            cell_proxy_runtime_secs: run.report.proxy.measure(&cluster.node.arch).runtime_secs,
            kernels_run: run.execution.kernels_run,
            checksum: run.execution.checksum,
            accuracies: run
                .report
                .accuracy
                .entries()
                .iter()
                .map(|(id, acc)| (id.name().to_string(), *acc))
                .collect(),
        }
    }

    /// Looks up a per-metric accuracy by metric name.
    pub fn accuracy_for(&self, metric: &str) -> Option<f64> {
        self.accuracies
            .iter()
            .find(|(name, _)| name == metric)
            .map(|(_, acc)| *acc)
    }

    /// Serializes the result as one flat JSON line.  The inverse of
    /// [`CellResult::from_line`]; `from_line(to_line(r)) == r` exactly.
    pub fn to_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_u64_hex("fingerprint", self.fingerprint);
        w.field_int("version", i64::from(self.version));
        w.field_str("workload", self.workload.short_name());
        w.field_str("framework", self.framework.name());
        w.field_str("cluster", &self.cluster);
        w.field_str("architecture", &self.architecture);
        w.field_str("tuning_cluster", &self.tuning_cluster);
        w.field_int("elements", self.elements as i64);
        w.field_u64_hex("base_seed", self.base_seed);
        w.field_u64_hex("seed", self.seed);
        w.field_bool("qualified", self.qualified);
        w.field_int("iterations", self.iterations as i64);
        w.field_f64("accuracy_avg", self.accuracy_avg);
        w.field_str("worst_metric", &self.worst_metric);
        w.field_f64("worst_accuracy", self.worst_accuracy);
        w.field_f64("speedup", self.speedup);
        w.field_f64("real_runtime_secs", self.real_runtime_secs);
        w.field_f64("proxy_runtime_secs", self.proxy_runtime_secs);
        w.field_f64("cell_real_runtime_secs", self.cell_real_runtime_secs);
        w.field_f64("cell_proxy_runtime_secs", self.cell_proxy_runtime_secs);
        w.field_int("kernels_run", self.kernels_run as i64);
        w.field_u64_hex("checksum", self.checksum);
        for (metric, acc) in &self.accuracies {
            w.field_f64(&format!("acc:{metric}"), *acc);
        }
        w.finish()
    }

    /// A stable digest over the serialized result.
    pub fn digest(&self) -> u64 {
        hash_bytes(self.to_line().as_bytes())
    }

    /// Parses a result from its JSON line.
    pub fn from_line(line: &str) -> Result<CellResult, String> {
        let fields = parse_object(line)?;
        let mut map: HashMap<&str, &JsonScalar> = HashMap::new();
        let mut accuracies = Vec::new();
        for (key, value) in &fields {
            if let Some(metric) = key.strip_prefix("acc:") {
                let acc = value
                    .as_f64()
                    .ok_or_else(|| format!("field `{key}` is not a number"))?;
                accuracies.push((metric.to_string(), acc));
            } else {
                map.insert(key.as_str(), value);
            }
        }
        let get = |key: &str| {
            map.get(key)
                .copied()
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let str_field = |key: &str| -> Result<String, String> {
            Ok(get(key)?
                .as_str()
                .ok_or_else(|| format!("field `{key}` is not a string"))?
                .to_string())
        };
        let hex_field = |key: &str| -> Result<u64, String> {
            let s = str_field(key)?;
            u64::from_str_radix(&s, 16).map_err(|e| format!("field `{key}`: {e}"))
        };
        // Reject negatives instead of `as`-wrapping them into huge
        // unsigned values — a corrupt line must error, not round-trip.
        let uint_field = |key: &str| -> Result<u64, String> {
            let value = get(key)?
                .as_int()
                .ok_or_else(|| format!("field `{key}` is not an integer"))?;
            u64::try_from(value).map_err(|_| format!("field `{key}` is negative: {value}"))
        };
        let f64_field = |key: &str| -> Result<f64, String> {
            get(key)?
                .as_f64()
                .ok_or_else(|| format!("field `{key}` is not a number"))
        };
        Ok(CellResult {
            fingerprint: hex_field("fingerprint")?,
            version: u32::try_from(uint_field("version")?)
                .map_err(|_| "field `version` exceeds u32".to_string())?,
            workload: str_field("workload")?.parse::<WorkloadKind>()?,
            framework: str_field("framework")?.parse::<Framework>()?,
            cluster: str_field("cluster")?,
            architecture: str_field("architecture")?,
            tuning_cluster: str_field("tuning_cluster")?,
            elements: uint_field("elements")? as usize,
            base_seed: hex_field("base_seed")?,
            seed: hex_field("seed")?,
            qualified: get("qualified")?
                .as_bool()
                .ok_or("field `qualified` is not a bool")?,
            iterations: uint_field("iterations")? as usize,
            accuracy_avg: f64_field("accuracy_avg")?,
            worst_metric: str_field("worst_metric")?,
            worst_accuracy: f64_field("worst_accuracy")?,
            speedup: f64_field("speedup")?,
            real_runtime_secs: f64_field("real_runtime_secs")?,
            proxy_runtime_secs: f64_field("proxy_runtime_secs")?,
            cell_real_runtime_secs: f64_field("cell_real_runtime_secs")?,
            cell_proxy_runtime_secs: f64_field("cell_proxy_runtime_secs")?,
            kernels_run: uint_field("kernels_run")? as usize,
            checksum: hex_field("checksum")?,
            accuracies,
        })
    }
}

/// Reads a JSON-lines campaign report / store file into its records.
/// Blank lines are skipped; a malformed line is an error (a corrupt store
/// must not silently shrink a baseline).
pub fn read_records(path: &Path) -> Result<Vec<CellResult>, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(
            CellResult::from_line(&line)
                .map_err(|e| format!("{} line {}: {e}", path.display(), idx + 1))?,
        );
    }
    Ok(records)
}

/// Hit/miss counters of a [`ResultStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that fell through to a fresh computation.
    pub misses: u64,
    /// Results currently held.
    pub entries: usize,
}

impl StoreStats {
    /// Fraction of lookups served from the store (`0.0` when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A content-addressed map from cell fingerprints to results, optionally
/// backed by an append-only JSON-lines file.
///
/// Thread-safe: campaign workers probe and fill it concurrently.  On a
/// fingerprint collision between an existing and a new entry the existing
/// one wins — results are deterministic functions of their address, so
/// the two are identical anyway.
#[derive(Debug)]
pub struct ResultStore {
    index: Mutex<HashMap<u64, CellResult>>,
    file: Option<Mutex<File>>,
    path: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultStore {
    /// An unpersisted store (results live for the process only).
    pub fn in_memory() -> Self {
        Self {
            index: Mutex::new(HashMap::new()),
            file: None,
            path: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) a persistent store at `path`, loading any
    /// existing records.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, String> {
        let path = path.into();
        let mut index = HashMap::new();
        if path.exists() {
            for record in read_records(&path)? {
                index.entry(record.fingerprint).or_insert(record);
            }
        } else if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("{}: {e}", parent.display()))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Self {
            index: Mutex::new(index),
            file: Some(Mutex::new(file)),
            path: Some(path),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The backing file, if the store persists.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up a result by fingerprint, counting a hit or miss.
    pub fn lookup(&self, fingerprint: u64) -> Option<CellResult> {
        let found = self
            .index
            .lock()
            .expect("result store poisoned")
            .get(&fingerprint)
            .cloned();
        match found {
            Some(record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a result under its fingerprint, appending it to the backing
    /// file.  A result already present under the same fingerprint is kept
    /// and not re-appended.
    pub fn insert(&self, record: CellResult) {
        let fresh = {
            let mut index = self.index.lock().expect("result store poisoned");
            match index.entry(record.fingerprint) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(record.clone());
                    true
                }
            }
        };
        if fresh {
            if let Some(file) = &self.file {
                let mut file = file.lock().expect("result store file poisoned");
                writeln!(file, "{}", record.to_line()).expect("failed to append to result store");
                file.flush().expect("failed to flush the result store");
            }
        }
    }

    /// Snapshot of the hit/miss counters and entry count.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.index.lock().expect("result store poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Scenario;
    use dmpb_core::runner::SuiteRunner;
    use dmpb_workloads::ClusterConfig;

    fn sample_result() -> CellResult {
        let cell = Scenario::with_defaults("store-test").expand()[0].clone();
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let run = runner.run_cell(cell.kind, cell.elements, cell.seed);
        CellResult::compute(&cell, &run, 1)
    }

    #[test]
    fn serialization_round_trips_exactly() {
        let result = sample_result();
        let line = result.to_line();
        let back = CellResult::from_line(&line).unwrap();
        assert_eq!(back, result);
        assert_eq!(
            back.to_line(),
            line,
            "re-serialization must be byte-identical"
        );
        assert_eq!(back.digest(), result.digest());
        assert!(!result.accuracies.is_empty());
        assert_eq!(
            result.accuracy_for(&result.worst_metric),
            Some(result.worst_accuracy)
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(CellResult::from_line("{}").is_err());
        assert!(CellResult::from_line("not json").is_err());
        let line = sample_result().to_line();
        let bad_workload = line.replace("\"workload\":\"TeraSort\"", "\"workload\":\"Quicksort\"");
        assert!(CellResult::from_line(&bad_workload).is_err());
        // Negative counts must error, not wrap into huge unsigned values.
        let negative = line.replace("\"elements\":2000", "\"elements\":-1");
        let err = CellResult::from_line(&negative).unwrap_err();
        assert!(err.contains("negative"), "{err}");
    }

    #[test]
    fn store_persists_and_reloads() {
        let result = sample_result();
        let dir = std::env::temp_dir().join(format!(
            "dmpb-store-test-{}-{:016x}",
            std::process::id(),
            result.digest()
        ));
        let path = dir.join("results.jsonl");
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.lookup(result.fingerprint), None);
        store.insert(result.clone());
        store.insert(result.clone()); // dedup: not re-appended
        assert_eq!(store.stats().entries, 1);
        drop(store);

        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.stats().entries, 1);
        let served = reopened.lookup(result.fingerprint).unwrap();
        assert_eq!(served, result);
        assert_eq!(served.to_line(), result.to_line());
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        assert_eq!(read_records(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hit_ratio_counts_lookups() {
        let store = ResultStore::in_memory();
        let result = sample_result();
        assert!(store.lookup(result.fingerprint).is_none());
        store.insert(result.clone());
        assert!(store.lookup(result.fingerprint).is_some());
        assert!(store.lookup(result.fingerprint).is_some());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(StoreStats::default().hit_ratio(), 0.0);
    }
}
