//! The content-addressed result store.
//!
//! Every campaign cell's result is addressed by its
//! [`CampaignCell::fingerprint`] — a hash of everything that determines
//! the result (workload, stack, full cluster and tuning-cluster
//! configurations, sample size, derived seed and the
//! [`CODE_MODEL_VERSION`](crate::CODE_MODEL_VERSION)).  A store maps
//! fingerprints to [`CellResult`]s and optionally persists them as JSON
//! lines, one object per cell, via [`dmpb_metrics::json`]; re-running a
//! campaign against a warm store skips every already-computed cell.
//!
//! The serialization round-trips byte-exactly (floats use
//! shortest-round-trip formatting, `u64` identities travel as hex
//! strings), so a result served from disk is indistinguishable — field
//! for field and byte for byte — from one computed cold.  The campaign
//! determinism tests pin that invariant.
//!
//! # Store layouts
//!
//! Two on-disk layouts exist, both built from the same JSONL record
//! format:
//!
//! * **Legacy single file** — one append-only `*.jsonl`, one index
//!   lock, one `flush()` per insert.  Still fully supported: plain
//!   [`ResultStore::open`] on a file path serves it unchanged.
//! * **Sharded directory** (PR 9) — `segment-<k>.jsonl` × N with
//!   `shard = fingerprint % N` ([`shard_for`]), a `store-meta.json`
//!   manifest pinning N, and a sidecar `index.jsonl` mapping
//!   fingerprint → (segment, byte offset, line digest).  Each shard has
//!   its own index mutex and its own writer mutex, so concurrent
//!   campaign workers appending to different shards share no lock — and
//!   an insert only parks the record on its shard's pending queue; the
//!   serialization, the appends and the flush all happen in one batch
//!   per [`ResultStore::sync`] per campaign (and on drop) instead of
//!   once per record.
//!
//! A warm [`ResultStore::open`] of a sharded store loads only the
//! sidecar — records stay on disk until a lookup touches them, at which
//! point the line is read at its recorded offset, digest-verified and
//! cached as an `Arc`.  When the sidecar is missing or stale (segment
//! lengths drifted — the footprint of a crash before `sync`), `open`
//! falls back to scanning all segments in parallel, with the torn-tail
//! recovery applied per segment.  [`ResultStore::open_sharded`] on a
//! legacy file migrates it into segments in place, crash-safely.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use dmpb_core::fnv::hash_bytes;
use dmpb_core::runner::ProxyRun;
use dmpb_metrics::json::{parse_object, JsonScalar, ObjectWriter};
use dmpb_motifs::workers::WorkerPool;
use dmpb_workloads::{workload_by_kind, Framework, Workload, WorkloadKind};

use crate::matrix::CampaignCell;

/// The synthetic-population identity persisted with a cell result, when
/// the cell ran a population member.  Mirrors
/// [`PopulationCell`](crate::matrix::PopulationCell) but carries only
/// the hashes (the spec itself lives in the scenario), so stored lines
/// stay flat and old readers that ignore unknown keys keep working.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationResult {
    /// Hash of the generative [`PopulationSpec`](dmpb_population::PopulationSpec).
    pub spec_hash: u64,
    /// The member's rank within the population.
    pub rank: u32,
    /// FNV hash of the member's full sampled identity.
    pub member_hash: u64,
    /// The member's concrete topology-family slug.
    pub family: String,
    /// The member's display label.
    pub label: String,
}

/// The persisted result of one campaign cell: tuning outcome, accuracy,
/// runtime model measurements on the cell's cluster, and the kernel
/// execution checksum.  Everything needed by the report renderers, and
/// nothing that differs between a cold computation and a store hit.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's content address (see [`CampaignCell::fingerprint`]).
    pub fingerprint: u64,
    /// Code-model version the result was computed under.
    pub version: u32,
    /// The cell's workload.
    pub workload: WorkloadKind,
    /// The workload's software stack.
    pub framework: Framework,
    /// Measurement-cluster slug.
    pub cluster: String,
    /// Architecture override slug (`"default"` = the cluster's own).
    pub architecture: String,
    /// Tuning-cluster slug (equals `cluster` unless the scenario pinned
    /// one).
    pub tuning_cluster: String,
    /// Sample-execution size.
    pub elements: usize,
    /// Base seed of the cell's axis point.
    pub base_seed: u64,
    /// Derived per-cell sample seed.
    pub seed: u64,
    /// Whether the tuned proxy met the deviation bound on every metric.
    pub qualified: bool,
    /// Auto-tuning iterations spent.
    pub iterations: usize,
    /// Average accuracy across tracked metrics (tuning cluster).
    pub accuracy_avg: f64,
    /// Name of the worst-matching metric.
    pub worst_metric: String,
    /// Its accuracy.
    pub worst_accuracy: f64,
    /// Runtime speedup of the proxy over the original (tuning cluster).
    pub speedup: f64,
    /// Original workload's modelled runtime on the tuning cluster.
    pub real_runtime_secs: f64,
    /// Proxy's modelled runtime on the tuning cluster.
    pub proxy_runtime_secs: f64,
    /// Original workload's modelled runtime on the *cell's* cluster
    /// (differs from `real_runtime_secs` when a tuning cluster is pinned
    /// or an architecture override is in play).
    pub cell_real_runtime_secs: f64,
    /// Proxy's modelled runtime on the cell's architecture.
    pub cell_proxy_runtime_secs: f64,
    /// Motif kernels executed by the sample run.
    pub kernels_run: usize,
    /// Folded checksum over all kernel outputs.
    pub checksum: u64,
    /// Per-metric accuracies in the tuner's tracked-metric order.
    pub accuracies: Vec<(String, f64)>,
    /// Synthetic-population identity, when the cell ran a population
    /// member ([`Self::workload`] is then the member's carrier).
    pub population: Option<PopulationResult>,
}

impl CellResult {
    /// Computes a cell's result from its [`ProxyRun`] (tuning + sample
    /// execution on the tuning cluster) plus the pure performance-model
    /// measurements on the cell's own cluster.
    pub fn compute(cell: &CampaignCell, run: &ProxyRun, version: u32) -> CellResult {
        Self::compute_for(cell, run, version, workload_by_kind(cell.kind).as_ref())
    }

    /// Like [`CellResult::compute`], but measuring the given workload
    /// instance on the cell's cluster instead of resolving it from
    /// [`CampaignCell::kind`] — the entry point for synthetic population
    /// members, whose carrier kind is *not* the workload that ran.
    pub fn compute_for(
        cell: &CampaignCell,
        run: &ProxyRun,
        version: u32,
        workload: &dyn Workload,
    ) -> CellResult {
        let cluster = cell.cluster();
        let (worst_metric, worst_accuracy) = run
            .report
            .accuracy
            .worst_metric()
            .map(|(id, acc)| (id.name().to_string(), acc))
            .unwrap_or_else(|| ("none".to_string(), 1.0));
        CellResult {
            fingerprint: cell.fingerprint(version),
            version,
            workload: cell.kind,
            framework: cell.kind.framework(),
            cluster: cell.cluster_name.clone(),
            architecture: cell.architecture.clone(),
            tuning_cluster: cell
                .tuning_cluster_name
                .clone()
                .unwrap_or_else(|| cell.cluster_name.clone()),
            elements: cell.elements,
            base_seed: cell.base_seed,
            seed: cell.seed,
            qualified: run.report.qualified,
            iterations: run.report.iterations,
            accuracy_avg: run.report.accuracy.average(),
            worst_metric,
            worst_accuracy,
            speedup: run.report.speedup,
            real_runtime_secs: run.report.real_metrics.runtime_secs,
            proxy_runtime_secs: run.report.proxy_metrics.runtime_secs,
            cell_real_runtime_secs: workload.measure(&cluster).runtime_secs,
            cell_proxy_runtime_secs: run.report.proxy.measure(&cluster.node.arch).runtime_secs,
            kernels_run: run.execution.kernels_run,
            checksum: run.execution.checksum,
            accuracies: run
                .report
                .accuracy
                .entries()
                .iter()
                .map(|(id, acc)| (id.name().to_string(), *acc))
                .collect(),
            population: cell.population.as_ref().map(|p| PopulationResult {
                spec_hash: p.spec.spec_hash(),
                rank: p.rank,
                member_hash: p.member_hash,
                family: p.family.clone(),
                label: p.label.clone(),
            }),
        }
    }

    /// Looks up a per-metric accuracy by metric name.
    pub fn accuracy_for(&self, metric: &str) -> Option<f64> {
        self.accuracies
            .iter()
            .find(|(name, _)| name == metric)
            .map(|(_, acc)| *acc)
    }

    /// Serializes the result as one flat JSON line.  The inverse of
    /// [`CellResult::from_line`]; `from_line(to_line(r)) == r` exactly.
    pub fn to_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_u64_hex("fingerprint", self.fingerprint);
        w.field_int("version", i64::from(self.version));
        w.field_str("workload", self.workload.short_name());
        w.field_str("framework", self.framework.name());
        w.field_str("cluster", &self.cluster);
        w.field_str("architecture", &self.architecture);
        w.field_str("tuning_cluster", &self.tuning_cluster);
        w.field_int("elements", self.elements as i64);
        w.field_u64_hex("base_seed", self.base_seed);
        w.field_u64_hex("seed", self.seed);
        w.field_bool("qualified", self.qualified);
        w.field_int("iterations", self.iterations as i64);
        w.field_f64("accuracy_avg", self.accuracy_avg);
        w.field_str("worst_metric", &self.worst_metric);
        w.field_f64("worst_accuracy", self.worst_accuracy);
        w.field_f64("speedup", self.speedup);
        w.field_f64("real_runtime_secs", self.real_runtime_secs);
        w.field_f64("proxy_runtime_secs", self.proxy_runtime_secs);
        w.field_f64("cell_real_runtime_secs", self.cell_real_runtime_secs);
        w.field_f64("cell_proxy_runtime_secs", self.cell_proxy_runtime_secs);
        w.field_int("kernels_run", self.kernels_run as i64);
        w.field_u64_hex("checksum", self.checksum);
        if let Some(p) = &self.population {
            w.field_u64_hex("pop_spec", p.spec_hash);
            w.field_int("pop_rank", i64::from(p.rank));
            w.field_u64_hex("pop_member", p.member_hash);
            w.field_str("pop_family", &p.family);
            w.field_str("pop_label", &p.label);
        }
        for (metric, acc) in &self.accuracies {
            w.field_f64(&format!("acc:{metric}"), *acc);
        }
        w.finish()
    }

    /// A stable digest over the serialized result.
    pub fn digest(&self) -> u64 {
        hash_bytes(self.to_line().as_bytes())
    }

    /// Parses a result from its JSON line.
    pub fn from_line(line: &str) -> Result<CellResult, String> {
        let fields = parse_object(line)?;
        let mut map: HashMap<&str, &JsonScalar> = HashMap::new();
        let mut accuracies = Vec::new();
        for (key, value) in &fields {
            if let Some(metric) = key.strip_prefix("acc:") {
                let acc = value
                    .as_f64()
                    .ok_or_else(|| format!("field `{key}` is not a number"))?;
                accuracies.push((metric.to_string(), acc));
            } else {
                map.insert(key.as_str(), value);
            }
        }
        let get = |key: &str| {
            map.get(key)
                .copied()
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let str_field = |key: &str| -> Result<String, String> {
            Ok(get(key)?
                .as_str()
                .ok_or_else(|| format!("field `{key}` is not a string"))?
                .to_string())
        };
        let hex_field = |key: &str| -> Result<u64, String> {
            let s = str_field(key)?;
            u64::from_str_radix(&s, 16).map_err(|e| format!("field `{key}`: {e}"))
        };
        // Reject negatives instead of `as`-wrapping them into huge
        // unsigned values — a corrupt line must error, not round-trip.
        let uint_field = |key: &str| -> Result<u64, String> {
            let value = get(key)?
                .as_int()
                .ok_or_else(|| format!("field `{key}` is not an integer"))?;
            u64::try_from(value).map_err(|_| format!("field `{key}` is negative: {value}"))
        };
        let f64_field = |key: &str| -> Result<f64, String> {
            get(key)?
                .as_f64()
                .ok_or_else(|| format!("field `{key}` is not a number"))
        };
        Ok(CellResult {
            fingerprint: hex_field("fingerprint")?,
            version: u32::try_from(uint_field("version")?)
                .map_err(|_| "field `version` exceeds u32".to_string())?,
            workload: str_field("workload")?.parse::<WorkloadKind>()?,
            framework: str_field("framework")?.parse::<Framework>()?,
            cluster: str_field("cluster")?,
            architecture: str_field("architecture")?,
            tuning_cluster: str_field("tuning_cluster")?,
            elements: uint_field("elements")? as usize,
            base_seed: hex_field("base_seed")?,
            seed: hex_field("seed")?,
            qualified: get("qualified")?
                .as_bool()
                .ok_or("field `qualified` is not a bool")?,
            iterations: uint_field("iterations")? as usize,
            accuracy_avg: f64_field("accuracy_avg")?,
            worst_metric: str_field("worst_metric")?,
            worst_accuracy: f64_field("worst_accuracy")?,
            speedup: f64_field("speedup")?,
            real_runtime_secs: f64_field("real_runtime_secs")?,
            proxy_runtime_secs: f64_field("proxy_runtime_secs")?,
            cell_real_runtime_secs: f64_field("cell_real_runtime_secs")?,
            cell_proxy_runtime_secs: f64_field("cell_proxy_runtime_secs")?,
            kernels_run: uint_field("kernels_run")? as usize,
            checksum: hex_field("checksum")?,
            accuracies,
            // Population fields travel as a group: a line either has all
            // five or none (absence = a named-workload cell).
            population: if map.contains_key("pop_spec") {
                Some(PopulationResult {
                    spec_hash: hex_field("pop_spec")?,
                    rank: u32::try_from(uint_field("pop_rank")?)
                        .map_err(|_| "field `pop_rank` exceeds u32".to_string())?,
                    member_hash: hex_field("pop_member")?,
                    family: str_field("pop_family")?,
                    label: str_field("pop_label")?,
                })
            } else {
                None
            },
        })
    }
}

/// Reads a JSON-lines campaign report / store file into its records.
/// Blank lines are skipped; a malformed line is an error (a corrupt store
/// must not silently shrink a baseline).
pub fn read_records(path: &Path) -> Result<Vec<CellResult>, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
        if line.trim().is_empty() {
            continue;
        }
        records.push(
            CellResult::from_line(&line)
                .map_err(|e| format!("{} line {}: {e}", path.display(), idx + 1))?,
        );
    }
    Ok(records)
}

/// A malformed final line found (and discarded) while loading a store
/// file — the footprint of a crash or kill mid-append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// 1-based line number of the discarded line.
    pub line: usize,
    /// Why the line did not parse.
    pub error: String,
    /// Bytes of the torn tail (from the end of the last good line to
    /// end-of-file).
    pub discarded_bytes: u64,
}

/// The outcome of loading a store file with torn-tail recovery.
#[derive(Debug)]
pub struct LoadedRecords {
    /// The successfully parsed records, in file order.
    pub records: Vec<CellResult>,
    /// Byte offset of each record's line start, index-aligned with
    /// [`LoadedRecords::records`] — the sidecar index of a sharded store
    /// is built from these.
    pub offsets: Vec<u64>,
    /// FNV digest of each record's serialized line (newline excluded),
    /// index-aligned with [`LoadedRecords::records`].
    pub digests: Vec<u64>,
    /// Length in bytes of the valid prefix (every parsed record plus its
    /// newline, plus any interior blank lines).  Truncating the file to
    /// this length removes a torn tail.
    pub valid_len: u64,
    /// Whether the last *valid* line is missing its trailing newline
    /// (a tear that landed between the payload and the `\n`).  Appending
    /// to the file without fixing this would glue two records together.
    pub missing_newline: bool,
    /// The discarded torn tail, if the final line was malformed.
    pub torn_tail: Option<TornTail>,
}

/// Loads a store file, recovering from a torn *final* line: a crash or
/// kill mid-append leaves a partial last line, and refusing to open the
/// store forever over it would brick every later run.  The torn tail is
/// reported (so [`ResultStore::open`] can truncate it away with a
/// warning); a malformed line in the *interior* of the file is still a
/// hard error — that is corruption, not a tear.
pub fn load_records_recovering(path: &Path) -> Result<LoadedRecords, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut reader = BufReader::new(file);
    // Split into raw byte chunks first so "is this the final line?" is
    // known when a parse fails.
    let mut chunks: Vec<Vec<u8>> = Vec::new();
    loop {
        let mut chunk = Vec::new();
        let n = reader
            .read_until(b'\n', &mut chunk)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if n == 0 {
            break;
        }
        chunks.push(chunk);
    }
    let is_blank = |chunk: &[u8]| chunk.iter().all(|b| b.is_ascii_whitespace());
    let last_content = chunks.iter().rposition(|c| !is_blank(c));

    let mut loaded = LoadedRecords {
        records: Vec::new(),
        offsets: Vec::new(),
        digests: Vec::new(),
        valid_len: 0,
        missing_newline: false,
        torn_tail: None,
    };
    let mut offset = 0u64;
    for (idx, chunk) in chunks.iter().enumerate() {
        let end = offset + chunk.len() as u64;
        if is_blank(chunk) {
            loaded.valid_len = end;
            loaded.missing_newline = false;
            offset = end;
            continue;
        }
        let payload = {
            let mut bytes: &[u8] = chunk;
            while bytes.last().is_some_and(|b| matches!(b, b'\n' | b'\r')) {
                bytes = &bytes[..bytes.len() - 1];
            }
            bytes
        };
        let parsed = std::str::from_utf8(payload)
            .map_err(|e| format!("invalid UTF-8: {e}"))
            .and_then(CellResult::from_line);
        match parsed {
            Ok(record) => {
                loaded.records.push(record);
                loaded.offsets.push(offset);
                loaded.digests.push(hash_bytes(payload));
                loaded.valid_len = end;
                loaded.missing_newline = !chunk.ends_with(b"\n");
                offset = end;
            }
            Err(error) if Some(idx) == last_content => {
                loaded.torn_tail = Some(TornTail {
                    line: idx + 1,
                    error,
                    discarded_bytes: chunks[idx..].iter().map(|c| c.len() as u64).sum(),
                });
                break;
            }
            Err(error) => {
                return Err(format!("{} line {}: {error}", path.display(), idx + 1));
            }
        }
    }
    Ok(loaded)
}

/// Outcome of a [`compact_store`] rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Records surviving compaction (one per distinct fingerprint).
    pub kept: usize,
    /// Records dropped: appends shadowed by an earlier record with the
    /// same fingerprint (first wins, matching [`ResultStore`] load
    /// semantics), plus a torn final line if the file had one.
    pub dropped: usize,
}

/// Rewrites a JSONL store file, dropping every record shadowed by
/// first-wins fingerprint dedup (the footprint of racing workers or of
/// concatenated store files), interior blank lines, and a torn final
/// line.  Surviving records keep first-appearance order, so the
/// compacted file loads to exactly the index the original did and
/// parses with the strict [`read_records`] reader.
///
/// The rewrite goes through a temporary sibling file and an atomic
/// rename: a crash mid-compaction leaves either the old or the new
/// file, never a half-written one.  Do not compact a file another
/// process has open for appending — the rename strands that process's
/// file handle on the replaced inode.
pub fn compact_store(path: &Path) -> Result<CompactionStats, String> {
    let loaded = load_records_recovering(path)?;
    let torn = usize::from(loaded.torn_tail.is_some());
    let total = loaded.records.len();
    let mut seen = std::collections::HashSet::with_capacity(total);
    let mut out = String::new();
    let mut kept = 0usize;
    for record in loaded.records {
        if seen.insert(record.fingerprint) {
            out.push_str(&record.to_line());
            out.push('\n');
            kept += 1;
        }
    }
    let tmp = path.with_extension("jsonl.compact-tmp");
    std::fs::write(&tmp, out).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        format!("{} -> {}: {e}", tmp.display(), path.display())
    })?;
    Ok(CompactionStats {
        kept,
        dropped: total - kept + torn,
    })
}

/// Hit/miss counters of a [`ResultStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that fell through to a fresh computation.
    pub misses: u64,
    /// Results currently held.
    pub entries: usize,
    /// Appends that failed at the I/O layer (after the first failure the
    /// store degrades to in-memory, so this is 0 or 1 in practice).
    pub persist_errors: u64,
}

impl StoreStats {
    /// Total lookups answered (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the store, or `None` when there
    /// were no lookups at all.  An idle store has no hit ratio — gates
    /// must treat the zero-lookup case explicitly instead of reading the
    /// `0.0` that [`StoreStats::hit_ratio`] reports for it.
    pub fn try_hit_ratio(&self) -> Option<f64> {
        let total = self.lookups();
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Fraction of lookups served from the store (`0.0` when idle — use
    /// [`StoreStats::try_hit_ratio`] anywhere a zero-lookup run must not
    /// be confused with an all-miss run).
    pub fn hit_ratio(&self) -> f64 {
        self.try_hit_ratio().unwrap_or(0.0)
    }
}

/// Default segment count for sharded stores: matches the default
/// campaign worker width, so eight concurrent writers usually land on
/// eight different segment locks.
pub const DEFAULT_STORE_SHARDS: usize = 8;

/// Sidecar index file name inside a sharded store directory.
pub const SIDECAR_FILE: &str = "index.jsonl";

/// Manifest file name inside a sharded store directory (records the
/// segment count; written once at creation and never rewritten).
pub const META_FILE: &str = "store-meta.json";

/// Sidecar/manifest format version.
const STORE_LAYOUT_VERSION: i64 = 1;

/// The segment a fingerprint routes to in a `shards`-segment store.
/// Pure and deterministic (`fingerprint % shards`): the same fingerprint
/// always lands in the same segment, so per-shard first-wins dedup is
/// exactly global first-wins dedup.
pub fn shard_for(fingerprint: u64, shards: usize) -> usize {
    (fingerprint % shards.max(1) as u64) as usize
}

/// Path of segment `k` inside a sharded store directory.
pub fn segment_path(dir: &Path, segment: usize) -> PathBuf {
    dir.join(format!("segment-{segment}.jsonl"))
}

/// Reads the shard count from a sharded store directory's manifest.
pub fn read_store_meta(dir: &Path) -> Result<usize, String> {
    let path = dir.join(META_FILE);
    let source = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let fields = parse_object(source.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
    let shards = fields
        .iter()
        .find(|(k, _)| k == "shards")
        .and_then(|(_, v)| v.as_int())
        .ok_or_else(|| format!("{}: missing `shards` field", path.display()))?;
    usize::try_from(shards)
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("{}: bad shard count {shards}", path.display()))
}

fn write_store_meta(dir: &Path, shards: usize) -> Result<(), String> {
    let mut w = ObjectWriter::new();
    w.field_int("version", STORE_LAYOUT_VERSION);
    w.field_int("shards", shards as i64);
    let path = dir.join(META_FILE);
    std::fs::write(&path, format!("{}\n", w.finish()))
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// One entry of the in-memory per-shard index.
#[derive(Debug)]
enum Slot {
    /// Record held in memory (fresh insert, scan load, or lazy load).
    /// `offset` is the record's byte offset in its segment (`None` when
    /// the store is unpersisted or the append was degraded away);
    /// `digest` is the FNV hash of the serialized line.
    Loaded {
        record: Arc<CellResult>,
        offset: Option<u64>,
        digest: u64,
    },
    /// Known from the sidecar index but not yet read from the segment —
    /// this is what makes a warm `open` cheap: the record's ~0.7 kB JSON
    /// line is only parsed if some campaign actually asks for it.
    OnDisk { offset: u64, digest: u64 },
}

#[derive(Debug)]
struct ShardWriter {
    file: BufWriter<File>,
    /// Byte length of the segment *including* buffered-but-unflushed
    /// appends — the offset the next record lands at.
    offset: u64,
    /// Legacy single-file stores keep their pre-shard durability
    /// contract (serialize, write and flush inside every insert);
    /// sharded segments defer all of that to [`ResultStore::sync`].
    flush_each: bool,
    /// Records accepted but not yet serialized or written (sharded
    /// stores only).  `insert` just parks the `Arc` here; the next
    /// [`ResultStore::sync`] serializes, appends and flushes the whole
    /// batch — that is what keeps the insert critical path off the
    /// serialization and syscall costs.
    pending: Vec<Arc<CellResult>>,
}

/// One shard: an index partition plus its own segment writer, so
/// concurrent campaign workers appending to different shards share no
/// lock at all.
#[derive(Debug)]
struct Shard {
    index: Mutex<HashMap<u64, Slot>>,
    writer: Option<Mutex<ShardWriter>>,
    path: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    persist_errors: AtomicU64,
}

impl Shard {
    fn memory() -> Self {
        Self {
            index: Mutex::new(HashMap::new()),
            writer: None,
            path: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
        }
    }

    fn lock_index(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Slot>> {
        // A poisoned index lock is recovered, not propagated: the index
        // is a content-addressed map filled first-wins, so whatever a
        // panicking thread managed to insert is a complete, valid record.
        self.index.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// On-disk layout of a [`ResultStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// No backing files; results live for the process only.
    Memory,
    /// The pre-PR-9 format: one append-only JSONL file, one shard, a
    /// flush per record.  Kept readable (and writable) forever.
    LegacyFile,
    /// A directory of `segment-<k>.jsonl` files plus the sidecar index.
    Sharded,
}

/// Everything a segment scan recovers for one shard.
struct SegmentLoad {
    index: HashMap<u64, Slot>,
    recovered: Option<TornTail>,
}

/// A content-addressed map from cell fingerprints to results, backed by
/// either a legacy single JSONL file or a sharded store directory
/// (`segment-<k>.jsonl` segments, shard = `fingerprint % N`, plus a
/// sidecar `index.jsonl` that makes reopening O(index) instead of
/// O(records)).
///
/// Thread-safe: campaign workers probe and fill it concurrently, and in
/// the sharded layout writers on different shards never contend.  On a
/// fingerprint collision between an existing and a new entry the existing
/// one wins — results are deterministic functions of their address, so
/// the two are identical anyway.
#[derive(Debug)]
pub struct ResultStore {
    shards: Vec<Shard>,
    layout: Layout,
    /// The backing file (legacy) or store directory (sharded).
    path: Option<PathBuf>,
    /// Set after the first failed append: the store keeps serving (and
    /// accepting) results in memory but stops touching the sick files.
    persist_disabled: AtomicBool,
    persist_error: Mutex<Option<String>>,
    recovered_tails: Vec<TornTail>,
    /// Whether `open` was served by the sidecar index (telemetry for the
    /// open-latency bench and the staleness tests).
    opened_from_sidecar: bool,
    /// Whether the sidecar no longer reflects the segments (fresh
    /// appends, or an open that had to fall back to a scan).  `sync`
    /// rewrites the sidecar only when this is set.
    sidecar_stale: AtomicBool,
}

impl ResultStore {
    /// An unpersisted store (results live for the process only), sharded
    /// [`DEFAULT_STORE_SHARDS`] ways so concurrent lookups and inserts
    /// spread over independent locks.
    pub fn in_memory() -> Self {
        Self::in_memory_with_shards(DEFAULT_STORE_SHARDS)
    }

    /// An unpersisted store with an explicit shard count (≥ 1; `shards =
    /// 1` reproduces the old single-lock behavior, which the concurrency
    /// benches use as their baseline).
    pub fn in_memory_with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Shard::memory()).collect(),
            layout: Layout::Memory,
            path: None,
            persist_disabled: AtomicBool::new(false),
            persist_error: Mutex::new(None),
            recovered_tails: Vec::new(),
            opened_from_sidecar: false,
            sidecar_stale: AtomicBool::new(false),
        }
    }

    /// Opens (or creates) a persistent store at `path`, auto-detecting
    /// the layout: an existing directory opens as a sharded store (its
    /// manifest fixes the shard count), anything else as a legacy
    /// single-file store.  Use [`ResultStore::open_sharded`] to create a
    /// sharded store or migrate a legacy file into one.
    ///
    /// A malformed *final* line (the footprint of a crash mid-append) is
    /// truncated away with a warning instead of bricking the store;
    /// malformed interior lines are still hard errors.  See
    /// [`ResultStore::recovered_tails`] for the discarded tails, if any.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, String> {
        let path = path.into();
        if path.is_dir() {
            Self::open_dir(path, None, None)
        } else {
            Self::open_legacy(path)
        }
    }

    /// Opens (or creates) a sharded store at `path` with `shards`
    /// segments.  See [`ResultStore::open_sharded_with_pool`].
    pub fn open_sharded(path: impl Into<PathBuf>, shards: usize) -> Result<Self, String> {
        Self::open_sharded_with_pool(path, shards, None)
    }

    /// Opens (or creates) a sharded store at `path` with `shards`
    /// segments, scanning segments on `pool` when the sidecar index is
    /// missing or stale (one scan task per segment; without a pool the
    /// scan uses scoped OS threads).
    ///
    /// * `path` missing — a fresh store directory is created.
    /// * `path` is a legacy single-file store — it is transparently
    ///   migrated in place: records are routed to their segments, the
    ///   sidecar is written, and the original file is removed (a crash
    ///   mid-migration leaves either the legacy file or the directory,
    ///   never neither).
    /// * `path` is an existing sharded store — its manifest's shard
    ///   count wins; a differing `shards` request is noted and ignored
    ///   (re-sharding is a [`compact_sharded_store`] job, not an open).
    pub fn open_sharded_with_pool(
        path: impl Into<PathBuf>,
        shards: usize,
        pool: Option<&WorkerPool>,
    ) -> Result<Self, String> {
        let path = path.into();
        if shards == 0 {
            return Err("store shard count must be at least 1".to_string());
        }
        if path.is_file() {
            migrate_legacy_store(&path, shards)?;
        }
        Self::open_dir(path, Some(shards), pool)
    }

    /// The legacy single-file layout: one shard over one append-only
    /// JSONL file, flushing every record (the pre-shard durability
    /// contract — a legacy store is always byte-complete on disk).
    fn open_legacy(path: PathBuf) -> Result<Self, String> {
        let mut index = HashMap::new();
        let mut recovered_tails = Vec::new();
        if path.exists() {
            let loaded = load_segment(&path, &mut recovered_tails)?;
            index = loaded.index;
            debug_assert!(loaded.recovered.is_none() || !recovered_tails.is_empty());
        } else if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("{}: {e}", parent.display()))?;
            }
        }
        let writer = open_segment_writer(&path, true)?;
        let shard = Shard {
            index: Mutex::new(index),
            writer: Some(Mutex::new(writer)),
            path: Some(path.clone()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
        };
        Ok(Self {
            shards: vec![shard],
            layout: Layout::LegacyFile,
            path: Some(path),
            persist_disabled: AtomicBool::new(false),
            persist_error: Mutex::new(None),
            recovered_tails,
            opened_from_sidecar: false,
            sidecar_stale: AtomicBool::new(false),
        })
    }

    /// Opens a sharded store directory, creating it if absent.  The
    /// sidecar index is used when it is present and consistent with the
    /// segments; otherwise every segment is scanned (in parallel) with
    /// per-segment torn-tail recovery.
    fn open_dir(
        dir: PathBuf,
        requested_shards: Option<usize>,
        pool: Option<&WorkerPool>,
    ) -> Result<Self, String> {
        let shards = if dir.is_dir() {
            let existing = read_store_meta(&dir)?;
            if let Some(requested) = requested_shards {
                if requested != existing {
                    eprintln!(
                        "note: result store {} already has {existing} segment(s); \
                         ignoring --store-shards {requested} (re-shard via compaction)",
                        dir.display()
                    );
                }
            }
            existing
        } else {
            let shards = requested_shards.unwrap_or(DEFAULT_STORE_SHARDS);
            std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            write_store_meta(&dir, shards)?;
            for k in 0..shards {
                let path = segment_path(&dir, k);
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
            shards
        };

        let mut recovered_tails = Vec::new();
        let (indexes, opened_from_sidecar) = match load_sidecar(&dir, shards)? {
            Some(indexes) => (indexes, true),
            None => {
                let loads = scan_segments(&dir, shards, pool)?;
                let mut indexes = Vec::with_capacity(shards);
                for load in loads {
                    if let Some(tail) = load.recovered {
                        recovered_tails.push(tail);
                    }
                    indexes.push(load.index);
                }
                (indexes, false)
            }
        };

        let mut store_shards = Vec::with_capacity(shards);
        for (k, index) in indexes.into_iter().enumerate() {
            let path = segment_path(&dir, k);
            let writer = open_segment_writer(&path, false)?;
            store_shards.push(Shard {
                index: Mutex::new(index),
                writer: Some(Mutex::new(writer)),
                path: Some(path),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                persist_errors: AtomicU64::new(0),
            });
        }
        Ok(Self {
            shards: store_shards,
            layout: Layout::Sharded,
            path: Some(dir),
            persist_disabled: AtomicBool::new(false),
            persist_error: Mutex::new(None),
            recovered_tails,
            opened_from_sidecar,
            // A scan-opened store heals its sidecar at the next sync.
            sidecar_stale: AtomicBool::new(!opened_from_sidecar),
        })
    }

    /// Number of shards (1 for in-memory-default… no: legacy and
    /// single-shard stores report 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the store uses the sharded directory layout.
    pub fn is_sharded(&self) -> bool {
        self.layout == Layout::Sharded
    }

    /// Whether `open` was served by the sidecar index (no segment
    /// replay).  Always `false` for legacy and in-memory stores.
    pub fn opened_from_sidecar(&self) -> bool {
        self.opened_from_sidecar
    }

    /// The first torn tail `open` truncated away, if any backing segment
    /// had one.
    pub fn recovered_tail(&self) -> Option<&TornTail> {
        self.recovered_tails.first()
    }

    /// Every torn tail `open` truncated away, one per affected segment.
    pub fn recovered_tails(&self) -> &[TornTail] {
        &self.recovered_tails
    }

    /// The first append error, if persistence has degraded to in-memory.
    pub fn persist_error(&self) -> Option<String> {
        self.persist_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The backing file (legacy) or store directory (sharded), if the
    /// store persists.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up a result by fingerprint, counting a hit or miss on the
    /// fingerprint's shard.  The record is cloned *outside* the shard's
    /// index lock (the index holds `Arc`s), so a large result never
    /// extends the critical section concurrent inserters wait on.
    pub fn lookup(&self, fingerprint: u64) -> Option<CellResult> {
        let shard_idx = shard_for(fingerprint, self.shards.len());
        let shard = &self.shards[shard_idx];
        match self.slot_record(shard_idx, fingerprint) {
            Some(record) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some((*record).clone())
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Resolves a fingerprint to its record, lazily reading sidecar-only
    /// entries from their segment (outside the index lock — two threads
    /// racing to load the same cold entry both parse identical bytes).
    fn slot_record(&self, shard_idx: usize, fingerprint: u64) -> Option<Arc<CellResult>> {
        let shard = &self.shards[shard_idx];
        let (offset, digest) = {
            let index = shard.lock_index();
            match index.get(&fingerprint) {
                None => return None,
                Some(Slot::Loaded { record, .. }) => return Some(Arc::clone(record)),
                Some(Slot::OnDisk { offset, digest }) => (*offset, *digest),
            }
        };
        match self.read_segment_record(shard_idx, fingerprint, offset, digest) {
            Ok(record) => {
                let record = Arc::new(record);
                shard.lock_index().insert(
                    fingerprint,
                    Slot::Loaded {
                        record: Arc::clone(&record),
                        offset: Some(offset),
                        digest,
                    },
                );
                Some(record)
            }
            Err(error) => {
                // A sidecar entry that does not match its segment bytes:
                // the sidecar lied (manual edits, a replaced segment).
                // Rescan the one affected segment and serve from truth.
                eprintln!(
                    "warning: result store {}: sidecar entry {fingerprint:016x} \
                     does not match segment {shard_idx} ({error}); rescanning the segment",
                    self.path.as_deref().unwrap_or(Path::new("?")).display()
                );
                self.rescan_shard(shard_idx);
                let index = shard.lock_index();
                match index.get(&fingerprint) {
                    Some(Slot::Loaded { record, .. }) => Some(Arc::clone(record)),
                    _ => None,
                }
            }
        }
    }

    /// Reads and verifies one record at a known segment offset.
    fn read_segment_record(
        &self,
        shard_idx: usize,
        fingerprint: u64,
        offset: u64,
        digest: u64,
    ) -> Result<CellResult, String> {
        let path = self.shards[shard_idx]
            .path
            .as_deref()
            .ok_or("no backing segment")?;
        let mut file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| format!("{}: seek {offset}: {e}", path.display()))?;
        let mut line = Vec::new();
        BufReader::new(file)
            .read_until(b'\n', &mut line)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        while line.last().is_some_and(|b| matches!(b, b'\n' | b'\r')) {
            line.pop();
        }
        if hash_bytes(&line) != digest {
            return Err(format!("digest mismatch at offset {offset}"));
        }
        let text = std::str::from_utf8(&line).map_err(|e| format!("invalid UTF-8: {e}"))?;
        let record = CellResult::from_line(text)?;
        if record.fingerprint != fingerprint {
            return Err(format!(
                "fingerprint mismatch at offset {offset}: found {:016x}",
                record.fingerprint
            ));
        }
        Ok(record)
    }

    /// Rebuilds one shard's index from its segment file, keeping every
    /// in-memory (`Loaded`) entry — those are this session's inserts,
    /// possibly still buffered in the writer, and must not be lost.
    fn rescan_shard(&self, shard_idx: usize) {
        let shard = &self.shards[shard_idx];
        let Some(path) = shard.path.clone() else {
            return;
        };
        // Write out anything still pending or buffered so the reload
        // sees the complete segment (a drain failure degrades the store
        // and leaves the remainder served from memory).
        let _ = self.drain_shard(shard_idx);
        let mut tails = Vec::new();
        match load_segment(&path, &mut tails) {
            Ok(load) => {
                let mut index = shard.lock_index();
                let mut rebuilt = load.index;
                for (fingerprint, slot) in index.drain() {
                    if matches!(slot, Slot::Loaded { .. }) {
                        rebuilt.insert(fingerprint, slot);
                    }
                }
                *index = rebuilt;
                self.sidecar_stale.store(true, Ordering::Release);
            }
            Err(error) => {
                eprintln!(
                    "warning: result store segment {} failed to rescan: {error}",
                    path.display()
                );
            }
        }
    }

    /// Stores a result under its fingerprint, appending it to its
    /// shard's segment.  A result already present under the same
    /// fingerprint is kept and not re-appended.
    ///
    /// Sharded stores defer serialization and the append itself to
    /// [`ResultStore::sync`] (one batch per campaign): the insert
    /// critical path is a shard-index insert plus parking the `Arc` on
    /// the shard's pending queue, so concurrent writers spend no time
    /// on JSON formatting, digests or syscalls.  Legacy single-file
    /// stores keep their pre-shard contract — serialize, write and
    /// flush every record inside the insert.  A failed append (full
    /// disk, EIO, revoked handle) must not kill a batch run or a
    /// daemon: the error is recorded, a warning is printed and the
    /// store degrades to in-memory — the in-memory insert always
    /// succeeds.  Returns the persistence error, if this append hit
    /// one (deferred appends surface theirs at `sync`).
    pub fn insert(&self, record: CellResult) -> Result<(), String> {
        let shard_idx = shard_for(record.fingerprint, self.shards.len());
        let shard = &self.shards[shard_idx];
        let fingerprint = record.fingerprint;
        let flush_each = match &shard.writer {
            Some(writer) => {
                writer
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .flush_each
            }
            None => false,
        };
        // Legacy stores serialize eagerly — outside every lock; the
        // line is both the bytes to append and the sidecar digest
        // source.  Sharded stores skip this entirely until `sync`.
        let eager = if flush_each {
            let line = record.to_line();
            let digest = hash_bytes(line.as_bytes());
            Some((line, digest))
        } else {
            None
        };
        let record = Arc::new(record);
        let fresh = {
            let mut index = shard.lock_index();
            match index.entry(fingerprint) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(Slot::Loaded {
                        record: Arc::clone(&record),
                        offset: None,
                        digest: eager.as_ref().map_or(0, |(_, digest)| *digest),
                    });
                    true
                }
            }
        };
        if !fresh || self.persist_disabled.load(Ordering::Acquire) {
            return Ok(());
        }
        let Some(writer) = &shard.writer else {
            return Ok(());
        };
        let Some((line, _)) = eager else {
            // Sharded: park the record; `sync` serializes and appends
            // the whole batch with one flush per segment.
            writer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pending
                .push(record);
            self.sidecar_stale.store(true, Ordering::Release);
            return Ok(());
        };
        let appended = {
            let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
            let offset = w.offset;
            let result = w
                .file
                .write_all(line.as_bytes())
                .and_then(|()| w.file.write_all(b"\n"))
                .and_then(|()| w.file.flush());
            match result {
                Ok(()) => {
                    w.offset = offset + line.len() as u64 + 1;
                    Ok(offset)
                }
                Err(e) => Err(e),
            }
        };
        match appended {
            Ok(offset) => {
                self.sidecar_stale.store(true, Ordering::Release);
                if let Some(Slot::Loaded {
                    offset: slot_offset,
                    ..
                }) = shard.lock_index().get_mut(&fingerprint)
                {
                    *slot_offset = Some(offset);
                }
                Ok(())
            }
            Err(e) => Err(self.record_persist_failure(shard_idx, &e.to_string())),
        }
    }

    /// Registers a persistence failure on a shard: counts it, degrades
    /// the whole store to in-memory (first failure wins) and returns the
    /// formatted message.
    fn record_persist_failure(&self, shard_idx: usize, error: &str) -> String {
        let shard = &self.shards[shard_idx];
        let message = match shard.path.as_deref().or(self.path.as_deref()) {
            Some(path) => format!("{}: {error}", path.display()),
            None => error.to_string(),
        };
        shard.persist_errors.fetch_add(1, Ordering::Relaxed);
        if !self.persist_disabled.swap(true, Ordering::AcqRel) {
            eprintln!(
                "warning: result store append failed ({message}); \
                 degrading to in-memory for the rest of this process"
            );
            *self
                .persist_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(message.clone());
        }
        message
    }

    /// Drains one shard's pending queue — serializes each parked
    /// record, appends it, backfills its slot's offset and digest —
    /// then flushes the segment writer.  This is where a sharded
    /// store's per-record serialization, digest and I/O costs actually
    /// land, amortized to one batch per [`ResultStore::sync`].
    fn drain_shard(&self, shard_idx: usize) -> Result<(), String> {
        let shard = &self.shards[shard_idx];
        let Some(writer) = &shard.writer else {
            return Ok(());
        };
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let pending = std::mem::take(&mut w.pending);
        let mut written: Vec<(u64, u64, u64)> = Vec::with_capacity(pending.len());
        let mut failed = None;
        for record in pending {
            let line = record.to_line();
            let digest = hash_bytes(line.as_bytes());
            let offset = w.offset;
            let result = w
                .file
                .write_all(line.as_bytes())
                .and_then(|()| w.file.write_all(b"\n"));
            match result {
                Ok(()) => {
                    w.offset = offset + line.len() as u64 + 1;
                    written.push((record.fingerprint, offset, digest));
                }
                Err(e) => {
                    // Undrained records stay `Loaded` with no offset:
                    // served from memory, excluded from the sidecar.
                    failed = Some(e.to_string());
                    break;
                }
            }
        }
        if failed.is_none() {
            if let Err(e) = w.file.flush() {
                failed = Some(e.to_string());
            }
        }
        drop(w);
        if !written.is_empty() {
            let mut index = shard.lock_index();
            for (fingerprint, offset, digest) in written {
                if let Some(Slot::Loaded {
                    offset: slot_offset,
                    digest: slot_digest,
                    ..
                }) = index.get_mut(&fingerprint)
                {
                    *slot_offset = Some(offset);
                    *slot_digest = digest;
                }
            }
        }
        match failed {
            Some(error) => Err(self.record_persist_failure(shard_idx, &error)),
            None => Ok(()),
        }
    }

    /// Serializes, appends and flushes every shard's pending records
    /// and, for sharded stores, atomically rewrites the sidecar index
    /// (tmp + rename) so the next `open` skips the segment replay.
    /// Called by the campaign runner at the end of every campaign and
    /// by `Drop`; safe (and cheap) to call at any time.
    pub fn sync(&self) -> Result<(), String> {
        if self.persist_disabled.load(Ordering::Acquire) {
            return Ok(());
        }
        for shard_idx in 0..self.shards.len() {
            self.drain_shard(shard_idx)?;
        }
        if self.layout == Layout::Sharded && self.sidecar_stale.load(Ordering::Acquire) {
            let dir = self.path.as_deref().expect("sharded stores have a path");
            self.write_sidecar(dir).map_err(|e| {
                let message = format!("sidecar index: {e}");
                eprintln!(
                    "warning: result store {}: {message} — the next open will \
                     fall back to a segment scan",
                    dir.display()
                );
                message
            })?;
            self.sidecar_stale.store(false, Ordering::Release);
        }
        Ok(())
    }

    /// Writes the sidecar index: a header, one length line per segment
    /// (the staleness check), and one entry per persisted record, sorted
    /// by (segment, offset) so rewrites are deterministic.
    fn write_sidecar(&self, dir: &Path) -> Result<(), String> {
        let mut lengths = Vec::with_capacity(self.shards.len());
        let mut entries: Vec<(usize, u64, u64, u64)> = Vec::new();
        for (k, shard) in self.shards.iter().enumerate() {
            let length = match &shard.writer {
                Some(writer) => writer.lock().unwrap_or_else(PoisonError::into_inner).offset,
                None => 0,
            };
            lengths.push(length);
            let index = shard.lock_index();
            for (fingerprint, slot) in index.iter() {
                match slot {
                    Slot::Loaded {
                        offset: Some(offset),
                        digest,
                        ..
                    }
                    | Slot::OnDisk { offset, digest } => {
                        entries.push((k, *offset, *fingerprint, *digest));
                    }
                    // Never persisted (append degraded away): the record
                    // is not in any segment, so it must not be indexed.
                    Slot::Loaded { offset: None, .. } => {}
                }
            }
        }
        entries.sort_unstable();
        let mut out = String::new();
        let mut header = ObjectWriter::new();
        header.field_str("record", "header");
        header.field_int("version", STORE_LAYOUT_VERSION);
        header.field_int("shards", self.shards.len() as i64);
        header.field_int("entries", entries.len() as i64);
        out.push_str(&header.finish());
        out.push('\n');
        for (k, length) in lengths.iter().enumerate() {
            let mut w = ObjectWriter::new();
            w.field_str("record", "segment");
            w.field_int("segment", k as i64);
            w.field_int("bytes", *length as i64);
            out.push_str(&w.finish());
            out.push('\n');
        }
        for (segment, offset, fingerprint, digest) in entries {
            out.push_str(&sidecar_entry_line(fingerprint, segment, offset, digest));
            out.push('\n');
        }
        let tmp = dir.join(format!("{SIDECAR_FILE}.tmp"));
        std::fs::write(&tmp, out).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, dir.join(SIDECAR_FILE)).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            format!("renaming {}: {e}", tmp.display())
        })
    }

    /// Snapshot of the aggregate hit/miss counters and entry count,
    /// summed over every shard.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for stats in self.shard_stats() {
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
            total.persist_errors += stats.persist_errors;
        }
        total
    }

    /// Per-shard counter snapshots, index-aligned with the segment
    /// files; the aggregate [`ResultStore::stats`] is their sum.
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards
            .iter()
            .map(|shard| StoreStats {
                hits: shard.hits.load(Ordering::Relaxed),
                misses: shard.misses.load(Ordering::Relaxed),
                entries: shard.lock_index().len(),
                persist_errors: shard.persist_errors.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl Drop for ResultStore {
    fn drop(&mut self) {
        // Close = flush + sidecar rebuild.  Failures already degraded
        // and warned inside sync; a drop must never panic over them.
        let _ = self.sync();
    }
}

/// Formats one sidecar entry line.
fn sidecar_entry_line(fingerprint: u64, segment: usize, offset: u64, digest: u64) -> String {
    let mut w = ObjectWriter::new();
    w.field_str("record", "entry");
    w.field_u64_hex("fingerprint", fingerprint);
    w.field_int("segment", segment as i64);
    w.field_int("offset", offset as i64);
    w.field_u64_hex("digest", digest);
    w.finish()
}

/// Opens a segment (or legacy) file for appending, returning its writer
/// positioned at the current end.
fn open_segment_writer(path: &Path, flush_each: bool) -> Result<ShardWriter, String> {
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let offset = file
        .metadata()
        .map_err(|e| format!("{}: {e}", path.display()))?
        .len();
    Ok(ShardWriter {
        file: BufWriter::new(file),
        offset,
        flush_each,
        pending: Vec::new(),
    })
}

/// Loads one segment with torn-tail recovery applied *to the file*:
/// a torn final line is truncated away (with a warning), a torn-off
/// final newline is completed.  Recovered tails are appended to `tails`.
fn load_segment(path: &Path, tails: &mut Vec<TornTail>) -> Result<SegmentLoad, String> {
    if !path.exists() {
        return Ok(SegmentLoad {
            index: HashMap::new(),
            recovered: None,
        });
    }
    let loaded = load_records_recovering(path)?;
    if let Some(tail) = &loaded.torn_tail {
        eprintln!(
            "warning: result store segment {}: discarding torn final line {} \
             ({} bytes; {}) — truncating to the last good record",
            path.display(),
            tail.line,
            tail.discarded_bytes,
            tail.error
        );
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.set_len(loaded.valid_len)
            .map_err(|e| format!("{}: truncating torn tail: {e}", path.display()))?;
    }
    if loaded.missing_newline {
        // The last record is intact but its newline was torn off;
        // complete the line so the next append starts fresh.
        let mut file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.write_all(b"\n")
            .and_then(|()| file.flush())
            .map_err(|e| format!("{}: completing final line: {e}", path.display()))?;
    }
    let mut index = HashMap::with_capacity(loaded.records.len());
    for ((record, offset), digest) in loaded
        .records
        .into_iter()
        .zip(loaded.offsets)
        .zip(loaded.digests)
    {
        index.entry(record.fingerprint).or_insert(Slot::Loaded {
            record: Arc::new(record),
            offset: Some(offset),
            digest,
        });
    }
    let recovered = loaded.torn_tail;
    if let Some(tail) = &recovered {
        tails.push(tail.clone());
    }
    Ok(SegmentLoad { index, recovered })
}

/// Scans every segment of a sharded store — one task per segment, on the
/// shared pool when one is provided, on scoped OS threads otherwise.
fn scan_segments(
    dir: &Path,
    shards: usize,
    pool: Option<&WorkerPool>,
) -> Result<Vec<SegmentLoad>, String> {
    let paths: Vec<PathBuf> = (0..shards).map(|k| segment_path(dir, k)).collect();
    let slots: Vec<OnceLock<Result<SegmentLoad, String>>> =
        (0..shards).map(|_| OnceLock::new()).collect();
    let scan = |k: usize| {
        let mut tails = Vec::new();
        let result = load_segment(&paths[k], &mut tails).map(|mut load| {
            load.recovered = tails.into_iter().next();
            load
        });
        assert!(slots[k].set(result).is_ok(), "segment scanned twice");
    };
    match pool {
        Some(pool) => pool.scope(|scope| {
            for k in 0..shards {
                let scan = &scan;
                scope.spawn(move |_| scan(k));
            }
        }),
        None => std::thread::scope(|s| {
            for k in 0..shards {
                let scan = &scan;
                s.spawn(move || scan(k));
            }
        }),
    }
    let mut loads = Vec::with_capacity(shards);
    for (k, slot) in slots.into_iter().enumerate() {
        loads.push(
            slot.into_inner()
                .expect("every segment was scanned")
                .map_err(|e| format!("segment {k}: {e}"))?,
        );
    }
    Ok(loads)
}

/// Loads the sidecar index of a sharded store, returning per-shard index
/// maps of [`Slot::OnDisk`] entries — or `None` when the sidecar is
/// missing or stale (segment lengths drifted, shard count mismatch, a
/// misrouted entry), in which case the caller falls back to a scan.
fn load_sidecar(dir: &Path, shards: usize) -> Result<Option<Vec<HashMap<u64, Slot>>>, String> {
    let path = dir.join(SIDECAR_FILE);
    let source = match std::fs::read_to_string(&path) {
        Ok(source) => source,
        Err(_) => return Ok(None),
    };
    let mut lines = source.lines().filter(|l| !l.trim().is_empty());
    let Some(header) = lines.next() else {
        return Ok(None);
    };
    let Ok(fields) = parse_object(header) else {
        return Ok(None);
    };
    let field = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_int())
    };
    if field("version") != Some(STORE_LAYOUT_VERSION) || field("shards") != Some(shards as i64) {
        return Ok(None);
    }
    let Some(entry_count) = field("entries").and_then(|n| usize::try_from(n).ok()) else {
        return Ok(None);
    };

    // Staleness check: every segment must be exactly as long as the
    // sidecar remembers — longer means un-indexed appends (a crash
    // before sync), shorter means truncation.  Either way: scan.
    let mut lengths = vec![None::<u64>; shards];
    let mut indexes: Vec<HashMap<u64, Slot>> = (0..shards).map(|_| HashMap::new()).collect();
    let mut entries_seen = 0usize;
    for line in lines {
        let Ok(fields) = parse_object(line) else {
            return Ok(None);
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        match get("record").and_then(|v| v.as_str()) {
            Some("segment") => {
                let (Some(segment), Some(bytes)) = (
                    get("segment").and_then(|v| v.as_int()),
                    get("bytes").and_then(|v| v.as_int()),
                ) else {
                    return Ok(None);
                };
                let Ok(segment) = usize::try_from(segment) else {
                    return Ok(None);
                };
                if segment >= shards || bytes < 0 {
                    return Ok(None);
                }
                lengths[segment] = Some(bytes as u64);
            }
            Some("entry") => {
                let (Some(fingerprint), Some(segment), Some(offset), Some(digest)) = (
                    get("fingerprint")
                        .and_then(|v| v.as_str())
                        .and_then(|s| u64::from_str_radix(s, 16).ok()),
                    get("segment").and_then(|v| v.as_int()),
                    get("offset").and_then(|v| v.as_int()),
                    get("digest")
                        .and_then(|v| v.as_str())
                        .and_then(|s| u64::from_str_radix(s, 16).ok()),
                ) else {
                    return Ok(None);
                };
                let Ok(segment) = usize::try_from(segment) else {
                    return Ok(None);
                };
                // A misrouted entry would be invisible to lookups (which
                // route by fingerprint): reject the whole sidecar.
                if segment != shard_for(fingerprint, shards) || offset < 0 {
                    return Ok(None);
                }
                entries_seen += 1;
                indexes[segment].entry(fingerprint).or_insert(Slot::OnDisk {
                    offset: offset as u64,
                    digest,
                });
            }
            _ => return Ok(None),
        }
    }
    if entries_seen != entry_count {
        return Ok(None);
    }
    for (k, expected) in lengths.iter().enumerate() {
        let Some(expected) = expected else {
            return Ok(None);
        };
        let actual = std::fs::metadata(segment_path(dir, k))
            .map(|m| m.len())
            .unwrap_or(u64::MAX);
        if actual != *expected {
            return Ok(None);
        }
    }
    Ok(Some(indexes))
}

/// Migrates a legacy single-file store into the sharded layout, in
/// place: records are routed to `segment-<k>.jsonl` by fingerprint, the
/// manifest and sidecar are written, and the legacy file is removed.
/// Crash-safe by construction — the legacy file is first renamed aside,
/// so an interrupted migration leaves either the renamed legacy file or
/// the finished directory, never a half-written mix at `path`.
fn migrate_legacy_store(path: &Path, shards: usize) -> Result<(), String> {
    let loaded = load_records_recovering(path)?;
    if let Some(tail) = &loaded.torn_tail {
        eprintln!(
            "warning: result store {}: dropping torn final line {} ({} bytes; {}) \
             during migration to {} segment(s)",
            path.display(),
            tail.line,
            tail.discarded_bytes,
            tail.error,
            shards
        );
    }
    let backup = path.with_file_name(format!(
        "{}.migrating",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("store.jsonl")
    ));
    std::fs::rename(path, &backup)
        .map_err(|e| format!("{} -> {}: {e}", path.display(), backup.display()))?;
    let built = write_sharded_layout(path, shards, &loaded.records);
    match built {
        Ok(()) => {
            std::fs::remove_file(&backup).ok();
            eprintln!(
                "note: migrated legacy result store {} into {} segment(s)",
                path.display(),
                shards
            );
            Ok(())
        }
        Err(e) => {
            // Roll back: the legacy file returns, the half-built
            // directory goes.
            std::fs::remove_dir_all(path).ok();
            std::fs::rename(&backup, path).ok();
            Err(format!("migrating {}: {e}", path.display()))
        }
    }
}

/// Writes a complete sharded store directory (manifest, segments,
/// sidecar) from an ordered record list.  Records keep their relative
/// order within each segment; sidecar entries are first-wins per
/// fingerprint, matching load semantics.
fn write_sharded_layout(dir: &Path, shards: usize, records: &[CellResult]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    write_store_meta(dir, shards)?;
    let mut segments: Vec<String> = vec![String::new(); shards];
    let mut entries: Vec<(usize, u64, u64, u64)> = Vec::new();
    let mut seen = std::collections::HashSet::with_capacity(records.len());
    for record in records {
        let k = shard_for(record.fingerprint, shards);
        let line = record.to_line();
        let offset = segments[k].len() as u64;
        if seen.insert(record.fingerprint) {
            entries.push((k, offset, record.fingerprint, hash_bytes(line.as_bytes())));
        }
        segments[k].push_str(&line);
        segments[k].push('\n');
    }
    for (k, contents) in segments.iter().enumerate() {
        let path = segment_path(dir, k);
        let tmp = dir.join(format!("segment-{k}.jsonl.tmp"));
        std::fs::write(&tmp, contents).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            format!("renaming {}: {e}", tmp.display())
        })?;
    }
    entries.sort_unstable();
    let mut out = String::new();
    let mut header = ObjectWriter::new();
    header.field_str("record", "header");
    header.field_int("version", STORE_LAYOUT_VERSION);
    header.field_int("shards", shards as i64);
    header.field_int("entries", entries.len() as i64);
    out.push_str(&header.finish());
    out.push('\n');
    for (k, contents) in segments.iter().enumerate() {
        let mut w = ObjectWriter::new();
        w.field_str("record", "segment");
        w.field_int("segment", k as i64);
        w.field_int("bytes", contents.len() as i64);
        out.push_str(&w.finish());
        out.push('\n');
    }
    for (segment, offset, fingerprint, digest) in entries {
        out.push_str(&sidecar_entry_line(fingerprint, segment, offset, digest));
        out.push('\n');
    }
    let tmp = dir.join(format!("{SIDECAR_FILE}.tmp"));
    std::fs::write(&tmp, out).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, dir.join(SIDECAR_FILE)).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        format!("renaming {}: {e}", tmp.display())
    })
}

/// Compacts a sharded store directory: every segment is rewritten with
/// first-wins fingerprint dedup applied *across* shards (in segment,
/// then offset order), records sitting in the wrong segment (the
/// footprint of a hand-assembled store) are re-routed home, torn tails
/// are dropped, and the sidecar index is rebuilt atomically.
///
/// Returns one [`CompactionStats`] per shard: `kept` counts the records
/// the segment holds *after* compaction, `dropped` counts the records
/// removed *from* that segment (shadowed duplicates, its torn tail, and
/// records re-routed elsewhere are accounted where they were found).
///
/// Do not compact a store another process has open for appending — the
/// renames strand that process's handles on the replaced inodes.
pub fn compact_sharded_store(dir: &Path) -> Result<Vec<CompactionStats>, String> {
    let shards = read_store_meta(dir)?;
    let mut routed: Vec<Vec<CellResult>> = (0..shards).map(|_| Vec::new()).collect();
    let mut kept_from = vec![0usize; shards];
    let mut found_in = vec![0usize; shards];
    let mut torn = vec![0usize; shards];
    let mut seen = std::collections::HashSet::new();
    for k in 0..shards {
        let path = segment_path(dir, k);
        if !path.exists() {
            continue;
        }
        let loaded = load_records_recovering(&path)?;
        torn[k] = usize::from(loaded.torn_tail.is_some());
        found_in[k] = loaded.records.len();
        for record in loaded.records {
            if seen.insert(record.fingerprint) {
                let home = shard_for(record.fingerprint, shards);
                if home == k {
                    kept_from[k] += 1;
                }
                routed[home].push(record);
            }
        }
    }
    let ordered: Vec<CellResult> = {
        // write_sharded_layout routes by fingerprint itself; feed it the
        // records in global first-wins order, flattened per segment so
        // relative order within a segment is preserved.
        routed.into_iter().flatten().collect()
    };
    write_sharded_layout(dir, shards, &ordered)?;
    let mut stats = Vec::with_capacity(shards);
    let mut kept_in = vec![0usize; shards];
    for record in &ordered {
        kept_in[shard_for(record.fingerprint, shards)] += 1;
    }
    for k in 0..shards {
        stats.push(CompactionStats {
            kept: kept_in[k],
            dropped: found_in[k] + torn[k] - kept_from[k],
        });
    }
    Ok(stats)
}

/// Reads every record of a store — legacy file or sharded directory —
/// with the strict reader (any malformed line is an error).  Sharded
/// stores are read segment by segment in segment order.
pub fn read_store_records(path: &Path) -> Result<Vec<CellResult>, String> {
    if !path.is_dir() {
        return read_records(path);
    }
    let shards = read_store_meta(path)?;
    let mut records = Vec::new();
    for k in 0..shards {
        let segment = segment_path(path, k);
        if segment.exists() {
            records.extend(read_records(&segment)?);
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Scenario;
    use dmpb_core::runner::SuiteRunner;
    use dmpb_workloads::ClusterConfig;

    fn sample_result() -> CellResult {
        let cell = Scenario::with_defaults("store-test").expand()[0].clone();
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let run = runner.run_cell(cell.kind, cell.elements, cell.seed);
        CellResult::compute(&cell, &run, 1)
    }

    #[test]
    fn serialization_round_trips_exactly() {
        let result = sample_result();
        let line = result.to_line();
        let back = CellResult::from_line(&line).unwrap();
        assert_eq!(back, result);
        assert_eq!(
            back.to_line(),
            line,
            "re-serialization must be byte-identical"
        );
        assert_eq!(back.digest(), result.digest());
        assert!(!result.accuracies.is_empty());
        assert_eq!(
            result.accuracy_for(&result.worst_metric),
            Some(result.worst_accuracy)
        );
    }

    #[test]
    fn population_results_round_trip_and_tolerate_absence() {
        let mut result = sample_result();
        result.population = Some(PopulationResult {
            spec_hash: 0xABCD_EF01_2345_6789,
            rank: 42,
            member_hash: 0x1122_3344_5566_7788,
            family: "fork-join".to_string(),
            label: "synthetic-fork-join-0042".to_string(),
        });
        let line = result.to_line();
        assert!(line.contains("\"pop_spec\""), "{line}");
        let back = CellResult::from_line(&line).unwrap();
        assert_eq!(back, result);
        assert_eq!(back.to_line(), line);

        // A line with no pop_* fields parses as a named-workload cell.
        let named = sample_result();
        let back = CellResult::from_line(&named.to_line()).unwrap();
        assert_eq!(back.population, None);

        // A partial population group is corruption, not a named cell.
        let partial = line.replace("\"pop_rank\":42,", "");
        let err = CellResult::from_line(&partial).unwrap_err();
        assert!(err.contains("pop_rank"), "{err}");
    }

    /// PR 10's fingerprint fix: a synthetic cell that matches a named
    /// cell on every legacy axis (carrier kind, cluster, architecture,
    /// elements, seed) must neither be served the named cell's stored
    /// result nor shadow it — in both store layouts.
    #[test]
    fn synthetic_cells_never_shadow_named_results_in_either_store_layout() {
        use dmpb_population::PopulationSpec;

        let mut scenario = Scenario::with_defaults("no-shadow");
        scenario.population = Some(PopulationSpec {
            size: 1,
            ..PopulationSpec::default()
        });
        let cells = scenario.expand();
        let synthetic = cells.last().unwrap().clone();
        assert!(synthetic.population.is_some());
        // The named twin: identical on every axis the old fingerprint saw.
        let mut named = synthetic.clone();
        named.population = None;
        let named_fp = named.fingerprint(crate::CODE_MODEL_VERSION);
        let synthetic_fp = synthetic.fingerprint(crate::CODE_MODEL_VERSION);
        assert_ne!(named_fp, synthetic_fp);

        let template = sample_result();
        let dir = temp_store_dir("no-shadow");
        let legacy = ResultStore::open(dir.join("legacy.jsonl")).unwrap();
        let sharded = ResultStore::open_sharded(dir.join("sharded"), 4).unwrap();
        for store in [&legacy, &sharded] {
            // Direction 1: a stored named result is not served to the
            // synthetic cell.
            let mut named_result = template.clone();
            named_result.fingerprint = named_fp;
            store.insert(named_result.clone()).unwrap();
            assert_eq!(store.lookup(synthetic_fp), None);

            // Direction 2: storing the synthetic result afterwards does
            // not shadow (or mutate) the named one.
            let mut synthetic_result = template.clone();
            synthetic_result.fingerprint = synthetic_fp;
            synthetic_result.checksum ^= 0xFFFF;
            store.insert(synthetic_result.clone()).unwrap();
            assert_eq!(store.lookup(named_fp).unwrap(), named_result);
            assert_eq!(store.lookup(synthetic_fp).unwrap(), synthetic_result);
            store.sync().unwrap();
        }

        // Persistence keeps them distinct too.
        drop((legacy, sharded));
        for path in [dir.join("legacy.jsonl"), dir.join("sharded")] {
            let reopened = ResultStore::open(&path).unwrap();
            assert_ne!(
                reopened.lookup(named_fp).unwrap().checksum,
                reopened.lookup(synthetic_fp).unwrap().checksum
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(CellResult::from_line("{}").is_err());
        assert!(CellResult::from_line("not json").is_err());
        let line = sample_result().to_line();
        let bad_workload = line.replace("\"workload\":\"TeraSort\"", "\"workload\":\"Quicksort\"");
        assert!(CellResult::from_line(&bad_workload).is_err());
        // Negative counts must error, not wrap into huge unsigned values.
        let negative = line.replace("\"elements\":2000", "\"elements\":-1");
        let err = CellResult::from_line(&negative).unwrap_err();
        assert!(err.contains("negative"), "{err}");
    }

    #[test]
    fn store_persists_and_reloads() {
        let result = sample_result();
        let dir = std::env::temp_dir().join(format!(
            "dmpb-store-test-{}-{:016x}",
            std::process::id(),
            result.digest()
        ));
        let path = dir.join("results.jsonl");
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.lookup(result.fingerprint), None);
        store.insert(result.clone()).unwrap();
        store.insert(result.clone()).unwrap(); // dedup: not re-appended
        assert_eq!(store.stats().entries, 1);
        drop(store);

        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.stats().entries, 1);
        let served = reopened.lookup(result.fingerprint).unwrap();
        assert_eq!(served, result);
        assert_eq!(served.to_line(), result.to_line());
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        assert_eq!(read_records(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hit_ratio_counts_lookups() {
        let store = ResultStore::in_memory();
        let result = sample_result();
        assert!(store.lookup(result.fingerprint).is_none());
        store.insert(result.clone()).unwrap();
        assert!(store.lookup(result.fingerprint).is_some());
        assert!(store.lookup(result.fingerprint).is_some());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.lookups(), 3);
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_store_has_no_hit_ratio() {
        let idle = StoreStats::default();
        assert_eq!(idle.lookups(), 0);
        assert_eq!(idle.try_hit_ratio(), None);
        assert_eq!(idle.hit_ratio(), 0.0);
    }

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmpb-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn torn_final_line_is_truncated_on_reopen() {
        let result = sample_result();
        let dir = temp_store_dir("torn-tail");
        let path = dir.join("results.jsonl");
        {
            let store = ResultStore::open(&path).unwrap();
            store.insert(result.clone()).unwrap();
        }
        // A crash mid-append leaves a partial final line.
        let torn = &result.to_line()[..40];
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            write!(file, "{torn}").unwrap();
        }
        assert!(
            read_records(&path).is_err(),
            "the strict reader must reject the torn tail"
        );

        let reopened = ResultStore::open(&path).expect("torn tail must not brick the store");
        assert_eq!(reopened.stats().entries, 1);
        let tail = reopened.recovered_tail().expect("tail was recovered");
        assert_eq!(tail.line, 2);
        assert_eq!(tail.discarded_bytes, torn.len() as u64);
        assert_eq!(reopened.lookup(result.fingerprint).unwrap(), result);

        // The truncated file appends cleanly and parses strictly again.
        let mut second = result.clone();
        second.fingerprint ^= 0x5eed;
        reopened.insert(second.clone()).unwrap();
        drop(reopened);
        let records = read_records(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].fingerprint, second.fingerprint);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_newline_only_is_completed_on_reopen() {
        // The tear can land between the payload and its '\n': the record
        // is intact but appending blindly would glue two lines together.
        let result = sample_result();
        let dir = temp_store_dir("torn-newline");
        let path = dir.join("results.jsonl");
        std::fs::write(&path, result.to_line()).unwrap(); // no trailing '\n'

        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.stats().entries, 1);
        assert!(store.recovered_tail().is_none());
        let mut second = result.clone();
        second.fingerprint ^= 0xbeef;
        store.insert(second).unwrap();
        drop(store);
        assert_eq!(read_records(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_corruption_is_still_a_hard_error() {
        let result = sample_result();
        let dir = temp_store_dir("interior");
        let path = dir.join("results.jsonl");
        std::fs::write(&path, format!("garbage not json\n{}\n", result.to_line())).unwrap();
        let err = ResultStore::open(&path).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_failure_degrades_to_in_memory_without_panicking() {
        let result = sample_result();
        let dir = temp_store_dir("io-degrade");
        let path = dir.join("results.jsonl");
        std::fs::write(&path, "").unwrap();
        // A read-only handle makes every append fail with a real I/O
        // error (EBADF), standing in for a full disk or EIO.
        let shard = Shard {
            index: Mutex::new(HashMap::new()),
            writer: Some(Mutex::new(ShardWriter {
                file: BufWriter::new(File::open(&path).unwrap()),
                offset: 0,
                flush_each: true,
                pending: Vec::new(),
            })),
            path: Some(path.clone()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
        };
        let store = ResultStore {
            shards: vec![shard],
            layout: Layout::LegacyFile,
            path: Some(path.clone()),
            persist_disabled: AtomicBool::new(false),
            persist_error: Mutex::new(None),
            recovered_tails: Vec::new(),
            opened_from_sidecar: false,
            sidecar_stale: AtomicBool::new(false),
        };
        let err = store.insert(result.clone()).unwrap_err();
        assert!(err.contains("results.jsonl"), "{err}");
        // The result is still served from memory; the error is recorded.
        assert_eq!(store.lookup(result.fingerprint).unwrap(), result);
        assert_eq!(store.stats().persist_errors, 1);
        assert!(store.persist_error().is_some());
        // Later inserts silently stay in memory (degraded, not dead).
        let mut second = result.clone();
        second.fingerprint ^= 1;
        store.insert(second.clone()).unwrap();
        assert_eq!(store.stats().entries, 2);
        assert_eq!(store.stats().persist_errors, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_drops_shadowed_records_and_round_trips_strictly() {
        let result = sample_result();
        let dir = temp_store_dir("compact");
        let path = dir.join("results.jsonl");

        // First-wins shadowing: a record re-appended under the same
        // fingerprint with *different* payload (e.g. two concatenated
        // store generations) must compact to the first occurrence.
        let mut shadowed = result.clone();
        shadowed.checksum ^= 0xbad;
        let mut second = result.clone();
        second.fingerprint ^= 0x5eed;
        let mut contents = String::new();
        for r in [&result, &shadowed, &second, &result] {
            contents.push_str(&r.to_line());
            contents.push('\n');
        }
        contents.push('\n'); // interior blank line, legal but noise
        contents.push_str(&second.to_line());
        contents.push('\n');
        // ... and a torn tail from a crash mid-append.
        contents.push_str(&result.to_line()[..25]);
        std::fs::write(&path, &contents).unwrap();

        let stats = compact_store(&path).unwrap();
        assert_eq!(
            stats,
            CompactionStats {
                kept: 2,
                dropped: 4
            }
        );

        // The compacted file parses with the strict reader and loads to
        // the same first-wins index the original did.
        let records = read_records(&path).unwrap();
        assert_eq!(records, vec![result.clone(), second.clone()]);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.stats().entries, 2);
        assert_eq!(store.lookup(result.fingerprint).unwrap(), result);

        // Compacting a compacted store is a no-op.
        drop(store);
        let stats = compact_store(&path).unwrap();
        assert_eq!(
            stats,
            CompactionStats {
                kept: 2,
                dropped: 0
            }
        );
        assert_eq!(read_records(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_locks_are_recovered_not_cascaded() {
        let result = sample_result();
        let store = std::sync::Arc::new(ResultStore::in_memory_with_shards(1));
        store.insert(result.clone()).unwrap();
        // A worker panicking while holding the index lock poisons it.
        let poisoner = std::sync::Arc::clone(&store);
        let panicked = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].index.lock().unwrap();
            panic!("worker died mid-insert");
        })
        .join();
        assert!(panicked.is_err());
        assert!(
            store.shards[0].index.lock().is_err(),
            "the lock really is poisoned"
        );
        // Every other worker and later request keeps working.
        assert_eq!(store.lookup(result.fingerprint).unwrap(), result);
        let mut second = result.clone();
        second.fingerprint ^= 2;
        store.insert(second).unwrap();
        assert_eq!(store.stats().entries, 2);
    }

    #[test]
    fn lookup_stays_consistent_under_a_concurrent_inserter() {
        // Satellite pin for the shrunken lookup critical section: the
        // record is cloned from an `Arc` *outside* the index lock, so a
        // reader hammering one fingerprint while a writer streams fresh
        // inserts into the same shard always sees the full, unchanged
        // record — and the counters still add up exactly.
        let result = sample_result();
        let store = std::sync::Arc::new(ResultStore::in_memory_with_shards(1));
        store.insert(result.clone()).unwrap();

        const INSERTS: u64 = 500;
        const LOOKUPS: u64 = 2_000;
        let writer = {
            let store = std::sync::Arc::clone(&store);
            let template = result.clone();
            std::thread::spawn(move || {
                for i in 1..=INSERTS {
                    let mut fresh = template.clone();
                    fresh.fingerprint = template.fingerprint.wrapping_add(i);
                    store.insert(fresh).unwrap();
                }
            })
        };
        for _ in 0..LOOKUPS {
            let hit = store.lookup(result.fingerprint).expect("pinned record");
            assert_eq!(hit, result, "lookup must never observe a torn record");
        }
        writer.join().unwrap();

        let stats = store.stats();
        assert_eq!(stats.entries as u64, INSERTS + 1);
        assert_eq!(stats.hits, LOOKUPS);
        assert_eq!(stats.misses, 0);
    }
}
