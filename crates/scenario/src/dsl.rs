//! The scenario DSL: a hand-rolled TOML-subset parser that turns an
//! experiment description into a validated [`Scenario`].
//!
//! # Grammar
//!
//! A scenario file is a TOML subset with four kinds of section:
//!
//! ```toml
//! # Comments run from `#` to end of line.
//!
//! [scenario]                      # required, exactly once
//! name = "paper-tables"           # required: the campaign's identity
//! description = "Table VI sweep"  # optional
//!
//! [axes]                          # optional: sweep axes (defaults below)
//! workloads = ["all"]             # workload names, or "all" / "paper-five"
//! clusters = ["five-node-westmere"]       # ClusterConfig::NAMES slugs
//! architectures = ["default", "haswell"]  # "default" = the cluster's own
//!                                         # processor; else ArchProfile::NAMES
//! elements = [2000]               # sample-execution sizes (data scale)
//! seeds = [0x00D417A40F1F]        # base seeds (hex or decimal)
//! tuning-cluster = "five-node-westmere"   # optional: tune every proxy on
//!                                         # this cluster instead of the
//!                                         # cell's own (cross-architecture
//!                                         # studies)
//!
//! [executor]                      # optional: campaign execution policy
//! workers = 8                     # worker-pool width for cell batching
//! chunk_elements = 1_000_000      # stream sample executions in chunks of
//!                                 # at most this many elements (bounded
//!                                 # RSS; digests are unchanged)
//!
//! [population]                    # optional: sweep a seeded population of
//! size = 128                      # synthesized workloads alongside (or
//! base-seed = 0xDA7A              # instead of) the named ones
//! family = "mixed"                # chain / fork-join / diamond / layered /
//!                                 # mixed (a family drawn per member)
//! fit-to-paper = true             # start from parameters fitted to the
//!                                 # eight paper workloads (default: false)
//! ai-fraction = 0.25              # probability a member is an AI workload
//! kernels-min = 3                 # sampled motif-kernel count range
//! kernels-max = 8
//! size-distribution = "log-uniform"  # uniform / log-uniform / zipf
//! size-min-mb = 1024              # sampled total-data-size range (MB)
//! size-max-mb = 102400
//! zipf-exponent = 1.5             # zipf shape (when distribution = zipf)
//! sparsity-min = 0.0              # sampled sparsity range
//! sparsity-max = 0.5
//! duration-budget-secs = 600.0    # campaign-wide modeled-cost budget:
//!                                 # truncates the population to the rank
//!                                 # prefix that fits (split evenly across
//!                                 # the axis combinations)
//!
//! [[include]]                     # optional, repeatable: if any [[include]]
//! workload = "TeraSort"           # blocks exist, a cell must match at
//! cluster = "five-node-westmere"  # least one of them to be kept
//!
//! [[exclude]]                     # optional, repeatable: a cell matching
//! workload = "Spark-TeraSort"     # any [[exclude]] block is dropped
//! seed = 42                       # (filters may also name architecture /
//! elements = 2000                 # elements / seed)
//! ```
//!
//! Supported values: basic `"strings"` (with `\"`, `\\`, `\n`, `\t`
//! escapes), integers (decimal or `0x` hex, `_` separators), floats,
//! booleans, and single-line arrays of those scalars.  Keys are bare
//! (`[A-Za-z0-9_-]+`).  Unknown sections, unknown keys, duplicate keys
//! within a table and duplicate
//! `[scenario]`/`[axes]`/`[executor]`/`[population]` sections are
//! errors — a typo or leftover line must not silently produce an empty
//! or different sweep.
//!
//! A scenario with a `[population]` section may set `workloads = []`:
//! the synthesized members are then the only workload axis (a
//! population-only sweep).  Without a population, every axis needs at
//! least one value.
//!
//! Every axis value is validated at parse time against the registries it
//! names ([`WorkloadKind`]'s `FromStr`, [`ClusterConfig::by_name`],
//! [`ArchProfile::by_name`]), so a parsed [`Scenario`] can always be
//! expanded.
//!
//! The axes expand to the cartesian campaign matrix in declaration order
//! (clusters ▸ architectures ▸ elements ▸ seeds ▸ workloads); see
//! [`Scenario::expand`](crate::matrix) for the determinism contract.

use dmpb_perfmodel::arch::ArchProfile;
use dmpb_population::{PopulationSpec, SizeDistribution, TopologyFamily};
use dmpb_workloads::{ClusterConfig, WorkloadKind};

use crate::matrix::CellFilter;

/// Default sample-execution size (matches the suite runner's
/// `SAMPLE_ELEMENTS`).
pub const DEFAULT_ELEMENTS: usize = dmpb_core::runner::SAMPLE_ELEMENTS;

/// Architecture axis value meaning "the cluster's own processor".
pub const DEFAULT_ARCHITECTURE: &str = "default";

/// A validated scenario: the declarative description of one campaign.
///
/// Fields are public so tests and programmatic callers can assemble
/// scenarios directly; [`Scenario::parse`] is the DSL entry point and the
/// only constructor that validates names.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The campaign's identity (reported, and part of no fingerprint).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Workload axis, in sweep order.
    pub workloads: Vec<WorkloadKind>,
    /// Cluster axis: slugs from [`ClusterConfig::NAMES`].
    pub clusters: Vec<String>,
    /// Architecture-override axis: [`DEFAULT_ARCHITECTURE`] or slugs from
    /// [`ArchProfile::NAMES`].
    pub architectures: Vec<String>,
    /// Sample-execution sizes (the data-scale axis).
    pub elements: Vec<usize>,
    /// Base seeds; each cell derives its own seed from one of these.
    pub seeds: Vec<u64>,
    /// When set, every proxy is tuned on this cluster (slug) instead of
    /// the cell's own cluster.
    pub tuning_cluster: Option<String>,
    /// Worker-pool width for batching cells (None = the runner default).
    pub workers: Option<usize>,
    /// Streaming chunk size in elements for every cell's sample execution
    /// (None = monolithic execution).  Granule-aligned by the executor;
    /// digests are identical for any setting.
    pub chunk_elements: Option<usize>,
    /// Keep-only filters (a cell must match at least one, if any exist).
    pub include: Vec<CellFilter>,
    /// Drop filters (a cell matching any is dropped).
    pub exclude: Vec<CellFilter>,
    /// When set, a seeded population of synthesized workloads sweeps
    /// alongside (or, with `workloads = []`, instead of) the named ones.
    pub population: Option<PopulationSpec>,
}

impl Scenario {
    /// A scenario with the suite defaults on every axis: all eight
    /// workloads on the five-node Westmere cluster, default architecture,
    /// `SAMPLE_ELEMENTS` and the runner's default base seed.
    pub fn with_defaults(name: &str) -> Self {
        Self {
            name: name.to_string(),
            description: String::new(),
            workloads: WorkloadKind::ALL.to_vec(),
            clusters: vec![ClusterConfig::NAMES[0].to_string()],
            architectures: vec![DEFAULT_ARCHITECTURE.to_string()],
            elements: vec![DEFAULT_ELEMENTS],
            seeds: vec![dmpb_core::runner::DEFAULT_BASE_SEED],
            tuning_cluster: None,
            workers: None,
            chunk_elements: None,
            include: Vec::new(),
            exclude: Vec::new(),
            population: None,
        }
    }

    /// Parses and validates a scenario file.  See the [module
    /// docs](self) for the grammar.
    pub fn parse(src: &str) -> Result<Scenario, ParseError> {
        let doc = Document::parse(src)?;
        doc.into_scenario()
    }
}

/// A scenario-file syntax or validation error, with the 1-based source
/// line it was detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the scenario source.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// A parsed scalar or array value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(u64),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// Which section a `key = value` line belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Section {
    Scenario,
    Axes,
    Executor,
    Population,
    Include(usize),
    Exclude(usize),
}

/// The raw parse: sections of `(key, value, line)` entries.
#[derive(Debug, Default)]
struct Document {
    scenario: Vec<(String, Value, usize)>,
    axes: Vec<(String, Value, usize)>,
    executor: Vec<(String, Value, usize)>,
    population: Vec<(String, Value, usize)>,
    include: Vec<Vec<(String, Value, usize)>>,
    exclude: Vec<Vec<(String, Value, usize)>>,
    saw_scenario: bool,
    saw_axes: bool,
    saw_executor: bool,
    saw_population: bool,
    population_line: usize,
}

/// Rejects a key assigned twice within one table — a leftover duplicate
/// line would otherwise silently last-win and sweep different cells than
/// the author believes.
fn reject_duplicate_keys(
    table: &str,
    entries: &[(String, Value, usize)],
) -> Result<(), ParseError> {
    // `-` and `_` spellings of one key (e.g. `tuning-cluster`) collide.
    let canon = |k: &str| k.replace('_', "-");
    for (i, (key, _, line)) in entries.iter().enumerate() {
        if entries[..i]
            .iter()
            .any(|(prior, _, _)| canon(prior) == canon(key))
        {
            return err(*line, format!("duplicate {table} key `{key}`"));
        }
    }
    Ok(())
}

impl Document {
    fn parse(src: &str) -> Result<Document, ParseError> {
        let mut doc = Document::default();
        let mut section: Option<Section> = None;
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let name = rest
                    .strip_suffix("]]")
                    .ok_or(())
                    .or_else(|_| err(line_no, "unterminated `[[` table header"))?
                    .trim();
                section = Some(match name {
                    "include" => {
                        doc.include.push(Vec::new());
                        Section::Include(doc.include.len() - 1)
                    }
                    "exclude" => {
                        doc.exclude.push(Vec::new());
                        Section::Exclude(doc.exclude.len() - 1)
                    }
                    other => {
                        return err(
                            line_no,
                            format!("unknown table array `[[{other}]]` (expected include/exclude)"),
                        )
                    }
                });
            } else if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or(())
                    .or_else(|_| err(line_no, "unterminated `[` table header"))?
                    .trim();
                section = Some(match name {
                    "scenario" => {
                        if doc.saw_scenario {
                            return err(line_no, "duplicate [scenario] section");
                        }
                        doc.saw_scenario = true;
                        Section::Scenario
                    }
                    "axes" => {
                        if doc.saw_axes {
                            return err(line_no, "duplicate [axes] section");
                        }
                        doc.saw_axes = true;
                        Section::Axes
                    }
                    "executor" => {
                        if doc.saw_executor {
                            return err(line_no, "duplicate [executor] section");
                        }
                        doc.saw_executor = true;
                        Section::Executor
                    }
                    "population" => {
                        if doc.saw_population {
                            return err(line_no, "duplicate [population] section");
                        }
                        doc.saw_population = true;
                        doc.population_line = line_no;
                        Section::Population
                    }
                    other => {
                        return err(
                            line_no,
                            format!(
                                "unknown section `[{other}]` (expected scenario/axes/executor/population)"
                            ),
                        )
                    }
                });
            } else {
                let (key, value) = parse_assignment(line, line_no)?;
                let entry = (key, value, line_no);
                match &section {
                    None => return err(line_no, "key outside any section"),
                    Some(Section::Scenario) => doc.scenario.push(entry),
                    Some(Section::Axes) => doc.axes.push(entry),
                    Some(Section::Executor) => doc.executor.push(entry),
                    Some(Section::Population) => doc.population.push(entry),
                    Some(Section::Include(i)) => doc.include[*i].push(entry),
                    Some(Section::Exclude(i)) => doc.exclude[*i].push(entry),
                }
            }
        }
        if !doc.saw_scenario {
            return err(src.lines().count().max(1), "missing [scenario] section");
        }
        Ok(doc)
    }

    fn into_scenario(self) -> Result<Scenario, ParseError> {
        reject_duplicate_keys("[scenario]", &self.scenario)?;
        reject_duplicate_keys("[axes]", &self.axes)?;
        reject_duplicate_keys("[executor]", &self.executor)?;
        reject_duplicate_keys("[population]", &self.population)?;
        for table in self.include.iter().chain(&self.exclude) {
            reject_duplicate_keys("filter", table)?;
        }
        let mut name = None;
        let mut description = String::new();
        for (key, value, line) in &self.scenario {
            match key.as_str() {
                "name" => name = Some(expect_string(value, line)?),
                "description" => description = expect_string(value, line)?,
                other => return err(*line, format!("unknown [scenario] key `{other}`")),
            }
        }
        let name = match name {
            Some(n) if !n.is_empty() => n,
            _ => return err(1, "the [scenario] section needs a non-empty `name`"),
        };

        let mut scenario = Scenario::with_defaults(&name);
        scenario.description = description;

        for (key, value, line) in &self.axes {
            match key.as_str() {
                "workloads" => scenario.workloads = parse_workloads(value, line)?,
                "clusters" => scenario.clusters = parse_clusters(value, line)?,
                "architectures" => scenario.architectures = parse_architectures(value, line)?,
                "elements" => {
                    scenario.elements = expect_array(value, line)?
                        .iter()
                        .map(|v| match v {
                            Value::Int(n) if *n > 0 => Ok(*n as usize),
                            _ => err(*line, "`elements` entries must be positive integers"),
                        })
                        .collect::<Result<_, _>>()?;
                    dedup_preserving(&mut scenario.elements);
                }
                "seeds" => {
                    scenario.seeds = expect_array(value, line)?
                        .iter()
                        .map(|v| match v {
                            Value::Int(n) => Ok(*n),
                            _ => err(*line, "`seeds` entries must be integers"),
                        })
                        .collect::<Result<_, _>>()?;
                    dedup_preserving(&mut scenario.seeds);
                }
                "tuning-cluster" | "tuning_cluster" => {
                    let raw = expect_string(value, line)?;
                    scenario.tuning_cluster = Some(canonical_cluster(&raw, line)?);
                }
                other => return err(*line, format!("unknown [axes] key `{other}`")),
            }
        }
        // A population can stand in for the workload axis (a
        // population-only sweep); every other axis always needs a value.
        if (scenario.workloads.is_empty() && !self.saw_population)
            || scenario.clusters.is_empty()
            || scenario.architectures.is_empty()
            || scenario.elements.is_empty()
            || scenario.seeds.is_empty()
        {
            return err(1, "every axis needs at least one value");
        }

        for (key, value, line) in &self.executor {
            match key.as_str() {
                "workers" => match value {
                    Value::Int(n) if *n > 0 => scenario.workers = Some(*n as usize),
                    _ => return err(*line, "`workers` must be a positive integer"),
                },
                "chunk_elements" => match value {
                    Value::Int(n) if *n > 0 => scenario.chunk_elements = Some(*n as usize),
                    _ => return err(*line, "`chunk_elements` must be a positive integer"),
                },
                other => return err(*line, format!("unknown [executor] key `{other}`")),
            }
        }

        if self.saw_population {
            scenario.population = Some(self.parse_population()?);
        }

        for table in &self.include {
            scenario.include.push(parse_filter(table)?);
        }
        for table in &self.exclude {
            scenario.exclude.push(parse_filter(table)?);
        }
        Ok(scenario)
    }

    fn parse_population(&self) -> Result<PopulationSpec, ParseError> {
        let canon = |k: &str| k.replace('_', "-");
        // `fit-to-paper` chooses the *base* spec every other key then
        // overrides, so honor it first regardless of key order.
        let mut spec = PopulationSpec::default();
        for (key, value, line) in &self.population {
            if canon(key) == "fit-to-paper" {
                match value {
                    Value::Bool(true) => spec = PopulationSpec::fit_to_paper(),
                    Value::Bool(false) => {}
                    _ => return err(*line, "`fit-to-paper` must be a boolean"),
                }
            }
        }
        let positive_u32 = |value: &Value, line: &usize, key: &str| match value {
            Value::Int(n) if *n > 0 && *n <= u64::from(u32::MAX) => Ok(*n as u32),
            _ => err(*line, format!("`{key}` must be a positive integer")),
        };
        let positive_mb = |value: &Value, line: &usize, key: &str| match value {
            Value::Int(n) if *n > 0 && *n <= (u64::MAX >> 20) => Ok(*n << 20),
            _ => err(*line, format!("`{key}` must be a positive integer (MB)")),
        };
        for (key, value, line) in &self.population {
            match canon(key).as_str() {
                "fit-to-paper" => {}
                "family" => {
                    spec.family = expect_string(value, line)?
                        .parse::<TopologyFamily>()
                        .map_err(|e| ParseError {
                            line: *line,
                            message: e,
                        })?
                }
                "size" => spec.size = positive_u32(value, line, "size")?,
                "base-seed" => match value {
                    Value::Int(n) => spec.base_seed = *n,
                    _ => return err(*line, "`base-seed` must be an integer"),
                },
                "ai-fraction" => spec.ai_fraction = expect_f64(value, line)?,
                "kernels-min" => spec.kernels_min = positive_u32(value, line, "kernels-min")?,
                "kernels-max" => spec.kernels_max = positive_u32(value, line, "kernels-max")?,
                "size-distribution" => {
                    spec.size_distribution = expect_string(value, line)?
                        .parse::<SizeDistribution>()
                        .map_err(|e| ParseError {
                            line: *line,
                            message: e,
                        })?
                }
                "size-min-mb" => spec.size_min_bytes = positive_mb(value, line, "size-min-mb")?,
                "size-max-mb" => spec.size_max_bytes = positive_mb(value, line, "size-max-mb")?,
                "zipf-exponent" => spec.zipf_exponent = expect_f64(value, line)?,
                "sparsity-min" => spec.sparsity_min = expect_f64(value, line)?,
                "sparsity-max" => spec.sparsity_max = expect_f64(value, line)?,
                "duration-budget-secs" => {
                    spec.duration_budget_secs = Some(expect_f64(value, line)?)
                }
                other => return err(*line, format!("unknown [population] key `{other}`")),
            }
        }
        if let Err(message) = spec.validate() {
            return err(
                self.population_line,
                format!("invalid [population]: {message}"),
            );
        }
        Ok(spec)
    }
}

fn dedup_preserving<T: PartialEq + Clone>(values: &mut Vec<T>) {
    let mut seen: Vec<T> = Vec::with_capacity(values.len());
    values.retain(|v| {
        if seen.contains(v) {
            false
        } else {
            seen.push(v.clone());
            true
        }
    });
}

fn expect_string(value: &Value, line: &usize) -> Result<String, ParseError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        other => err(
            *line,
            format!("expected a string, found {}", other.type_name()),
        ),
    }
}

fn expect_f64(value: &Value, line: &usize) -> Result<f64, ParseError> {
    match value {
        Value::Int(n) => Ok(*n as f64),
        Value::Float(f) => Ok(*f),
        other => err(
            *line,
            format!("expected a number, found {}", other.type_name()),
        ),
    }
}

fn expect_array<'v>(value: &'v Value, line: &usize) -> Result<&'v [Value], ParseError> {
    match value {
        Value::Array(items) => Ok(items),
        other => err(
            *line,
            format!("expected an array, found {}", other.type_name()),
        ),
    }
}

fn parse_workloads(value: &Value, line: &usize) -> Result<Vec<WorkloadKind>, ParseError> {
    let mut kinds = Vec::new();
    for item in expect_array(value, line)? {
        let name = expect_string(item, line)?;
        match name.to_ascii_lowercase().as_str() {
            "all" => kinds.extend(WorkloadKind::ALL),
            "paper-five" | "paper_five" => kinds.extend(WorkloadKind::PAPER_FIVE),
            _ => kinds.push(name.parse::<WorkloadKind>().map_err(|e| ParseError {
                line: *line,
                message: e,
            })?),
        }
    }
    dedup_preserving(&mut kinds);
    Ok(kinds)
}

fn canonical_cluster(name: &str, line: &usize) -> Result<String, ParseError> {
    let slug = name.trim().to_ascii_lowercase();
    if ClusterConfig::by_name(&slug).is_none() {
        return err(
            *line,
            format!(
                "unknown cluster `{name}` (expected one of: {})",
                ClusterConfig::NAMES.join(", ")
            ),
        );
    }
    // Store the slug, not the reporting name, so fingerprints don't
    // depend on which spelling the file used.
    Ok(ClusterConfig::NAMES
        .iter()
        .find(|s| {
            **s == slug
                || ClusterConfig::by_name(s).is_some_and(|c| c.name.to_ascii_lowercase() == slug)
        })
        .expect("by_name succeeded, so a slug matches")
        .to_string())
}

fn parse_clusters(value: &Value, line: &usize) -> Result<Vec<String>, ParseError> {
    let mut clusters = expect_array(value, line)?
        .iter()
        .map(|item| canonical_cluster(&expect_string(item, line)?, line))
        .collect::<Result<Vec<_>, _>>()?;
    dedup_preserving(&mut clusters);
    Ok(clusters)
}

fn canonical_architecture(name: &str, line: &usize) -> Result<String, ParseError> {
    let slug = name.trim().to_ascii_lowercase();
    if slug == DEFAULT_ARCHITECTURE {
        return Ok(slug);
    }
    if ArchProfile::by_name(&slug).is_none() {
        return err(
            *line,
            format!(
                "unknown architecture `{name}` (expected \"default\" or one of: {})",
                ArchProfile::NAMES.join(", ")
            ),
        );
    }
    Ok(ArchProfile::NAMES
        .iter()
        .find(|s| {
            **s == slug
                || ArchProfile::by_name(s).is_some_and(|a| a.name.to_ascii_lowercase() == slug)
        })
        .expect("by_name succeeded, so a slug matches")
        .to_string())
}

fn parse_architectures(value: &Value, line: &usize) -> Result<Vec<String>, ParseError> {
    let mut archs = expect_array(value, line)?
        .iter()
        .map(|item| canonical_architecture(&expect_string(item, line)?, line))
        .collect::<Result<Vec<_>, _>>()?;
    dedup_preserving(&mut archs);
    Ok(archs)
}

fn parse_filter(table: &[(String, Value, usize)]) -> Result<CellFilter, ParseError> {
    let mut filter = CellFilter::default();
    for (key, value, line) in table {
        match key.as_str() {
            "workload" => {
                filter.workload = Some(
                    expect_string(value, line)?
                        .parse::<WorkloadKind>()
                        .map_err(|e| ParseError {
                            line: *line,
                            message: e,
                        })?,
                )
            }
            "cluster" => {
                filter.cluster = Some(canonical_cluster(&expect_string(value, line)?, line)?)
            }
            "architecture" => {
                filter.architecture =
                    Some(canonical_architecture(&expect_string(value, line)?, line)?)
            }
            "elements" => match value {
                Value::Int(n) => filter.elements = Some(*n as usize),
                _ => return err(*line, "filter `elements` must be an integer"),
            },
            "seed" => match value {
                Value::Int(n) => filter.seed = Some(*n),
                _ => return err(*line, "filter `seed` must be an integer"),
            },
            other => return err(*line, format!("unknown filter key `{other}`")),
        }
    }
    if filter == CellFilter::default() {
        return err(
            table.first().map(|(_, _, l)| *l).unwrap_or(1),
            "an empty filter matches every cell; name at least one axis",
        );
    }
    Ok(filter)
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_assignment(line: &str, line_no: usize) -> Result<(String, Value), ParseError> {
    let eq = match line.find('=') {
        Some(i) => i,
        None => return err(line_no, format!("expected `key = value`, found `{line}`")),
    };
    let key = line[..eq].trim();
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return err(line_no, format!("invalid key `{key}`"));
    }
    let mut cursor = Cursor {
        bytes: line[eq + 1..].trim(),
        pos: 0,
        line: line_no,
    };
    let value = cursor.value()?;
    cursor.skip_ws();
    if !cursor.done() {
        return err(line_no, "trailing content after value");
    }
    Ok((key.to_string(), value))
}

struct Cursor<'a> {
    bytes: &'a str,
    pos: usize,
    line: usize,
}

impl Cursor<'_> {
    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<char> {
        self.bytes[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => self.string().map(Value::Str),
            Some('[') => self.array(),
            Some('t') | Some('f') => self.boolean(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.number(),
            other => err(self.line, format!("expected a value, found {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let c = match self.peek() {
                Some(c) => c,
                None => return err(self.line, "unterminated string"),
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = match self.peek() {
                        Some(e) => e,
                        None => return err(self.line, "unterminated escape"),
                    };
                    self.pos += esc.len_utf8();
                    out.push(match esc {
                        '"' => '"',
                        '\\' => '\\',
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => return err(self.line, format!("unsupported escape \\{other}")),
                    });
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                None => return err(self.line, "unterminated array"),
                _ => {}
            }
            let item = self.value()?;
            if let Value::Array(_) = item {
                return err(self.line, "nested arrays are not supported");
            }
            items.push(item);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {}
                other => {
                    return err(
                        self.line,
                        format!("expected `,` or `]` in array, found {other:?}"),
                    )
                }
            }
        }
    }

    fn boolean(&mut self) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with("true") {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if self.bytes[self.pos..].starts_with("false") {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            err(self.line, "expected `true` or `false`")
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some('0'..='9' | 'a'..='f' | 'A'..='F' | 'x' | 'X' | '_' | '.' | '-' | '+')
        ) {
            self.pos += 1;
        }
        // An exponent's `e`/`E` is covered by the hex-digit range above.
        let raw: String = self.bytes[start..self.pos]
            .chars()
            .filter(|c| *c != '_')
            .collect();
        if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            return u64::from_str_radix(hex, 16)
                .map(Value::Int)
                .map_err(|e| ParseError {
                    line: self.line,
                    message: format!("bad hex integer `{raw}`: {e}"),
                });
        }
        if raw.contains(['.', 'e', 'E']) && !raw.contains("0x") {
            if let Ok(f) = raw.parse::<f64>() {
                return Ok(Value::Float(f));
            }
        }
        raw.parse::<u64>().map(Value::Int).map_err(|e| ParseError {
            line: self.line,
            message: format!("bad integer `{raw}`: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        [scenario]
        name = "smoke"
    "#;

    #[test]
    fn minimal_scenario_gets_the_suite_defaults() {
        let s = Scenario::parse(MINIMAL).unwrap();
        assert_eq!(s.name, "smoke");
        assert_eq!(s.workloads, WorkloadKind::ALL.to_vec());
        assert_eq!(s.clusters, vec!["five-node-westmere".to_string()]);
        assert_eq!(s.architectures, vec!["default".to_string()]);
        assert_eq!(s.elements, vec![DEFAULT_ELEMENTS]);
        assert_eq!(s.seeds, vec![dmpb_core::runner::DEFAULT_BASE_SEED]);
        assert_eq!(s.tuning_cluster, None);
        assert_eq!(s.workers, None);
        assert_eq!(s.chunk_elements, None);
    }

    #[test]
    fn full_scenario_parses_every_section() {
        let src = r#"
            # A cross-architecture sweep.
            [scenario]
            name = "cross-arch"
            description = "Fig. 10 sweep"

            [axes]
            workloads = ["paper-five", "Spark-TeraSort"]
            clusters = ["three-node-westmere-64gb"]
            architectures = ["westmere", "haswell"]
            elements = [1_000, 2000]
            seeds = [0x00D417A40F1F, 42]
            tuning-cluster = "five-node-westmere"

            [executor]
            workers = 4
            chunk_elements = 1_000_000

            [[exclude]]
            workload = "Spark-TeraSort"   # no paper numbers
            architecture = "haswell"

            [[include]]
            cluster = "three-node-westmere-64gb"
        "#;
        let s = Scenario::parse(src).unwrap();
        assert_eq!(s.name, "cross-arch");
        assert_eq!(s.description, "Fig. 10 sweep");
        assert_eq!(s.workloads.len(), 6);
        assert_eq!(s.workloads[5], WorkloadKind::SparkTeraSort);
        assert_eq!(s.architectures, vec!["westmere", "haswell"]);
        assert_eq!(s.elements, vec![1000, 2000]);
        assert_eq!(s.seeds, vec![0x00D4_17A4_0F1F, 42]);
        assert_eq!(s.tuning_cluster.as_deref(), Some("five-node-westmere"));
        assert_eq!(s.workers, Some(4));
        assert_eq!(s.chunk_elements, Some(1_000_000));
        assert_eq!(s.exclude.len(), 1);
        assert_eq!(s.exclude[0].workload, Some(WorkloadKind::SparkTeraSort));
        assert_eq!(s.exclude[0].architecture.as_deref(), Some("haswell"));
        assert_eq!(s.include.len(), 1);
    }

    #[test]
    fn cluster_reporting_names_canonicalise_to_slugs() {
        let src = r#"
            [scenario]
            name = "n"
            [axes]
            clusters = ["5-node Xeon E5645 (32 GB)"]
        "#;
        let s = Scenario::parse(src).unwrap();
        assert_eq!(s.clusters, vec!["five-node-westmere".to_string()]);
    }

    #[test]
    fn duplicate_axis_values_collapse() {
        let src = r#"
            [scenario]
            name = "n"
            [axes]
            workloads = ["TeraSort", "terasort", "Hadoop TeraSort"]
            seeds = [7, 7, 8]
        "#;
        let s = Scenario::parse(src).unwrap();
        assert_eq!(s.workloads, vec![WorkloadKind::TeraSort]);
        assert_eq!(s.seeds, vec![7, 8]);
    }

    #[test]
    fn errors_carry_line_numbers_and_reject_typos() {
        let unknown_key = "[scenario]\nname = \"x\"\n[axes]\nworkload = [\"TeraSort\"]";
        let e = Scenario::parse(unknown_key).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("unknown [axes] key"), "{e}");

        for (src, needle) in [
            ("", "missing [scenario]"),
            ("[scenario]\ndescription = \"no name\"", "non-empty `name`"),
            (
                "[scenario]\nname = \"x\"\n[axes]\nclusters = [\"moon-base\"]",
                "unknown cluster",
            ),
            (
                "[scenario]\nname = \"x\"\n[axes]\narchitectures = [\"riscv\"]",
                "unknown architecture",
            ),
            (
                "[scenario]\nname = \"x\"\n[axes]\nworkloads = []",
                "at least one value",
            ),
            ("[scenario]\nname = \"x\"\n[[include]]", "empty filter"),
            ("[scenario]\nname = 3", "expected a string"),
            ("[weird]\nname = \"x\"", "unknown section"),
            ("name = \"x\"", "outside any section"),
            (
                "[scenario]\nname = \"x\"\n[axes]\nseeds = [1.5]",
                "must be integers",
            ),
            (
                "[scenario]\nname = \"x\"\nname = \"y\"",
                "duplicate [scenario] key `name`",
            ),
            (
                "[scenario]\nname = \"x\"\n[axes]\nseeds = [1]\nseeds = [2]",
                "duplicate [axes] key `seeds`",
            ),
            (
                "[scenario]\nname = \"x\"\n[axes]\ntuning-cluster = \"five-node-westmere\"\ntuning_cluster = \"three-node-haswell\"",
                "duplicate [axes] key",
            ),
            (
                "[scenario]\nname = \"x\"\n[axes]\nseeds = [1]\n[axes]\nelements = [2]",
                "duplicate [axes] section",
            ),
            (
                "[scenario]\nname = \"x\"\n[executor]\nworkers = 2\n[executor]\nworkers = 4",
                "duplicate [executor] section",
            ),
            (
                "[scenario]\nname = \"x\"\n[[exclude]]\nseed = 1\nseed = 2",
                "duplicate filter key `seed`",
            ),
            (
                "[scenario]\nname = \"x\"\n[executor]\nchunk_elements = 0",
                "`chunk_elements` must be a positive integer",
            ),
            (
                "[scenario]\nname = \"x\"\n[executor]\nchunk_elements = \"big\"",
                "`chunk_elements` must be a positive integer",
            ),
        ] {
            let e = Scenario::parse(src).unwrap_err();
            assert!(e.message.contains(needle), "`{src}` -> {e}");
        }
    }

    #[test]
    fn population_section_parses_and_validates() {
        let src = r#"
            [scenario]
            name = "pop"
            [axes]
            workloads = []
            [population]
            size = 128
            base_seed = 0xDA7A
            family = "fork-join"
            ai-fraction = 0.5
            kernels-min = 2
            kernels-max = 6
            size-distribution = "zipf"
            size-min-mb = 512
            size-max-mb = 4096
            zipf-exponent = 2
            sparsity-min = 0.1
            sparsity-max = 0.4
            duration-budget-secs = 300.5
        "#;
        let s = Scenario::parse(src).unwrap();
        assert!(s.workloads.is_empty());
        let spec = s.population.unwrap();
        assert_eq!(spec.size, 128);
        assert_eq!(spec.base_seed, 0xDA7A);
        assert_eq!(spec.family, TopologyFamily::ForkJoin);
        assert_eq!(spec.ai_fraction, 0.5);
        assert_eq!(spec.kernels_min, 2);
        assert_eq!(spec.kernels_max, 6);
        assert_eq!(spec.size_distribution, SizeDistribution::Zipf);
        assert_eq!(spec.size_min_bytes, 512 << 20);
        assert_eq!(spec.size_max_bytes, 4096 << 20);
        assert_eq!(spec.zipf_exponent, 2.0);
        assert_eq!(spec.sparsity_min, 0.1);
        assert_eq!(spec.sparsity_max, 0.4);
        assert_eq!(spec.duration_budget_secs, Some(300.5));
    }

    #[test]
    fn fit_to_paper_sets_the_base_spec_regardless_of_key_order() {
        let src = r#"
            [scenario]
            name = "pop"
            [population]
            size = 10
            fit-to-paper = true
        "#;
        let spec = Scenario::parse(src).unwrap().population.unwrap();
        let fitted = PopulationSpec::fit_to_paper();
        assert_eq!(spec.size, 10, "explicit keys override the fitted base");
        assert_eq!(spec.ai_fraction, fitted.ai_fraction);
        assert_eq!(spec.size_min_bytes, fitted.size_min_bytes);
    }

    #[test]
    fn population_errors_reject_bad_specs() {
        for (src, needle) in [
            (
                "[scenario]\nname = \"x\"\n[population]\nfamily = \"torus\"",
                "unknown topology family",
            ),
            (
                "[scenario]\nname = \"x\"\n[population]\nsize = 0",
                "`size` must be a positive integer",
            ),
            (
                "[scenario]\nname = \"x\"\n[population]\nkernels-min = 9\nkernels-max = 2",
                "invalid [population]",
            ),
            (
                "[scenario]\nname = \"x\"\n[population]\nshape = \"ring\"",
                "unknown [population] key",
            ),
            (
                "[scenario]\nname = \"x\"\n[population]\nsize = 4\n[population]\nsize = 8",
                "duplicate [population] section",
            ),
            (
                "[scenario]\nname = \"x\"\n[population]\nsize = 4\nsize = 8",
                "duplicate [population] key `size`",
            ),
            (
                "[scenario]\nname = \"x\"\n[population]\nfit-to-paper = 1",
                "`fit-to-paper` must be a boolean",
            ),
            (
                "[scenario]\nname = \"x\"\n[axes]\nworkloads = []",
                "at least one value",
            ),
        ] {
            let e = Scenario::parse(src).unwrap_err();
            assert!(e.message.contains(needle), "`{src}` -> {e}");
        }
    }

    #[test]
    fn comments_and_hex_literals_parse() {
        let src = "[scenario] # trailing\nname = \"x # not a comment\" # real comment\n[axes]\nseeds = [0xFF] # hex";
        let s = Scenario::parse(src).unwrap();
        assert_eq!(s.name, "x # not a comment");
        assert_eq!(s.seeds, vec![255]);
    }
}
