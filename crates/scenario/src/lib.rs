//! # dmpb-scenario — the scenario campaign engine
//!
//! The proxy-benchmark methodology pays off when it is *swept*: workloads
//! × clusters × microarchitectures × data scales × seeds, the way the
//! BigDataBench line of work positions motif proxies as a scalable
//! methodology.  This crate turns such experiments into data:
//!
//! 1. **A declarative scenario DSL** ([`dsl`]) — a hand-rolled
//!    TOML-subset parser (no dependencies, in the `crates/compat` spirit)
//!    that names axes over the existing registries: workloads
//!    ([`WorkloadKind`](dmpb_workloads::WorkloadKind)'s `FromStr`),
//!    clusters ([`ClusterConfig::by_name`](dmpb_workloads::ClusterConfig::by_name)),
//!    architectures ([`ArchProfile::by_name`](dmpb_perfmodel::arch::ArchProfile::by_name)),
//!    sample sizes and seeds, plus include/exclude filters.
//! 2. **Deterministic expansion** ([`matrix`]) — the axes expand to a
//!    cartesian campaign matrix in a fixed order with per-cell seeds
//!    derived exactly as the suite runner derives them, so a default
//!    campaign reproduces [`SuiteRunner::run_all`] byte for byte.
//! 3. **A content-addressed result store** ([`store`]) — each cell is
//!    fingerprinted (workload + stack + full cluster/tuning-cluster
//!    configuration + scale + seed + [`CODE_MODEL_VERSION`]) with the
//!    workspace FNV hasher; results persist as JSON lines — either one
//!    legacy file or a sharded store directory (`segment-<k>.jsonl` per
//!    `fingerprint % N` shard, plus a sidecar index for replay-free
//!    warm opens) — and re-runs skip every already-computed cell,
//!    byte-identically.
//! 4. **A batch campaign runner** ([`runner`]) — cells are batched onto
//!    one persistent work-stealing
//!    [`WorkerPool`](dmpb_motifs::workers::WorkerPool) shared with the
//!    per-cluster [`SuiteRunner`]s (and their tuning caches), so a
//!    campaign tunes each (workload, tuning-cluster) pair once no matter
//!    how many cells sweep it.
//!
//! The paper-table binaries (`table6`, `fig4`, `fig10`, `table3`) are
//! thin renderers over the built-in scenarios in [`builtin`]; the
//! `campaign` binary runs any scenario file, diffs against stored
//! baselines and gates on accuracy regressions.
//!
//! [`SuiteRunner`]: dmpb_core::runner::SuiteRunner
//! [`SuiteRunner::run_all`]: dmpb_core::runner::SuiteRunner::run_all

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builtin;
pub mod dsl;
pub mod matrix;
pub mod runner;
pub mod store;

pub use dsl::{ParseError, Scenario};
pub use matrix::{CampaignCell, CellFilter, PopulationCell, PopulationPlan};
pub use runner::{
    CampaignDiff, CampaignError, CampaignReport, CampaignRunner, CellObserver, CellOutcome,
};
pub use store::{
    compact_sharded_store, compact_store, load_records_recovering, read_records, read_store_meta,
    read_store_records, segment_path, shard_for, CellResult, CompactionStats, LoadedRecords,
    PopulationResult, ResultStore, StoreStats, TornTail, DEFAULT_STORE_SHARDS, META_FILE,
    SIDECAR_FILE,
};

/// Version of the modelled methodology a stored result was computed
/// under.  Part of every cell fingerprint: bump it whenever a change to
/// the performance model, tuner, kernels or seed derivation would make
/// previously stored results stale — old entries then simply never hit.
/// History: 2 — PR 8's granule-streamed kernels changed every kernel
/// checksum (the reduce is an exact integer monoid over per-granule
/// outcomes instead of one sequential fold).  3 — PR 10's population
/// fingerprint segment: every cell address gains a `|population:…`
/// segment (`-` for named workloads, `spec/rank/member` for synthetic
/// population members) so synthetic cells can never shadow, or be
/// served, a named workload's stored results.
pub const CODE_MODEL_VERSION: u32 = 3;
