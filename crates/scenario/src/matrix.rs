//! Deterministic expansion of a [`Scenario`] into its campaign matrix.
//!
//! The axes expand as nested loops in a fixed order — clusters ▸
//! architectures ▸ elements ▸ seeds ▸ workloads (workloads innermost, so
//! each suite slice is contiguous) — and the include/exclude filters are
//! applied during expansion.  Expansion is a pure function of the
//! scenario: expanding the same scenario twice yields the same cells in
//! the same order with the same fingerprints, which is what lets the
//! content-addressed [`ResultStore`](crate::store::ResultStore) serve
//! re-runs.
//!
//! Each cell's sample-execution seed is *derived*, not taken verbatim:
//! `derive_seed(base_seed, workload's position in WorkloadKind::ALL)` —
//! exactly the derivation [`SuiteRunner::run_all`] uses — so a campaign
//! over the default axes reproduces the legacy suite byte for byte.
//!
//! [`SuiteRunner::run_all`]: dmpb_core::runner::SuiteRunner::run_all

use dmpb_core::fnv::hash_bytes;
use dmpb_core::runner::fingerprint_cluster;
use dmpb_datagen::rng::derive_seed;
use dmpb_perfmodel::arch::ArchProfile;
use dmpb_population::{BudgetedPopulation, PopulationGenerator, PopulationSpec};
use dmpb_workloads::{ClusterConfig, Workload, WorkloadKind};

use crate::dsl::{Scenario, DEFAULT_ARCHITECTURE};

/// A predicate over campaign cells: every named axis must match.  Used
/// for the scenario DSL's `[[include]]` / `[[exclude]]` tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellFilter {
    /// Match cells of this workload.
    pub workload: Option<WorkloadKind>,
    /// Match cells on this cluster (slug).
    pub cluster: Option<String>,
    /// Match cells with this architecture override (`"default"` matches
    /// cells without an override).
    pub architecture: Option<String>,
    /// Match cells with this sample size.
    pub elements: Option<usize>,
    /// Match cells derived from this base seed.
    pub seed: Option<u64>,
}

impl CellFilter {
    /// Whether `cell` satisfies every axis this filter names.
    pub fn matches(&self, cell: &CampaignCell) -> bool {
        self.workload.map_or(true, |w| w == cell.kind)
            && self
                .cluster
                .as_ref()
                .map_or(true, |c| *c == cell.cluster_name)
            && self
                .architecture
                .as_ref()
                .map_or(true, |a| *a == cell.architecture)
            && self.elements.map_or(true, |e| e == cell.elements)
            && self.seed.map_or(true, |s| s == cell.base_seed)
    }
}

/// The synthetic-population identity of a campaign cell, when the cell
/// runs a [`SyntheticWorkload`](dmpb_population::SyntheticWorkload)
/// instead of a named paper workload.
///
/// Everything that determines *which* synthetic workload runs is here:
/// the generative spec, the member's rank within the population, and the
/// member's own content hash (over its full `describe_json()`, i.e. the
/// sampled topology, kernel mix and data shape).  All three feed the
/// cell [fingerprint](CampaignCell::fingerprint), so a synthetic cell
/// can never collide with a named workload's address — or with a member
/// of a differently-parameterized population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationCell {
    /// The generative spec the member was sampled from.
    pub spec: PopulationSpec,
    /// The member's rank within the population (`0..size`).
    pub rank: u32,
    /// FNV hash of the member's `describe_json()` — its full sampled
    /// identity.
    pub member_hash: u64,
    /// The member's concrete topology-family slug (e.g. `"fork-join"`).
    pub family: String,
    /// The member's display label (e.g. `"synthetic-fork-join-0007"`).
    pub label: String,
}

/// How a scenario's population expands after duration-budget
/// truncation — telemetry attached to the campaign report so truncation
/// is visible, not silent.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationPlan {
    /// The spec as written in the scenario.
    pub spec: PopulationSpec,
    /// Axis combinations (clusters × architectures × elements × seeds)
    /// each member is swept across.
    pub combos: usize,
    /// The population size before truncation.
    pub full_size: u32,
    /// Members kept per axis combination (a rank prefix).
    pub planned: u32,
    /// The per-combination wall budget applied, if any (the scenario's
    /// campaign-wide budget divided by `combos`).
    pub budget_secs: Option<f64>,
    /// Summed modeled cost of the kept members, in seconds.
    pub modeled_cost_secs: f64,
}

impl PopulationPlan {
    /// Whether the budget dropped any member.
    pub fn truncated(&self) -> bool {
        self.planned < self.full_size
    }
}

/// One point of the campaign matrix: a (workload, cluster, architecture,
/// scale, seed) combination, plus the tuning-cluster context it executes
/// under.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Position in the expanded (post-filter) matrix.
    pub index: usize,
    /// The workload of this cell.
    pub kind: WorkloadKind,
    /// Cluster slug (resolves via [`ClusterConfig::by_name`]).
    pub cluster_name: String,
    /// Architecture override slug, or `"default"` for the cluster's own
    /// processor.
    pub architecture: String,
    /// Sample-execution size (the data-scale axis).
    pub elements: usize,
    /// The base seed this cell's seed was derived from.
    pub base_seed: u64,
    /// The derived per-cell sample-execution seed.
    pub seed: u64,
    /// Tuning-cluster slug, if the scenario pins one; `None` tunes on the
    /// cell's own (architecture-overridden) cluster.
    pub tuning_cluster_name: Option<String>,
    /// Synthetic-population identity, if this cell runs a population
    /// member rather than the named workload itself ([`Self::kind`] is
    /// then the member's *carrier* — the nearest named workload by motif
    /// composition).
    pub population: Option<PopulationCell>,
}

impl CampaignCell {
    /// The cell's measurement cluster, with the architecture override
    /// applied.
    ///
    /// # Panics
    ///
    /// Panics if the cell names an unknown cluster or architecture; cells
    /// produced by [`Scenario::expand`] from a parsed scenario are always
    /// valid.
    pub fn cluster(&self) -> ClusterConfig {
        let mut cluster = ClusterConfig::by_name(&self.cluster_name)
            .unwrap_or_else(|| panic!("unknown cluster `{}`", self.cluster_name));
        if self.architecture != DEFAULT_ARCHITECTURE {
            cluster.node.arch = ArchProfile::by_name(&self.architecture)
                .unwrap_or_else(|| panic!("unknown architecture `{}`", self.architecture));
        }
        cluster
    }

    /// The cluster the cell's proxy is tuned on: the pinned tuning
    /// cluster if the scenario names one, otherwise [`Self::cluster`].
    pub fn tuning_cluster(&self) -> ClusterConfig {
        match &self.tuning_cluster_name {
            Some(name) => ClusterConfig::by_name(name)
                .unwrap_or_else(|| panic!("unknown tuning cluster `{name}`")),
            None => self.cluster(),
        }
    }

    /// The content address of this cell: an FNV fingerprint over
    /// everything that determines its result — the code-model version,
    /// the workload and its stack, the full measurement- and
    /// tuning-cluster configurations, the sample size, the derived seed,
    /// and (for population members) the full synthetic identity:
    /// population-spec hash, member rank and member content hash.  Named
    /// cells carry a literal `population:-` segment, so a synthetic cell
    /// whose carrier matches a named workload still addresses a disjoint
    /// result.  Campaign identity (scenario name, cell index, filters)
    /// is deliberately *not* part of the address, so different scenarios
    /// share results for identical cells.
    pub fn fingerprint(&self, version: u32) -> u64 {
        let population = match &self.population {
            Some(p) => format!(
                "{:016x}/{}/{:016x}",
                p.spec.spec_hash(),
                p.rank,
                p.member_hash
            ),
            None => "-".to_string(),
        };
        hash_bytes(
            format!(
                "campaign-cell|v{}|{}|{}|cluster:{:016x}|tuning:{:016x}|elements:{}|seed:{:016x}|population:{}",
                version,
                self.kind.short_name(),
                self.kind.framework(),
                fingerprint_cluster(&self.cluster()),
                fingerprint_cluster(&self.tuning_cluster()),
                self.elements,
                self.seed,
                population,
            )
            .as_bytes(),
        )
    }
}

impl Scenario {
    /// Expands the scenario into its deterministic campaign matrix.
    ///
    /// See the [module docs](crate::matrix) for the loop order and
    /// determinism contract.  Cells dropped by the include/exclude
    /// filters do not appear (and do not consume indices).
    pub fn expand(&self) -> Vec<CampaignCell> {
        let population = self.budgeted_population();
        let mut cells = Vec::new();
        for cluster in &self.clusters {
            for architecture in &self.architectures {
                for &elements in &self.elements {
                    for &base_seed in &self.seeds {
                        for &kind in &self.workloads {
                            let position = WorkloadKind::ALL
                                .iter()
                                .position(|&k| k == kind)
                                .expect("every WorkloadKind appears in ALL")
                                as u64;
                            let cell = CampaignCell {
                                index: cells.len(),
                                kind,
                                cluster_name: cluster.clone(),
                                architecture: architecture.clone(),
                                elements,
                                base_seed,
                                seed: derive_seed(base_seed, position),
                                tuning_cluster_name: self.tuning_cluster.clone(),
                                population: None,
                            };
                            if self.admits(&cell) {
                                cells.push(cell);
                            }
                        }
                        if let (Some(budgeted), Some(spec)) = (&population, self.population) {
                            for member in &budgeted.members {
                                // Seed streams `0..ALL.len()` belong to the
                                // named workloads; population members get
                                // the streams after them, keyed by rank.
                                let stream =
                                    WorkloadKind::ALL.len() as u64 + u64::from(member.rank());
                                let cell = CampaignCell {
                                    index: cells.len(),
                                    kind: member.kind(),
                                    cluster_name: cluster.clone(),
                                    architecture: architecture.clone(),
                                    elements,
                                    base_seed,
                                    seed: derive_seed(base_seed, stream),
                                    tuning_cluster_name: self.tuning_cluster.clone(),
                                    population: Some(PopulationCell {
                                        spec,
                                        rank: member.rank(),
                                        member_hash: member.member_hash(),
                                        family: member.family().name().to_string(),
                                        label: member.label().to_string(),
                                    }),
                                };
                                if self.admits(&cell) {
                                    cells.push(cell);
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The scenario's population after per-combination budget scaling:
    /// the campaign-wide `duration-budget-secs` is split evenly across
    /// the axis combinations each member is swept over, then the
    /// population is truncated to the rank prefix whose summed *modeled*
    /// cost fits.  `None` when the scenario has no `[population]`.
    fn budgeted_population(&self) -> Option<BudgetedPopulation> {
        let spec = self.population?;
        let combos = self.axis_combinations();
        let mut effective = spec;
        effective.duration_budget_secs = spec.duration_budget_secs.map(|b| b / combos as f64);
        let generator = PopulationGenerator::new(effective)
            .expect("scenario population spec is validated at parse time");
        Some(generator.generate_budgeted())
    }

    /// How the scenario's population expands — spec, axis combinations,
    /// per-combination budget and the truncation it produced.  `None`
    /// when the scenario has no `[population]`.
    pub fn population_plan(&self) -> Option<PopulationPlan> {
        let spec = self.population?;
        let budgeted = self.budgeted_population()?;
        Some(PopulationPlan {
            spec,
            combos: self.axis_combinations(),
            full_size: budgeted.full_size,
            planned: budgeted.members.len() as u32,
            budget_secs: budgeted.budget_secs,
            modeled_cost_secs: budgeted.modeled_cost_secs,
        })
    }

    /// Axis combinations each workload (named or synthetic) is swept
    /// over: clusters × architectures × elements × seeds.
    fn axis_combinations(&self) -> usize {
        (self.clusters.len() * self.architectures.len() * self.elements.len() * self.seeds.len())
            .max(1)
    }

    /// Whether the include/exclude filters keep `cell`.
    pub fn admits(&self, cell: &CampaignCell) -> bool {
        if self.exclude.iter().any(|f| f.matches(cell)) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|f| f.matches(cell))
    }

    /// Number of cells before filtering (the raw cartesian product,
    /// including budget-truncated population members).
    pub fn matrix_size(&self) -> usize {
        let per_combo =
            self.workloads.len() + self.budgeted_population().map_or(0, |b| b.members.len());
        per_combo * self.axis_combinations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_core::runner::{DEFAULT_BASE_SEED, SAMPLE_ELEMENTS};

    #[test]
    fn default_scenario_expands_to_one_suite_in_all_order() {
        let cells = Scenario::with_defaults("d").expand();
        assert_eq!(cells.len(), 8);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.kind, WorkloadKind::ALL[i]);
            assert_eq!(cell.elements, SAMPLE_ELEMENTS);
            assert_eq!(cell.base_seed, DEFAULT_BASE_SEED);
            assert_eq!(cell.seed, derive_seed(DEFAULT_BASE_SEED, i as u64));
            assert_eq!(cell.cluster(), ClusterConfig::five_node_westmere());
            assert_eq!(cell.tuning_cluster(), cell.cluster());
        }
    }

    #[test]
    fn expansion_order_is_clusters_archs_elements_seeds_workloads() {
        let mut s = Scenario::with_defaults("order");
        s.workloads = vec![WorkloadKind::TeraSort, WorkloadKind::KMeans];
        s.clusters = vec![
            "five-node-westmere".to_string(),
            "three-node-haswell".to_string(),
        ];
        s.seeds = vec![1, 2];
        let cells = s.expand();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].cluster_name, "five-node-westmere");
        assert_eq!(cells[0].base_seed, 1);
        assert_eq!(cells[0].kind, WorkloadKind::TeraSort);
        assert_eq!(cells[1].kind, WorkloadKind::KMeans);
        assert_eq!(cells[2].base_seed, 2);
        assert_eq!(cells[4].cluster_name, "three-node-haswell");
    }

    #[test]
    fn architecture_override_swaps_the_processor_only() {
        let mut s = Scenario::with_defaults("arch");
        s.clusters = vec!["three-node-westmere-64gb".to_string()];
        s.architectures = vec!["haswell".to_string()];
        let cell = &s.expand()[0];
        let cluster = cell.cluster();
        let legacy = ClusterConfig::three_node_haswell();
        assert_eq!(cluster.node.arch, legacy.node.arch);
        assert_eq!(cluster.node.memory_gb, legacy.node.memory_gb);
        assert_eq!(cluster.total_nodes, legacy.total_nodes);
    }

    #[test]
    fn filters_drop_and_keep_cells() {
        let mut s = Scenario::with_defaults("filters");
        s.exclude.push(CellFilter {
            workload: Some(WorkloadKind::TeraSort),
            ..CellFilter::default()
        });
        let cells = s.expand();
        assert_eq!(cells.len(), 7);
        assert!(cells.iter().all(|c| c.kind != WorkloadKind::TeraSort));
        // Indices stay dense after filtering.
        assert_eq!(
            cells.iter().map(|c| c.index).collect::<Vec<_>>(),
            (0..7).collect::<Vec<_>>()
        );

        s.include.push(CellFilter {
            workload: Some(WorkloadKind::KMeans),
            ..CellFilter::default()
        });
        let cells = s.expand();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].kind, WorkloadKind::KMeans);
    }

    #[test]
    fn fingerprints_are_stable_and_axis_sensitive() {
        let s = Scenario::with_defaults("fp");
        let a = s.expand();
        let b = s.expand();
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca, cb);
            assert_eq!(ca.fingerprint(1), cb.fingerprint(1));
            assert_ne!(
                ca.fingerprint(1),
                ca.fingerprint(2),
                "version must rotate the address"
            );
        }
        // Any axis change moves the address.
        let mut other = a[0].clone();
        other.elements += 1;
        assert_ne!(other.fingerprint(1), a[0].fingerprint(1));
        let mut other = a[0].clone();
        other.seed ^= 1;
        assert_ne!(other.fingerprint(1), a[0].fingerprint(1));
        let mut other = a[0].clone();
        other.architecture = "haswell".to_string();
        assert_ne!(other.fingerprint(1), a[0].fingerprint(1));
    }

    #[test]
    fn pinned_tuning_cluster_is_used_for_tuning_only() {
        let mut s = Scenario::with_defaults("tuning");
        s.clusters = vec!["three-node-haswell".to_string()];
        s.tuning_cluster = Some("five-node-westmere".to_string());
        let cell = &s.expand()[0];
        assert_eq!(cell.cluster(), ClusterConfig::three_node_haswell());
        assert_eq!(cell.tuning_cluster(), ClusterConfig::five_node_westmere());
    }

    #[test]
    fn matrix_size_counts_the_unfiltered_product() {
        let mut s = Scenario::with_defaults("size");
        s.seeds = vec![1, 2, 3];
        assert_eq!(s.matrix_size(), 24);
    }

    fn population_scenario(size: u32) -> Scenario {
        let mut s = Scenario::with_defaults("pop");
        s.population = Some(PopulationSpec {
            size,
            base_seed: 0xFEED,
            ..PopulationSpec::default()
        });
        s
    }

    #[test]
    fn population_cells_expand_after_named_cells_in_rank_order() {
        let s = population_scenario(4);
        let cells = s.expand();
        assert_eq!(cells.len(), 12);
        assert_eq!(s.matrix_size(), 12);
        for (i, cell) in cells.iter().take(8).enumerate() {
            assert_eq!(cell.kind, WorkloadKind::ALL[i]);
            assert!(cell.population.is_none());
        }
        for (rank, cell) in cells.iter().skip(8).enumerate() {
            let pop = cell.population.as_ref().expect("population cell");
            assert_eq!(pop.rank, rank as u32);
            assert_eq!(cell.index, 8 + rank);
            // Population seed streams come after the named workloads'.
            assert_eq!(
                cell.seed,
                derive_seed(cell.base_seed, WorkloadKind::ALL.len() as u64 + rank as u64)
            );
            assert!(pop.label.starts_with("synthetic-"));
        }
        // Expansion is deterministic.
        assert_eq!(cells, s.expand());
    }

    #[test]
    fn population_fingerprints_are_disjoint_from_named_and_each_other() {
        let s = population_scenario(4);
        let cells = s.expand();
        let mut prints: Vec<u64> = cells.iter().map(|c| c.fingerprint(3)).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(
            prints.len(),
            cells.len(),
            "every cell addresses a distinct result"
        );

        // A synthetic cell matching a named cell on every legacy axis
        // (kind, cluster, elements, seed) still has a distinct address.
        let synthetic = &cells[8];
        let mut named = synthetic.clone();
        named.population = None;
        assert_ne!(named.fingerprint(3), synthetic.fingerprint(3));

        // Changing any synthetic identity component moves the address.
        let mut other = synthetic.clone();
        other.population.as_mut().unwrap().member_hash ^= 1;
        assert_ne!(other.fingerprint(3), synthetic.fingerprint(3));
        let mut other = synthetic.clone();
        other.population.as_mut().unwrap().rank += 1;
        assert_ne!(other.fingerprint(3), synthetic.fingerprint(3));
        let mut other = synthetic.clone();
        other.population.as_mut().unwrap().spec.ai_fraction = 0.9;
        assert_ne!(other.fingerprint(3), synthetic.fingerprint(3));
    }

    #[test]
    fn population_budget_truncates_to_a_rank_prefix_per_combo() {
        let mut unbudgeted = population_scenario(8);
        unbudgeted.workloads.clear();
        let full = unbudgeted.expand();
        assert_eq!(full.len(), 8);

        let mut budgeted = unbudgeted.clone();
        let spec = budgeted.population.as_mut().unwrap();
        // Enough for a few members but not all eight.
        spec.duration_budget_secs = Some(3.0);
        let kept = budgeted.expand();
        assert!(!kept.is_empty() && kept.len() < full.len());
        // Truncation keeps a rank prefix: same members, same addresses
        // (the budget itself is deliberately not part of the address).
        for (k, f) in kept.iter().zip(&full) {
            assert_eq!(k.fingerprint(3), f.fingerprint(3));
            assert_eq!(
                k.population.as_ref().unwrap().label,
                f.population.as_ref().unwrap().label
            );
        }

        let plan = budgeted.population_plan().expect("plan");
        assert!(plan.truncated());
        assert_eq!(plan.planned as usize, kept.len());
        assert_eq!(plan.full_size, 8);
        assert_eq!(plan.combos, 1);

        // The campaign-wide budget is split across axis combinations:
        // doubling the seed axis halves the per-combo budget.
        let mut split = budgeted.clone();
        split.seeds = vec![1, 2];
        let split_plan = split.population_plan().expect("plan");
        assert_eq!(split_plan.combos, 2);
        assert_eq!(split_plan.budget_secs, Some(1.5));
    }
}
