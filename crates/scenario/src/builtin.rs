//! The built-in scenario definitions the paper-table bench binaries run
//! on.
//!
//! Each is an ordinary scenario file — the committed copies live under
//! `examples/scenarios/` and are embedded here verbatim, so the files
//! users run with the `campaign` binary and the definitions the
//! `table6`/`fig4`/`fig10`/`table3` binaries execute are one and the
//! same source.

use crate::dsl::Scenario;

/// Source of the paper-tables scenario (Table VI + Fig. 4: the eight
/// proxies on the five-node Westmere cluster with the suite defaults).
pub const PAPER_TABLES_TOML: &str = include_str!("../../../examples/scenarios/paper_tables.toml");

/// Source of the cross-architecture scenario (Fig. 10: Westmere vs
/// Haswell, proxies tuned on the five-node cluster).
pub const CROSS_ARCHITECTURE_TOML: &str =
    include_str!("../../../examples/scenarios/cross_architecture.toml");

/// Source of the decomposition scenario (Table III: one cell per
/// workload).
pub const DECOMPOSITION_TOML: &str = include_str!("../../../examples/scenarios/decomposition.toml");

/// The parsed paper-tables scenario.
pub fn paper_tables() -> Scenario {
    Scenario::parse(PAPER_TABLES_TOML).expect("bundled paper-tables scenario parses")
}

/// The parsed cross-architecture scenario.
pub fn cross_architecture() -> Scenario {
    Scenario::parse(CROSS_ARCHITECTURE_TOML).expect("bundled cross-architecture scenario parses")
}

/// The parsed decomposition scenario.
pub fn decomposition() -> Scenario {
    Scenario::parse(DECOMPOSITION_TOML).expect("bundled decomposition scenario parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_core::runner::{DEFAULT_BASE_SEED, SAMPLE_ELEMENTS};
    use dmpb_workloads::WorkloadKind;

    #[test]
    fn paper_tables_matches_the_suite_defaults() {
        let s = paper_tables();
        assert_eq!(s.name, "paper-tables");
        assert_eq!(s.workloads, WorkloadKind::ALL.to_vec());
        assert_eq!(s.clusters, vec!["five-node-westmere".to_string()]);
        assert_eq!(s.elements, vec![SAMPLE_ELEMENTS]);
        assert_eq!(s.seeds, vec![DEFAULT_BASE_SEED]);
        assert_eq!(s.tuning_cluster, None);
        assert_eq!(s.expand().len(), 8);
    }

    #[test]
    fn cross_architecture_pins_the_tuning_cluster() {
        let s = cross_architecture();
        assert_eq!(s.architectures, vec!["westmere", "haswell"]);
        assert_eq!(s.clusters, vec!["three-node-westmere-64gb".to_string()]);
        assert_eq!(s.tuning_cluster.as_deref(), Some("five-node-westmere"));
        assert_eq!(s.expand().len(), 16);
    }

    #[test]
    fn decomposition_enumerates_the_eight_workloads() {
        let cells = decomposition().expand();
        assert_eq!(
            cells.iter().map(|c| c.kind).collect::<Vec<_>>(),
            WorkloadKind::ALL.to_vec()
        );
    }
}
