//! Lock-free kernel execution profiling at the registry dispatch boundary.
//!
//! The [`KernelProfiler`] answers the question the analytic cost models
//! cannot: where does *sample execution* actually spend its time?  Every
//! [`MotifKind`] gets a cache-line-padded slot of
//! relaxed atomic counters — invocations, elements processed, cumulative
//! nanoseconds — plus a lock-free
//! [`LatencyHistogram`], and
//! the [`BufferPool`](crate::BufferPool) feeds per-capacity-class lease
//! counts into the same profiler so bucket sizing can follow observed
//! demand.
//!
//! Three properties make the profiler safe to leave compiled into the
//! hot dispatch path:
//!
//! * **Near-zero overhead when disabled.**  The executor hoists one
//!   relaxed [`KernelProfiler::enabled`] load per DAG execution; disabled
//!   runs take no timestamps and touch no counters.
//! * **Lock-free when enabled.**  Recording is a handful of relaxed
//!   atomic adds on a `#[repr(align(128))]` slot owned by the executed
//!   kind, so concurrent workers executing different motifs never share
//!   a cache line, and workers executing the same motif contend only on
//!   that motif's counters.
//! * **No effect on results.**  Profiling changes *how execution is
//!   observed*, never what it computes: kernel checksums, report bytes
//!   and campaign digests are byte-identical with profiling on or off
//!   (the executor runs unfused while profiling so per-kind attribution
//!   stays exact — superkernels produce the same checksums either way).
//!
//! A [`KernelProfile`] snapshot serializes to JSON lines via
//! [`dmpb_metrics::json`] (`campaign --profile-out`, the `campaignd`
//! `/metrics` page renders the same counters), and two consumers close
//! the profile-guided loop: [`KernelProfile::bucket_plan`] derives
//! [`BufferPool`](crate::BufferPool) prewarm sizes from the observed
//! lease-size distribution, and [`rank_fusion_candidates`] orders
//! adjacent kernel pairs by observed cost to pick superkernel fusion
//! targets (see [`crate::kernel::FusedKernel`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use dmpb_metrics::histogram::{HistogramSnapshot, LatencyHistogram};
use dmpb_metrics::json::ObjectWriter;

use crate::class::MotifKind;

/// Number of profiled kinds (one slot per [`MotifKind`]).
const KINDS: usize = MotifKind::ALL.len();

/// Number of power-of-two lease capacity classes tracked per element
/// type (mirrors the [`BufferPool`](crate::BufferPool) bucket classes).
pub const LEASE_CLASSES: usize = usize::BITS as usize + 1;

/// The capacity class of a lease of `len` elements: the smallest `b`
/// with `2^b >= len` (class 0 covers empty and single-element leases).
pub fn lease_class(len: usize) -> usize {
    (usize::BITS - len.max(1).saturating_sub(1).leading_zeros()) as usize
}

/// One motif kind's counters, padded to two cache lines so concurrent
/// recorders of *different* kinds never bounce a line between cores.
#[repr(align(128))]
#[derive(Debug, Default)]
struct KindSlot {
    invocations: AtomicU64,
    elements: AtomicU64,
    ns: AtomicU64,
    latency: LatencyHistogram,
}

/// Lock-free, per-[`MotifKind`] execution counters plus buffer-lease
/// size distributions (see the [module documentation](self)).
///
/// Most callers use the process-wide [`KernelProfiler::global`]; tests
/// construct private instances.
#[derive(Debug)]
pub struct KernelProfiler {
    enabled: AtomicBool,
    slots: [KindSlot; KINDS],
    lease_f64: [AtomicU64; LEASE_CLASSES],
    lease_f32: [AtomicU64; LEASE_CLASSES],
}

impl Default for KernelProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelProfiler {
    /// A disabled profiler with zeroed counters.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            slots: std::array::from_fn(|_| KindSlot::default()),
            lease_f64: std::array::from_fn(|_| AtomicU64::new(0)),
            lease_f32: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The process-wide profiler the executor and buffer pool sample
    /// into.
    pub fn global() -> &'static KernelProfiler {
        static PROFILER: OnceLock<KernelProfiler> = OnceLock::new();
        PROFILER.get_or_init(KernelProfiler::new)
    }

    /// Whether sampling is on.  One relaxed load — the *only* cost the
    /// profiler imposes on a disabled hot path.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns sampling on or off, returning the previous state so a
    /// scoped caller can restore it.  Counters are kept either way;
    /// pair with [`KernelProfiler::reset`] for a clean measurement
    /// window.
    pub fn set_enabled(&self, enabled: bool) -> bool {
        self.enabled.swap(enabled, Ordering::Relaxed)
    }

    /// Zeroes every counter (enablement is untouched).  Concurrent
    /// recorders may slip an observation past a racing reset; callers
    /// reset between executions, not during one.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.invocations.store(0, Ordering::Relaxed);
            slot.elements.store(0, Ordering::Relaxed);
            slot.ns.store(0, Ordering::Relaxed);
            slot.latency.reset();
        }
        for counter in self.lease_f64.iter().chain(&self.lease_f32) {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// Records one kernel execution.  Callers check
    /// [`KernelProfiler::enabled`] first (and so avoid taking the
    /// timestamp at all when sampling is off).
    pub fn record(&self, kind: MotifKind, elements: usize, elapsed: Duration) {
        let slot = &self.slots[kind as usize];
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        slot.invocations.fetch_add(1, Ordering::Relaxed);
        slot.elements.fetch_add(elements as u64, Ordering::Relaxed);
        slot.ns.fetch_add(ns, Ordering::Relaxed);
        slot.latency.record_ns(ns);
    }

    /// Records one `f64` buffer lease of `len` elements (called by the
    /// pool only while enabled).
    pub fn record_lease_f64(&self, len: usize) {
        self.lease_f64[lease_class(len)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `f32` buffer lease of `len` elements.
    pub fn record_lease_f32(&self, len: usize) {
        self.lease_f32[lease_class(len)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> KernelProfile {
        KernelProfile {
            kinds: MotifKind::ALL
                .iter()
                .zip(&self.slots)
                .map(|(&kind, slot)| KernelProfileEntry {
                    kind,
                    invocations: slot.invocations.load(Ordering::Relaxed),
                    elements: slot.elements.load(Ordering::Relaxed),
                    ns: slot.ns.load(Ordering::Relaxed),
                    latency: slot.latency.snapshot(),
                })
                .collect(),
            lease_f64: std::array::from_fn(|i| self.lease_f64[i].load(Ordering::Relaxed)),
            lease_f32: std::array::from_fn(|i| self.lease_f32[i].load(Ordering::Relaxed)),
        }
    }
}

/// One [`MotifKind`]'s share of a [`KernelProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelProfileEntry {
    /// The profiled motif implementation.
    pub kind: MotifKind,
    /// Kernel executions recorded.
    pub invocations: u64,
    /// Elements processed across all invocations.
    pub elements: u64,
    /// Cumulative execution time in nanoseconds.
    pub ns: u64,
    /// Per-invocation latency distribution.
    pub latency: HistogramSnapshot,
}

/// A point-in-time snapshot of a [`KernelProfiler`]: the raw material
/// for dispatch reordering, superkernel selection and pool prewarming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// Per-kind counters in [`MotifKind::ALL`] order (all 33 entries,
    /// including never-invoked kinds).
    pub kinds: Vec<KernelProfileEntry>,
    /// `f64` lease counts per power-of-two capacity class.
    pub lease_f64: [u64; LEASE_CLASSES],
    /// `f32` lease counts per power-of-two capacity class.
    pub lease_f32: [u64; LEASE_CLASSES],
}

impl KernelProfile {
    /// Total kernel invocations across all kinds.
    pub fn total_invocations(&self) -> u64 {
        self.kinds.iter().map(|e| e.invocations).sum()
    }

    /// Total elements processed across all kinds.
    pub fn total_elements(&self) -> u64 {
        self.kinds.iter().map(|e| e.elements).sum()
    }

    /// Total recorded execution time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.kinds.iter().map(|e| e.ns).sum()
    }

    /// The counters for one kind.
    pub fn entry(&self, kind: MotifKind) -> &KernelProfileEntry {
        &self.kinds[kind as usize]
    }

    /// Invoked kinds ordered by cumulative time, hottest first (ties
    /// break on invocations, then [`MotifKind::ALL`] order, so the
    /// ranking is deterministic).
    pub fn hottest(&self) -> Vec<&KernelProfileEntry> {
        let mut hot: Vec<&KernelProfileEntry> =
            self.kinds.iter().filter(|e| e.invocations > 0).collect();
        hot.sort_by(|a, b| (b.ns, b.invocations, a.kind).cmp(&(a.ns, a.invocations, b.kind)));
        hot
    }

    /// Serializes the profile as JSON lines: one `record:"profile"`
    /// header with the totals, one `record:"kind"` line per *invoked*
    /// kind (hottest first), and one `record:"lease"` line per non-empty
    /// capacity class.  Every line is a flat object readable by
    /// [`dmpb_metrics::json::parse_object`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut header = ObjectWriter::new();
        header.field_str("record", "profile");
        header.field_int(
            "kinds_invoked",
            self.kinds.iter().filter(|e| e.invocations > 0).count() as i64,
        );
        header.field_int("invocations", self.total_invocations() as i64);
        header.field_int("elements", self.total_elements() as i64);
        header.field_int("ns", self.total_ns() as i64);
        out.push_str(&header.finish());
        out.push('\n');
        for entry in self.hottest() {
            let mut w = ObjectWriter::new();
            w.field_str("record", "kind");
            w.field_str("kind", entry.kind.name());
            w.field_str("class", entry.kind.class().name());
            w.field_int("invocations", entry.invocations as i64);
            w.field_int("elements", entry.elements as i64);
            w.field_int("ns", entry.ns as i64);
            w.field_f64("mean_ns", entry.latency.mean_ns().unwrap_or(0.0));
            w.field_int("p50_ns", entry.latency.quantile_ns(0.5).unwrap_or(0) as i64);
            w.field_int(
                "p95_ns",
                entry.latency.quantile_ns(0.95).unwrap_or(0) as i64,
            );
            w.field_int(
                "p99_ns",
                entry.latency.quantile_ns(0.99).unwrap_or(0) as i64,
            );
            out.push_str(&w.finish());
            out.push('\n');
        }
        for (label, classes) in [("f64", &self.lease_f64), ("f32", &self.lease_f32)] {
            for (class, &count) in classes.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let mut w = ObjectWriter::new();
                w.field_str("record", "lease");
                w.field_str("type", label);
                w.field_int("capacity", (1u64 << class.min(62)) as i64);
                w.field_int("count", count as i64);
                out.push_str(&w.finish());
                out.push('\n');
            }
        }
        out
    }

    /// Derives a [`BufferPool`](crate::BufferPool) prewarm plan from the
    /// observed lease-size distribution: every capacity class that saw
    /// leases gets buffers proportional to its share of the traffic,
    /// between 1 and 8 per class.  Deterministic in the profile.
    pub fn bucket_plan(&self) -> BucketPlan {
        fn plan(classes: &[u64; LEASE_CLASSES]) -> Vec<PrewarmBucket> {
            let max = classes.iter().copied().max().unwrap_or(0).max(1);
            classes
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(class, &count)| PrewarmBucket {
                    capacity: 1usize << class.min(62),
                    count: ((count * 8).div_ceil(max) as usize).clamp(1, 8),
                })
                .collect()
        }
        BucketPlan {
            f64s: plan(&self.lease_f64),
            f32s: plan(&self.lease_f32),
        }
    }
}

/// One prewarm instruction of a [`BucketPlan`]: hold `count` free
/// buffers of `capacity` elements ready before the first lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmBucket {
    /// Buffer capacity in elements (a power of two — the upper bound of
    /// the observed capacity class).
    pub capacity: usize,
    /// Buffers to keep ready.
    pub count: usize,
}

/// A profile-derived pool prewarm plan (see
/// [`KernelProfile::bucket_plan`] and
/// [`BufferPool::prewarm`](crate::BufferPool::prewarm)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BucketPlan {
    /// Prewarm instructions for `f64` buffers.
    pub f64s: Vec<PrewarmBucket>,
    /// Prewarm instructions for `f32` buffers.
    pub f32s: Vec<PrewarmBucket>,
}

impl BucketPlan {
    /// Total buffers the plan asks for, across both element types.
    pub fn total_buffers(&self) -> usize {
        self.f64s.iter().chain(&self.f32s).map(|b| b.count).sum()
    }
}

/// An adjacent kernel pair ranked as a superkernel fusion candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionCandidate {
    /// The `(first, second)` motifs of the adjacent edges.
    pub pair: (MotifKind, MotifKind),
    /// How often the pair appears adjacently (one count per DAG-plan
    /// occurrence handed in).
    pub occurrences: u64,
    /// Combined profiled execution time of the two kinds, used to break
    /// occurrence ties in favour of the costlier pair.
    pub profiled_ns: u64,
}

/// Ranks adjacent kernel pairs as fusion candidates: by adjacency count
/// first (a superkernel only pays off where DAGs actually chain the
/// pair), then by the pair's combined profiled time, then by
/// [`MotifKind::ALL`] order for determinism.  `adjacent` carries one
/// entry per observed adjacency (duplicates count occurrences); the
/// profile supplies the cost tie-breaker.
pub fn rank_fusion_candidates(
    adjacent: &[(MotifKind, MotifKind)],
    profile: &KernelProfile,
) -> Vec<FusionCandidate> {
    let mut candidates: Vec<FusionCandidate> = Vec::new();
    for &pair in adjacent {
        match candidates.iter_mut().find(|c| c.pair == pair) {
            Some(c) => c.occurrences += 1,
            None => candidates.push(FusionCandidate {
                pair,
                occurrences: 1,
                profiled_ns: profile.entry(pair.0).ns + profile.entry(pair.1).ns,
            }),
        }
    }
    candidates.sort_by(|a, b| {
        (b.occurrences, b.profiled_ns)
            .cmp(&(a.occurrences, a.profiled_ns))
            .then_with(|| a.pair.cmp(&b.pair))
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_metrics::json::parse_object;

    #[test]
    fn disabled_profiler_reports_empty_profile() {
        let p = KernelProfiler::new();
        assert!(!p.enabled());
        let profile = p.snapshot();
        assert_eq!(profile.kinds.len(), MotifKind::ALL.len());
        assert_eq!(profile.total_invocations(), 0);
        assert!(profile.hottest().is_empty());
    }

    #[test]
    fn recording_accumulates_per_kind() {
        let p = KernelProfiler::new();
        p.set_enabled(true);
        p.record(MotifKind::QuickSort, 100, Duration::from_micros(50));
        p.record(MotifKind::QuickSort, 200, Duration::from_micros(70));
        p.record(MotifKind::Fft, 64, Duration::from_micros(5));
        let profile = p.snapshot();
        let qs = profile.entry(MotifKind::QuickSort);
        assert_eq!(qs.invocations, 2);
        assert_eq!(qs.elements, 300);
        assert_eq!(qs.ns, 120_000);
        assert_eq!(qs.latency.count, 2);
        assert_eq!(profile.entry(MotifKind::Fft).invocations, 1);
        assert_eq!(profile.entry(MotifKind::MergeSort).invocations, 0);
        assert_eq!(profile.total_invocations(), 3);
        assert_eq!(profile.total_elements(), 364);
    }

    #[test]
    fn hottest_orders_by_cumulative_time() {
        let p = KernelProfiler::new();
        p.record(MotifKind::Fft, 1, Duration::from_micros(10));
        p.record(MotifKind::QuickSort, 1, Duration::from_millis(5));
        p.record(MotifKind::MinMax, 1, Duration::from_nanos(500));
        let hot = p.snapshot();
        let hot = hot.hottest();
        let kinds: Vec<MotifKind> = hot.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![MotifKind::QuickSort, MotifKind::Fft, MotifKind::MinMax]
        );
    }

    #[test]
    fn reset_zeroes_everything_but_keeps_enablement() {
        let p = KernelProfiler::new();
        p.set_enabled(true);
        p.record(MotifKind::Relu, 10, Duration::from_micros(1));
        p.record_lease_f64(1024);
        p.reset();
        assert!(p.enabled());
        let profile = p.snapshot();
        assert_eq!(profile.total_invocations(), 0);
        assert_eq!(profile.lease_f64.iter().sum::<u64>(), 0);
        assert_eq!(profile.entry(MotifKind::Relu).latency.count, 0);
    }

    #[test]
    fn lease_classes_follow_the_pool_bucketing() {
        assert_eq!(lease_class(0), 0);
        assert_eq!(lease_class(1), 0);
        assert_eq!(lease_class(2), 1);
        assert_eq!(lease_class(1024), 10);
        assert_eq!(lease_class(1025), 11);
        let p = KernelProfiler::new();
        p.record_lease_f64(100);
        p.record_lease_f64(128);
        p.record_lease_f32(4096);
        let profile = p.snapshot();
        assert_eq!(profile.lease_f64[lease_class(100)], 2);
        assert_eq!(profile.lease_f32[lease_class(4096)], 1);
    }

    #[test]
    fn jsonl_dump_parses_line_by_line() {
        let p = KernelProfiler::new();
        p.record(MotifKind::QuickSort, 512, Duration::from_micros(80));
        p.record(MotifKind::GraphTraversal, 256, Duration::from_micros(40));
        p.record_lease_f64(200);
        let dump = p.snapshot().to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 kinds + 1 lease: {dump}");
        for line in &lines {
            parse_object(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        }
        assert!(lines[0].contains("\"record\":\"profile\""));
        assert!(
            lines[1].contains("\"kind\":\"quick-sort\""),
            "hottest first"
        );
        assert!(lines[3].contains("\"capacity\":256"));
    }

    #[test]
    fn bucket_plan_scales_with_traffic_share() {
        let p = KernelProfiler::new();
        for _ in 0..80 {
            p.record_lease_f64(1000); // class 10 dominates
        }
        p.record_lease_f64(30); // class 5 is rare
        let plan = p.snapshot().bucket_plan();
        assert_eq!(plan.f64s.len(), 2);
        let rare = plan.f64s.iter().find(|b| b.capacity == 32).unwrap();
        let hot = plan.f64s.iter().find(|b| b.capacity == 1024).unwrap();
        assert_eq!(hot.count, 8, "dominant class gets the full allowance");
        assert_eq!(rare.count, 1, "rare class still gets one buffer");
        assert!(plan.f32s.is_empty());
        assert_eq!(plan.total_buffers(), 9);
    }

    #[test]
    fn fusion_candidates_rank_by_occurrences_then_profiled_cost() {
        let p = KernelProfiler::new();
        p.record(MotifKind::QuickSort, 1, Duration::from_millis(3));
        p.record(MotifKind::MergeSort, 1, Duration::from_millis(3));
        p.record(MotifKind::GraphConstruct, 1, Duration::from_millis(2));
        p.record(MotifKind::GraphTraversal, 1, Duration::from_millis(2));
        p.record(MotifKind::MinMax, 1, Duration::from_micros(1));
        let profile = p.snapshot();
        use MotifKind::*;
        let adjacent = vec![
            (GraphConstruct, GraphTraversal),
            (QuickSort, MergeSort),
            (MinMax, QuickSort),
            (GraphConstruct, GraphTraversal),
            (QuickSort, MergeSort),
            (MinMax, QuickSort),
            (GraphConstruct, GraphTraversal),
            (QuickSort, MergeSort),
            (MinMax, QuickSort),
            (Fft, Ifft),
        ];
        let ranked = rank_fusion_candidates(&adjacent, &profile);
        assert_eq!(ranked.len(), 4);
        // Three pairs tie on occurrences; profiled time breaks the tie.
        assert_eq!(ranked[0].pair, (QuickSort, MergeSort));
        assert_eq!(ranked[0].occurrences, 3);
        assert_eq!(ranked[1].pair, (GraphConstruct, GraphTraversal));
        assert_eq!(ranked[2].pair, (MinMax, QuickSort));
        assert_eq!(ranked[3].pair, (Fft, Ifft));
        assert_eq!(ranked[3].occurrences, 1);
    }
}
