//! Declarative fork/join DAG topologies for proxy benchmarks.
//!
//! The paper models a proxy benchmark as a *DAG* of weighted data motifs —
//! and real frameworks produce genuinely branching DAGs: TensorFlow
//! Inception's parallel towers join at a filter concatenation, Spark wide
//! dependencies fan shuffle blocks out and join them at the next stage.
//! A [`DagPlan`] is how a workload model declares that structure: a set of
//! named data nodes plus one motif edge per involved motif implementation.
//!
//! The plan is purely *topological* — it carries no weights, descriptors
//! or parameters.  The proxy-generation pipeline combines it with the
//! decomposition's motif weights and the proxy's scaled input descriptor
//! to build the executable DAG (`dmpb-core`'s `ProxyDag`), which is why
//! the type lives here in `dmpb-motifs`: both the workload models and the
//! core pipeline speak it, without a dependency cycle.
//!
//! Plans are validated at construction: edges must reference declared
//! nodes, each motif appears on exactly one edge, and the topology must be
//! acyclic (checked by Kahn's algorithm).

use crate::class::MotifKind;

/// Node ids of an index graph in deterministic topological order (Kahn's
/// algorithm; among ready nodes the smallest id is taken first).  Returns
/// fewer than `num_nodes` ids iff the graph contains a cycle.
///
/// Shared by [`DagPlan`] and `dmpb-core`'s `ProxyDag` so the tie-break —
/// which downstream determinism guarantees rest on — lives in one place.
pub fn topological_order(num_nodes: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut in_degree = vec![0usize; num_nodes];
    for &(_, to) in edges {
        in_degree[to] += 1;
    }
    let mut ready: Vec<usize> = (0..num_nodes).filter(|&n| in_degree[n] == 0).collect();
    let mut order = Vec::with_capacity(num_nodes);
    while !ready.is_empty() {
        ready.sort_unstable();
        let node = ready.remove(0);
        order.push(node);
        for &(from, to) in edges {
            if from == node {
                in_degree[to] -= 1;
                if in_degree[to] == 0 {
                    ready.push(to);
                }
            }
        }
    }
    order
}

/// One edge of a [`DagPlan`]: `motif` transforms the data at node `from`
/// into the data at node `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEdge {
    /// Index of the source node in [`DagPlan::node_labels`].
    pub from: usize,
    /// Index of the destination node.
    pub to: usize,
    /// The motif implementation on this edge.
    pub motif: MotifKind,
}

/// A declarative fork/join topology over named data nodes (see the
/// [module documentation](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct DagPlan {
    nodes: Vec<String>,
    edges: Vec<PlanEdge>,
}

/// Incremental builder for a [`DagPlan`].
#[derive(Debug, Default)]
pub struct DagPlanBuilder {
    nodes: Vec<String>,
    edges: Vec<PlanEdge>,
}

impl DagPlanBuilder {
    /// Declares a data node and returns its index.
    pub fn node(&mut self, label: impl Into<String>) -> usize {
        self.nodes.push(label.into());
        self.nodes.len() - 1
    }

    /// Declares a motif edge between two previously declared nodes.
    pub fn edge(&mut self, from: usize, to: usize, motif: MotifKind) -> &mut Self {
        self.edges.push(PlanEdge { from, to, motif });
        self
    }

    /// Validates and finishes the plan.
    ///
    /// # Panics
    ///
    /// Panics if an edge references an undeclared node, a motif appears on
    /// more than one edge, or the topology contains a cycle.
    pub fn build(self) -> DagPlan {
        let plan = DagPlan {
            nodes: self.nodes,
            edges: self.edges,
        };
        plan.validate();
        plan
    }
}

impl DagPlan {
    /// Starts building a plan.
    pub fn builder() -> DagPlanBuilder {
        DagPlanBuilder::default()
    }

    /// The degenerate (but always valid) topology: a straight pipeline
    /// `input → stage-1 → … → stage-k`, one stage per motif.
    pub fn chain(motifs: &[MotifKind]) -> DagPlan {
        let mut b = Self::builder();
        let mut previous = b.node("input");
        for (i, &motif) in motifs.iter().enumerate() {
            let node = b.node(format!("stage-{}", i + 1));
            b.edge(previous, node, motif);
            previous = node;
        }
        b.build()
    }

    fn validate(&self) {
        let mut seen: Vec<MotifKind> = Vec::new();
        for edge in &self.edges {
            assert!(
                edge.from < self.nodes.len() && edge.to < self.nodes.len(),
                "plan edge {} references an undeclared node",
                edge.motif
            );
            assert!(
                !seen.contains(&edge.motif),
                "motif {} appears on more than one plan edge",
                edge.motif
            );
            seen.push(edge.motif);
        }
        assert!(
            self.topological_node_order().len() == self.nodes.len(),
            "plan topology contains a cycle"
        );
    }

    /// Node labels, indexed by the node ids the edges use.
    pub fn node_labels(&self) -> &[String] {
        &self.nodes
    }

    /// The motif edges.
    pub fn edges(&self) -> &[PlanEdge] {
        &self.edges
    }

    /// The motifs the plan places, in edge order.
    pub fn motifs(&self) -> Vec<MotifKind> {
        self.edges.iter().map(|e| e.motif).collect()
    }

    /// Whether the plan covers exactly the given motif set (order
    /// insensitive; plans carry each motif at most once by construction).
    pub fn covers_exactly(&self, motifs: &[MotifKind]) -> bool {
        let mut ours = self.motifs();
        let mut theirs = motifs.to_vec();
        ours.sort_unstable();
        theirs.sort_unstable();
        ours == theirs
    }

    /// Largest out-degree over all nodes (≥ 2 means the plan forks).
    pub fn max_out_degree(&self) -> usize {
        self.degree(|e| e.from)
    }

    /// Largest in-degree over all nodes (≥ 2 means the plan joins).
    pub fn max_in_degree(&self) -> usize {
        self.degree(|e| e.to)
    }

    fn degree(&self, end: impl Fn(&PlanEdge) -> usize) -> usize {
        let mut counts = vec![0usize; self.nodes.len()];
        for edge in &self.edges {
            counts[end(edge)] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Whether any node forks (≥ 2 outgoing edges) or joins (≥ 2 incoming
    /// edges) — i.e. the plan is a genuine DAG rather than a chain.
    pub fn is_branching(&self) -> bool {
        self.max_out_degree() >= 2 || self.max_in_degree() >= 2
    }

    /// A one-line shape summary for reports, e.g.
    /// `"6 nodes / 6 edges, fork x2, join x2"` or `"4 nodes / 3 edges, chain"`.
    pub fn shape_summary(&self) -> String {
        let shape = if self.is_branching() {
            format!(
                "fork x{}, join x{}",
                self.max_out_degree(),
                self.max_in_degree()
            )
        } else {
            "chain".to_string()
        };
        format!(
            "{} nodes / {} edges, {}",
            self.nodes.len(),
            self.edges.len(),
            shape
        )
    }

    /// Node ids in a deterministic topological order
    /// ([`topological_order`]).  Shorter than `nodes.len()` iff the plan
    /// has a cycle — which [`DagPlanBuilder::build`] rejects.
    fn topological_node_order(&self) -> Vec<usize> {
        let pairs: Vec<(usize, usize)> = self.edges.iter().map(|e| (e.from, e.to)).collect();
        topological_order(self.nodes.len(), &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DagPlan {
        let mut b = DagPlan::builder();
        let input = b.node("input");
        let left = b.node("left");
        let right = b.node("right");
        let out = b.node("out");
        b.edge(input, left, MotifKind::QuickSort);
        b.edge(input, right, MotifKind::RandomSampling);
        b.edge(left, out, MotifKind::MergeSort);
        b.edge(right, out, MotifKind::GraphConstruct);
        b.build()
    }

    #[test]
    fn diamond_plan_forks_and_joins() {
        let plan = diamond();
        assert!(plan.is_branching());
        assert_eq!(plan.max_out_degree(), 2);
        assert_eq!(plan.max_in_degree(), 2);
        assert_eq!(plan.edges().len(), 4);
        assert!(plan.shape_summary().contains("fork x2"));
    }

    #[test]
    fn chain_plan_is_linear_and_covers_its_motifs() {
        let motifs = [MotifKind::QuickSort, MotifKind::MergeSort, MotifKind::Fft];
        let plan = DagPlan::chain(&motifs);
        assert!(!plan.is_branching());
        assert_eq!(plan.node_labels().len(), 4);
        assert!(plan.covers_exactly(&motifs));
        assert!(!plan.covers_exactly(&motifs[..2]));
        assert_eq!(plan.shape_summary(), "4 nodes / 3 edges, chain");
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_plans_are_rejected() {
        let mut b = DagPlan::builder();
        let a = b.node("a");
        let c = b.node("b");
        b.edge(a, c, MotifKind::QuickSort);
        b.edge(c, a, MotifKind::MergeSort);
        b.build();
    }

    #[test]
    #[should_panic(expected = "more than one plan edge")]
    fn duplicate_motifs_are_rejected() {
        let mut b = DagPlan::builder();
        let a = b.node("a");
        let c = b.node("b");
        let d = b.node("c");
        b.edge(a, c, MotifKind::QuickSort);
        b.edge(c, d, MotifKind::QuickSort);
        b.build();
    }

    #[test]
    #[should_panic(expected = "undeclared node")]
    fn edges_to_undeclared_nodes_are_rejected() {
        let mut b = DagPlan::builder();
        let a = b.node("a");
        b.edge(a, 9, MotifKind::QuickSort);
        b.build();
    }
}
