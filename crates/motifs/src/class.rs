//! The eight data-motif classes and the concrete implementations of Fig. 2.

use dmpb_datagen::DataDescriptor;
use dmpb_perfmodel::OpProfile;

use crate::config::MotifConfig;

/// The eight data-motif classes identified by the data-motif paper and used
/// throughout this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MotifClass {
    /// Vector-vector, vector-matrix and matrix-matrix computation.
    Matrix,
    /// Selecting a subset of the original data.
    Sampling,
    /// Domain conversion (FFT, DCT, convolution).
    Transform,
    /// Computation over nodes and edges.
    Graph,
    /// Bit-manipulation computation (hashing, encryption).
    Logic,
    /// Operations on collections of distinct data / relational algebra.
    Set,
    /// Ordering data.
    Sort,
    /// Counting, averaging, probability computation.
    Statistics,
}

impl MotifClass {
    /// All eight classes in a stable order.
    pub const ALL: [MotifClass; 8] = [
        MotifClass::Matrix,
        MotifClass::Sampling,
        MotifClass::Transform,
        MotifClass::Graph,
        MotifClass::Logic,
        MotifClass::Set,
        MotifClass::Sort,
        MotifClass::Statistics,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            MotifClass::Matrix => "Matrix",
            MotifClass::Sampling => "Sampling",
            MotifClass::Transform => "Transform",
            MotifClass::Graph => "Graph",
            MotifClass::Logic => "Logic",
            MotifClass::Set => "Set",
            MotifClass::Sort => "Sort",
            MotifClass::Statistics => "Statistics",
        }
    }
}

impl std::fmt::Display for MotifClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete data-motif implementation (one box of Fig. 2).
///
/// The `Kind` is what proxy-benchmark DAG edges carry: it knows its class,
/// whether it belongs to the big-data or the AI implementation family, and
/// how to produce an [`OpProfile`] for a given input descriptor and
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MotifKind {
    // --- Big-data motif implementations ---------------------------------
    /// Euclidean / cosine distance computation between vectors.
    DistanceCalculation,
    /// Dense matrix multiplication.
    MatrixMultiply,
    /// Random (uniform) sampling of records.
    RandomSampling,
    /// Interval (systematic) sampling of records.
    IntervalSampling,
    /// Set union.
    SetUnion,
    /// Set intersection.
    SetIntersection,
    /// Set difference.
    SetDifference,
    /// Graph construction (edge list to adjacency structure).
    GraphConstruct,
    /// Graph traversal (breadth-first search).
    GraphTraversal,
    /// Quick sort over record keys.
    QuickSort,
    /// Merge sort over record keys.
    MergeSort,
    /// Count / average statistics.
    CountStatistics,
    /// Probability (frequency) statistics.
    ProbabilityStatistics,
    /// Minimum / maximum computation.
    MinMax,
    /// MD5 hashing.
    Md5Hash,
    /// Stream (XOR-keystream) encryption.
    Encryption,
    /// Fast Fourier transform.
    Fft,
    /// Inverse fast Fourier transform.
    Ifft,
    /// Discrete cosine transform.
    Dct,
    // --- AI data motif implementations ----------------------------------
    /// Fully connected (dense) layer.
    FullyConnected,
    /// Element-wise multiplication.
    ElementWiseMultiply,
    /// Sigmoid activation.
    Sigmoid,
    /// Tanh activation.
    Tanh,
    /// Softmax.
    Softmax,
    /// Max pooling.
    MaxPooling,
    /// Average pooling.
    AveragePooling,
    /// 2-D convolution.
    Convolution,
    /// Dropout.
    Dropout,
    /// Batch normalisation.
    BatchNormalization,
    /// Cosine normalisation.
    CosineNormalization,
    /// Reduce-sum.
    ReduceSum,
    /// Reduce-max.
    ReduceMax,
    /// ReLU activation.
    Relu,
}

impl MotifKind {
    /// Every implementation, big data first, in a stable order.
    pub const ALL: [MotifKind; 33] = [
        MotifKind::DistanceCalculation,
        MotifKind::MatrixMultiply,
        MotifKind::RandomSampling,
        MotifKind::IntervalSampling,
        MotifKind::SetUnion,
        MotifKind::SetIntersection,
        MotifKind::SetDifference,
        MotifKind::GraphConstruct,
        MotifKind::GraphTraversal,
        MotifKind::QuickSort,
        MotifKind::MergeSort,
        MotifKind::CountStatistics,
        MotifKind::ProbabilityStatistics,
        MotifKind::MinMax,
        MotifKind::Md5Hash,
        MotifKind::Encryption,
        MotifKind::Fft,
        MotifKind::Ifft,
        MotifKind::Dct,
        MotifKind::FullyConnected,
        MotifKind::ElementWiseMultiply,
        MotifKind::Sigmoid,
        MotifKind::Tanh,
        MotifKind::Softmax,
        MotifKind::MaxPooling,
        MotifKind::AveragePooling,
        MotifKind::Convolution,
        MotifKind::Dropout,
        MotifKind::BatchNormalization,
        MotifKind::CosineNormalization,
        MotifKind::ReduceSum,
        MotifKind::ReduceMax,
        MotifKind::Relu,
    ];

    /// The motif class this implementation belongs to (Fig. 2 grouping).
    pub fn class(&self) -> MotifClass {
        use MotifKind::*;
        match self {
            DistanceCalculation | MatrixMultiply | FullyConnected | ElementWiseMultiply
            | Sigmoid | Tanh | Softmax => MotifClass::Matrix,
            RandomSampling | IntervalSampling | MaxPooling | AveragePooling => MotifClass::Sampling,
            Fft | Ifft | Dct | Convolution => MotifClass::Transform,
            GraphConstruct | GraphTraversal => MotifClass::Graph,
            Md5Hash | Encryption | Relu => MotifClass::Logic,
            SetUnion | SetIntersection | SetDifference => MotifClass::Set,
            QuickSort | MergeSort | ReduceMax => MotifClass::Sort,
            CountStatistics
            | ProbabilityStatistics
            | MinMax
            | Dropout
            | BatchNormalization
            | CosineNormalization
            | ReduceSum => MotifClass::Statistics,
        }
    }

    /// Returns true if this is an AI data-motif implementation (right-hand
    /// column of Fig. 2), false for the big-data family.
    pub fn is_ai(&self) -> bool {
        use MotifKind::*;
        matches!(
            self,
            FullyConnected
                | ElementWiseMultiply
                | Sigmoid
                | Tanh
                | Softmax
                | MaxPooling
                | AveragePooling
                | Convolution
                | Dropout
                | BatchNormalization
                | CosineNormalization
                | ReduceSum
                | ReduceMax
                | Relu
        )
    }

    /// Human-readable name used in reports and DAG dumps.
    pub fn name(&self) -> &'static str {
        use MotifKind::*;
        match self {
            DistanceCalculation => "distance-calculation",
            MatrixMultiply => "matrix-multiply",
            RandomSampling => "random-sampling",
            IntervalSampling => "interval-sampling",
            SetUnion => "set-union",
            SetIntersection => "set-intersection",
            SetDifference => "set-difference",
            GraphConstruct => "graph-construct",
            GraphTraversal => "graph-traversal",
            QuickSort => "quick-sort",
            MergeSort => "merge-sort",
            CountStatistics => "count-statistics",
            ProbabilityStatistics => "probability-statistics",
            MinMax => "min-max",
            Md5Hash => "md5-hash",
            Encryption => "encryption",
            Fft => "fft",
            Ifft => "ifft",
            Dct => "dct",
            FullyConnected => "fully-connected",
            ElementWiseMultiply => "element-wise-multiply",
            Sigmoid => "sigmoid",
            Tanh => "tanh",
            Softmax => "softmax",
            MaxPooling => "max-pooling",
            AveragePooling => "average-pooling",
            Convolution => "convolution",
            Dropout => "dropout",
            BatchNormalization => "batch-normalization",
            CosineNormalization => "cosine-normalization",
            ReduceSum => "reduce-sum",
            ReduceMax => "reduce-max",
            Relu => "relu",
        }
    }

    /// Produces the operation profile of running this motif implementation
    /// over `data` with configuration `config`.
    ///
    /// Dispatches through the [`crate::kernel::MotifRegistry`], whose
    /// kernels delegate to the analytic models in [`crate::cost`].
    pub fn cost_profile(&self, data: &DataDescriptor, config: &MotifConfig) -> OpProfile {
        crate::kernel::MotifRegistry::global()
            .kernel(*self)
            .cost_profile(data, config)
    }
}

impl std::fmt::Display for MotifKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_at_least_one_big_data_and_the_catalogue_is_complete() {
        for class in MotifClass::ALL {
            let count = MotifKind::ALL.iter().filter(|k| k.class() == class).count();
            assert!(count >= 1, "class {class} has no implementation");
        }
        assert_eq!(MotifKind::ALL.len(), 33);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = MotifKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MotifKind::ALL.len());
    }

    #[test]
    fn fig2_grouping_examples() {
        assert_eq!(MotifKind::QuickSort.class(), MotifClass::Sort);
        assert_eq!(MotifKind::Convolution.class(), MotifClass::Transform);
        assert_eq!(MotifKind::MaxPooling.class(), MotifClass::Sampling);
        assert_eq!(MotifKind::Relu.class(), MotifClass::Logic);
        assert_eq!(MotifKind::ReduceMax.class(), MotifClass::Sort);
        assert_eq!(
            MotifKind::BatchNormalization.class(),
            MotifClass::Statistics
        );
        assert_eq!(MotifKind::FullyConnected.class(), MotifClass::Matrix);
        assert_eq!(MotifKind::SetIntersection.class(), MotifClass::Set);
        assert_eq!(MotifKind::GraphTraversal.class(), MotifClass::Graph);
    }

    #[test]
    fn ai_and_big_data_families_partition_the_catalogue() {
        let ai = MotifKind::ALL.iter().filter(|k| k.is_ai()).count();
        let bd = MotifKind::ALL.iter().filter(|k| !k.is_ai()).count();
        assert_eq!(ai, 14);
        assert_eq!(bd, 19);
    }

    #[test]
    fn class_display_matches_name() {
        assert_eq!(MotifClass::Sort.to_string(), "Sort");
        assert_eq!(MotifKind::Fft.to_string(), "fft");
    }
}
