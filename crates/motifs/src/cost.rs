//! Analytic cost models: from a motif kind, an input descriptor and a
//! configuration to an [`OpProfile`].
//!
//! The cost models are what let the reproduction measure motifs (and the
//! workloads composed from them) at the paper's data scale — 100 GB inputs,
//! billions of records — without materialising the data: each model counts
//! the dynamic instructions per logical element the kernel executes,
//! describes how the kernel walks memory, how predictable its branches are
//! and how much disk traffic it causes.  The constants are calibrated
//! qualitatively against the kernels in [`crate::bigdata`] / [`crate::ai`]
//! (an ablation bench compares cost-model scaling against real kernel
//! wall-clock scaling).

use dmpb_datagen::DataDescriptor;
use dmpb_perfmodel::access::AccessPattern;
use dmpb_perfmodel::profile::{BranchBehavior, InstructionCounts, MemorySegment, OpProfile};

use crate::class::MotifKind;
use crate::config::MotifConfig;

/// Per-element instruction recipe accumulated by the per-kind models.
#[derive(Debug, Clone, Copy, Default)]
struct Recipe {
    integer: f64,
    floating_point: f64,
    load: f64,
    store: f64,
    branch: f64,
}

impl Recipe {
    fn counts(&self, elements: f64) -> InstructionCounts {
        let c = |v: f64| (v * elements).round().max(0.0) as u64;
        InstructionCounts {
            integer: c(self.integer),
            floating_point: c(self.floating_point),
            load: c(self.load),
            store: c(self.store),
            branch: c(self.branch),
        }
    }
}

/// Code footprint of a light-weight big-data motif kernel plus its runtime
/// support (far smaller than a JVM-based stack).
const BIG_DATA_CODE_FOOTPRINT: u64 = 48 * 1024;
/// Code footprint of an AI motif kernel.
const AI_CODE_FOOTPRINT: u64 = 36 * 1024;
/// Output feature count assumed by the fully-connected cost model.
const FC_OUT_FEATURES: f64 = 512.0;
/// Minimum output channel count assumed by the convolution cost model.
const CONV_MIN_OUT_CHANNELS: f64 = 32.0;
/// Number of centroids assumed by the distance-computation cost model.
const DISTANCE_CENTROIDS: f64 = 16.0;
/// Elements processed per dynamic vector instruction in the AI kernels
/// (AVX f32 lanes, discounted for non-vectorisable tails).
const SIMD_FP_FACTOR: f64 = 6.0;
/// Loop-overhead reduction from unrolling in the vectorised AI kernels.
const SIMD_INT_FACTOR: f64 = 3.0;
/// Extra integer work per stored value when the input is sparse (index
/// decoding, iterator advancement) — sparse formats trade bandwidth for
/// instruction overhead.
const SPARSE_INDEX_INTEGER_OVERHEAD: f64 = 40.0;
/// Extra branch work per stored value when the input is sparse.
const SPARSE_INDEX_BRANCH_OVERHEAD: f64 = 12.0;

/// Produces the operation profile of running `kind` over `data` with
/// configuration `config`.
pub fn cost_profile(kind: MotifKind, data: &DataDescriptor, config: &MotifConfig) -> OpProfile {
    if kind.is_ai() {
        ai_cost_profile(kind, data, config)
    } else {
        big_data_cost_profile(kind, data, config)
    }
}

fn big_data_cost_profile(
    kind: MotifKind,
    data: &DataDescriptor,
    config: &MotifConfig,
) -> OpProfile {
    use MotifKind::*;

    let elements = data.element_count() as f64;
    let element_bytes = data.element_bytes as f64;
    let density = (1.0 - data.sparsity).max(0.0);
    let chunk_elements = (config.chunk_bytes as f64 / element_bytes).max(2.0);
    let log_chunk = chunk_elements.log2().max(1.0);
    // Streaming working set: what the tasks keep in flight at once.
    let stream_ws = (config.chunk_bytes * u64::from(config.num_tasks))
        .min(data.total_bytes.max(1))
        .max(1);
    let chunk_ws = config.chunk_bytes.max(4096);

    let mut profile = OpProfile::new(kind.name());
    profile.code_footprint_bytes = BIG_DATA_CODE_FOOTPRINT;
    profile.parallel_fraction = 0.95;

    let (recipe, segments, branch): (Recipe, Vec<MemorySegment>, BranchBehavior) = match kind {
        QuickSort => (
            Recipe {
                integer: 5.0 * log_chunk,
                floating_point: 0.0,
                load: 2.2 * log_chunk,
                store: 1.1 * log_chunk,
                branch: 1.4 * log_chunk,
            },
            vec![
                MemorySegment::new(AccessPattern::Random, chunk_ws, 0.65),
                MemorySegment::new(AccessPattern::Sequential, stream_ws, 0.35),
            ],
            BranchBehavior::new(0.5, 0.62),
        ),
        MergeSort => (
            Recipe {
                integer: 4.5 * log_chunk,
                floating_point: 0.0,
                load: 2.4 * log_chunk,
                store: 1.3 * log_chunk,
                branch: 1.2 * log_chunk,
            },
            vec![
                MemorySegment::new(AccessPattern::Sequential, stream_ws, 0.85),
                MemorySegment::new(AccessPattern::Random, chunk_ws, 0.15),
            ],
            BranchBehavior::new(0.5, 0.70),
        ),
        RandomSampling => (
            Recipe {
                integer: 3.0,
                floating_point: 0.5,
                load: 1.2,
                store: 0.15,
                branch: 1.1,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                stream_ws,
                1.0,
            )],
            BranchBehavior::new(0.12, 0.75),
        ),
        IntervalSampling => (
            Recipe {
                integer: 2.0,
                floating_point: 0.0,
                load: 1.0,
                store: 0.1,
                branch: 1.0,
            },
            vec![MemorySegment::new(
                AccessPattern::Strided {
                    stride_bytes: (element_bytes as u64 * 8).max(64),
                },
                stream_ws,
                1.0,
            )],
            BranchBehavior::new(0.88, 0.95),
        ),
        SetUnion | SetIntersection | SetDifference => (
            Recipe {
                integer: 4.0,
                floating_point: 0.0,
                load: 2.2,
                store: 0.9,
                branch: 1.6,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                stream_ws,
                1.0,
            )],
            BranchBehavior::new(0.5, 0.70),
        ),
        GraphConstruct => (
            Recipe {
                integer: 6.0,
                floating_point: 0.0,
                load: 2.5,
                store: 2.0,
                branch: 1.0,
            },
            vec![
                MemorySegment::new(AccessPattern::Sequential, stream_ws, 0.45),
                MemorySegment::new(AccessPattern::Random, data.total_bytes.max(1), 0.55),
            ],
            BranchBehavior::new(0.7, 0.6),
        ),
        GraphTraversal => (
            Recipe {
                integer: 4.5,
                floating_point: 0.0,
                load: 2.8,
                store: 0.8,
                branch: 1.8,
            },
            vec![
                MemorySegment::new(AccessPattern::PointerChase, data.total_bytes.max(1), 0.7),
                MemorySegment::new(AccessPattern::Sequential, stream_ws, 0.3),
            ],
            BranchBehavior::new(0.55, 0.65),
        ),
        CountStatistics => (
            Recipe {
                integer: 2.5,
                floating_point: 1.0,
                load: 1.1,
                store: 0.2,
                branch: 1.0,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                stream_ws,
                1.0,
            )],
            BranchBehavior::new(0.9, 0.95),
        ),
        ProbabilityStatistics => (
            Recipe {
                integer: 4.0,
                floating_point: 1.0,
                load: 2.2,
                store: 1.0,
                branch: 1.3,
            },
            vec![
                MemorySegment::new(AccessPattern::Sequential, stream_ws, 0.55),
                MemorySegment::new(AccessPattern::Random, 8 << 20, 0.45),
            ],
            BranchBehavior::new(0.6, 0.75),
        ),
        MinMax => (
            Recipe {
                integer: 1.5,
                floating_point: 1.2,
                load: 1.0,
                store: 0.05,
                branch: 1.1,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                stream_ws,
                1.0,
            )],
            BranchBehavior::new(0.08, 0.9),
        ),
        Md5Hash => (
            Recipe {
                integer: 9.5 * element_bytes / 8.0,
                floating_point: 0.0,
                load: 1.3 * element_bytes / 8.0,
                store: 0.3 * element_bytes / 8.0,
                branch: 0.4 * element_bytes / 8.0,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                stream_ws,
                1.0,
            )],
            BranchBehavior::new(0.92, 0.97),
        ),
        Encryption => (
            Recipe {
                integer: 5.0 * element_bytes / 8.0,
                floating_point: 0.0,
                load: 1.1 * element_bytes / 8.0,
                store: 1.0 * element_bytes / 8.0,
                branch: 0.3 * element_bytes / 8.0,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                stream_ws,
                1.0,
            )],
            BranchBehavior::new(0.93, 0.97),
        ),
        Fft | Ifft => (
            Recipe {
                integer: 2.5 * log_chunk,
                floating_point: 6.0 * log_chunk,
                load: 2.5 * log_chunk,
                store: 1.8 * log_chunk,
                branch: 0.8 * log_chunk,
            },
            vec![
                MemorySegment::new(AccessPattern::Strided { stride_bytes: 512 }, chunk_ws, 0.6),
                MemorySegment::new(AccessPattern::Sequential, stream_ws, 0.4),
            ],
            BranchBehavior::new(0.85, 0.92),
        ),
        Dct => (
            Recipe {
                integer: 3.0,
                floating_point: 24.0,
                load: 4.0,
                store: 1.0,
                branch: 1.0,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                stream_ws,
                1.0,
            )],
            BranchBehavior::new(0.9, 0.95),
        ),
        DistanceCalculation => {
            // One element = one vector of `dim` features, of which only the
            // non-zero fraction costs multiply-accumulates.  Sparse formats
            // additionally pay index-decoding integer and branch work per
            // stored value, which is why dense inputs achieve much higher
            // memory bandwidth for the same algorithm (the paper's Fig. 7).
            // Stored values per vector: dense vectors store 8-byte values,
            // sparse vectors store (index, value) pairs for non-zeros only.
            let _ = density;
            let sparse_overhead = if data.sparsity > 0.0 { 1.0 } else { 0.0 };
            let value_bytes = if data.sparsity > 0.0 { 12.0 } else { 8.0 };
            let effective = (element_bytes / value_bytes).max(1.0);
            // Per vector and per centroid there is fixed overhead (vector
            // object setup, accumulator handling, square root) on top of
            // the per-stored-value multiply-accumulate work.
            // Dense inner loops auto-vectorise (several multiply-accumulates
            // per dynamic instruction); sparse loops with index indirection
            // do not — which is why dense inputs move far more bytes per
            // instruction and achieve the higher memory bandwidth of Fig. 7.
            let per_centroid_fixed = 6.0;
            let vector_width = if data.sparsity > 0.0 { 1.0 } else { 3.0 };
            (
                Recipe {
                    integer: DISTANCE_CENTROIDS * per_centroid_fixed
                        + (2.0 + sparse_overhead * SPARSE_INDEX_INTEGER_OVERHEAD) * effective,
                    floating_point: DISTANCE_CENTROIDS
                        * (per_centroid_fixed + 3.0 * effective / vector_width),
                    load: DISTANCE_CENTROIDS * (2.0 + 1.2 * effective / vector_width)
                        + sparse_overhead * effective,
                    store: 0.1 * effective + DISTANCE_CENTROIDS,
                    branch: DISTANCE_CENTROIDS * (2.0 + 0.3 * effective / vector_width)
                        + sparse_overhead * SPARSE_INDEX_BRANCH_OVERHEAD * effective,
                },
                vec![
                    MemorySegment::new(AccessPattern::Sequential, stream_ws, 0.8),
                    MemorySegment::new(AccessPattern::Strided { stride_bytes: 64 }, 1 << 20, 0.2),
                ],
                BranchBehavior::new(0.88, if data.sparsity > 0.0 { 0.8 } else { 0.93 }),
            )
        }
        MatrixMultiply => {
            // Square matrices: per stored element the kernel performs O(n)
            // multiply-accumulates, n = sqrt(total elements).
            let n = elements.sqrt().max(2.0);
            (
                Recipe {
                    integer: 1.0 * n,
                    floating_point: 2.0 * n,
                    load: 1.6 * n,
                    store: 0.05 * n,
                    branch: 0.15 * n,
                },
                vec![
                    MemorySegment::new(AccessPattern::Sequential, stream_ws, 0.5),
                    MemorySegment::new(
                        AccessPattern::Strided {
                            stride_bytes: (element_bytes as u64 * 64).max(64),
                        },
                        chunk_ws,
                        0.5,
                    ),
                ],
                BranchBehavior::new(0.93, 0.97),
            )
        }
        _ => unreachable!("AI kinds handled separately"),
    };

    profile.instructions = recipe.counts(elements);
    profile.memory_segments = segments;
    profile.branch = branch;

    if config.spill_to_disk {
        profile.disk_read_bytes = data.total_bytes;
        profile.disk_write_bytes = (data.total_bytes as f64 * spill_write_fraction(kind)) as u64;
    } else {
        profile.disk_read_bytes = data.total_bytes / 20;
        profile.disk_write_bytes = 0;
    }
    profile
}

/// Fraction of the input volume a big-data motif writes back to disk as
/// intermediate or final output when spilling is enabled.
fn spill_write_fraction(kind: MotifKind) -> f64 {
    use MotifKind::*;
    match kind {
        QuickSort | MergeSort => 1.0,
        Encryption => 1.0,
        GraphConstruct => 0.8,
        SetUnion | SetIntersection | SetDifference => 0.6,
        Fft | Ifft | Dct => 0.8,
        MatrixMultiply => 0.3,
        RandomSampling => 0.1,
        IntervalSampling => 0.1,
        GraphTraversal => 0.05,
        DistanceCalculation => 0.05,
        Md5Hash => 0.05,
        CountStatistics | ProbabilityStatistics | MinMax => 0.02,
        _ => 0.1,
    }
}

fn ai_cost_profile(kind: MotifKind, data: &DataDescriptor, config: &MotifConfig) -> OpProfile {
    use MotifKind::*;

    // One logical element of AI input data is one image / feature map.
    let images = data.element_count() as f64;
    let spatial = config.spatial_elements().max(1) as f64;
    let batch = f64::from(config.batch_size.max(1));
    let kernel = f64::from(config.filter_size.max(1));
    let channels = f64::from(config.channels.max(1));

    // Activation working set: one batch of feature maps in f32.
    let activation_ws = ((batch * spatial * 4.0) as u64).max(4096);
    // Weight working set for the parameterised layers.
    let conv_out_channels = channels.max(CONV_MIN_OUT_CHANNELS);
    let conv_weight_ws = ((conv_out_channels * channels * kernel * kernel * 4.0) as u64).max(4096);
    let fc_weight_ws = ((spatial * FC_OUT_FEATURES * 4.0) as u64).max(4096);

    let mut profile = OpProfile::new(kind.name());
    profile.code_footprint_bytes = AI_CODE_FOOTPRINT;
    profile.parallel_fraction = 0.98;

    // Per-image work (multiplied by image count below).
    let (recipe, segments, branch): (Recipe, Vec<MemorySegment>, BranchBehavior) = match kind {
        Convolution => {
            let per_pixel = 2.0 * kernel * kernel * channels;
            let flops = per_pixel * spatial / channels * conv_out_channels;
            (
                Recipe {
                    integer: 0.18 * flops,
                    floating_point: flops,
                    load: 0.30 * flops,
                    store: 0.02 * flops + 1.0 * spatial,
                    branch: 0.10 * flops,
                },
                vec![
                    MemorySegment::new(AccessPattern::Sequential, activation_ws, 0.55),
                    // Blocked weight reuse keeps the live filter tile cache
                    // resident, as im2col/GEMM-style implementations do.
                    MemorySegment::new(
                        AccessPattern::Sequential,
                        conv_weight_ws.min(192 * 1024),
                        0.45,
                    ),
                ],
                BranchBehavior::new(0.92, 0.97),
            )
        }
        FullyConnected => (
            Recipe {
                integer: 0.3 * spatial * FC_OUT_FEATURES / 100.0,
                floating_point: 2.0 * spatial * FC_OUT_FEATURES / 100.0,
                load: 1.2 * spatial * FC_OUT_FEATURES / 100.0,
                store: FC_OUT_FEATURES / 100.0,
                branch: 0.1 * spatial * FC_OUT_FEATURES / 100.0,
            },
            vec![
                MemorySegment::new(AccessPattern::Sequential, fc_weight_ws.min(2 << 20), 0.75),
                MemorySegment::new(AccessPattern::Sequential, activation_ws, 0.25),
            ],
            BranchBehavior::new(0.93, 0.97),
        ),
        ElementWiseMultiply => (
            Recipe {
                integer: 0.3 * spatial,
                floating_point: 1.0 * spatial,
                load: 2.0 * spatial,
                store: 1.0 * spatial,
                branch: 0.15 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.95, 0.98),
        ),
        Sigmoid | Tanh => (
            Recipe {
                integer: 0.5 * spatial,
                floating_point: 6.0 * spatial,
                load: 1.0 * spatial,
                store: 1.0 * spatial,
                branch: 0.15 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.95, 0.98),
        ),
        Softmax => (
            Recipe {
                integer: 0.6 * spatial,
                floating_point: 5.0 * spatial,
                load: 2.0 * spatial,
                store: 1.0 * spatial,
                branch: 0.3 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.9, 0.95),
        ),
        Relu => (
            Recipe {
                integer: 0.8 * spatial,
                floating_point: 1.0 * spatial,
                load: 1.0 * spatial,
                store: 1.0 * spatial,
                branch: 1.0 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.5, 0.82),
        ),
        MaxPooling | AveragePooling => {
            let window = kernel.max(2.0);
            (
                Recipe {
                    integer: 0.8 * spatial,
                    floating_point: window * window * spatial / 4.0,
                    load: window * window * spatial / 4.0,
                    store: 0.3 * spatial,
                    branch: window * window * spatial / 16.0,
                },
                vec![
                    MemorySegment::new(AccessPattern::Sequential, activation_ws, 0.85),
                    MemorySegment::new(
                        AccessPattern::Strided { stride_bytes: 256 },
                        activation_ws,
                        0.15,
                    ),
                ],
                BranchBehavior::new(0.6, 0.9),
            )
        }
        Dropout => (
            Recipe {
                integer: 2.0 * spatial,
                floating_point: 0.8 * spatial,
                load: 1.0 * spatial,
                store: 1.0 * spatial,
                branch: 1.0 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.5, 0.70),
        ),
        BatchNormalization => (
            Recipe {
                integer: 0.6 * spatial,
                floating_point: 5.0 * spatial,
                load: 2.0 * spatial,
                store: 1.0 * spatial,
                branch: 0.2 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.93, 0.97),
        ),
        CosineNormalization => (
            Recipe {
                integer: 0.5 * spatial,
                floating_point: 4.0 * spatial,
                load: 2.0 * spatial,
                store: 1.0 * spatial,
                branch: 0.2 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.93, 0.97),
        ),
        ReduceSum => (
            Recipe {
                integer: 0.4 * spatial,
                floating_point: 1.0 * spatial,
                load: 1.0 * spatial,
                store: 0.02 * spatial,
                branch: 0.2 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.95, 0.98),
        ),
        ReduceMax => (
            Recipe {
                integer: 0.8 * spatial,
                floating_point: 1.0 * spatial,
                load: 1.0 * spatial,
                store: 0.02 * spatial,
                branch: 1.0 * spatial,
            },
            vec![MemorySegment::new(
                AccessPattern::Sequential,
                activation_ws,
                1.0,
            )],
            BranchBehavior::new(0.15, 0.7),
        ),
        _ => unreachable!("big-data kinds handled separately"),
    };

    // The AI kernels are vectorised (AVX / FMA): several element operations
    // retire per dynamic instruction, and unrolling removes most loop
    // overhead.  Scale the per-element recipe accordingly.
    let vectorized = Recipe {
        integer: recipe.integer / SIMD_INT_FACTOR,
        floating_point: recipe.floating_point / SIMD_FP_FACTOR,
        load: recipe.load / SIMD_FP_FACTOR,
        store: recipe.store / SIMD_FP_FACTOR,
        branch: recipe.branch / SIMD_INT_FACTOR,
    };
    profile.instructions = vectorized.counts(images);
    profile.memory_segments = segments;
    profile.branch = branch;
    // TensorFlow-style training reads its input once and keeps activations
    // in memory: disk pressure is tiny (the paper measures ~0.2–0.5 MB/s).
    profile.disk_read_bytes = data.total_bytes / 400;
    profile.disk_write_bytes = 0;
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::descriptor::{DataClass, Distribution};

    fn text_data(gb: u64) -> DataDescriptor {
        DataDescriptor::new(DataClass::Text, gb << 30, 100, 0.0, Distribution::Uniform)
    }

    fn vector_data(gb: u64, sparsity: f64) -> DataDescriptor {
        DataDescriptor::new(
            DataClass::Vector,
            gb << 30,
            400,
            sparsity,
            Distribution::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            },
        )
    }

    fn image_data(images: u64) -> DataDescriptor {
        DataDescriptor::new(
            DataClass::Image,
            images * 12_288,
            12_288,
            0.0,
            Distribution::Uniform,
        )
    }

    #[test]
    fn every_kind_produces_a_valid_profile() {
        let bd_cfg = MotifConfig::big_data_default();
        let ai_cfg = MotifConfig::ai_default();
        for kind in MotifKind::ALL {
            let (data, cfg) = if kind.is_ai() {
                (image_data(10_000), &ai_cfg)
            } else {
                (text_data(1), &bd_cfg)
            };
            let p = cost_profile(kind, &data, cfg);
            assert!(p.total_instructions() > 0, "{kind} has no instructions");
            assert!(
                !p.memory_segments.is_empty(),
                "{kind} has no memory segments"
            );
            let mix = p.instructions.mix();
            assert!(
                (mix.total() - 1.0).abs() < 1e-9,
                "{kind} mix not normalised"
            );
        }
    }

    #[test]
    fn sort_is_branchier_than_matrix_multiply() {
        let cfg = MotifConfig::big_data_default();
        let sort = cost_profile(MotifKind::QuickSort, &text_data(1), &cfg);
        let mm = cost_profile(MotifKind::MatrixMultiply, &vector_data(1, 0.0), &cfg);
        assert!(sort.instructions.mix().branch > mm.instructions.mix().branch);
        assert!(sort.branch.regularity < mm.branch.regularity);
    }

    #[test]
    fn convolution_is_fp_dominated_and_sort_is_not() {
        let conv = cost_profile(
            MotifKind::Convolution,
            &image_data(10_000),
            &MotifConfig::ai_default(),
        );
        let sort = cost_profile(
            MotifKind::QuickSort,
            &text_data(1),
            &MotifConfig::big_data_default(),
        );
        assert!(conv.instructions.mix().floating_point > 0.3);
        assert!(sort.instructions.mix().floating_point < 0.05);
    }

    #[test]
    fn sparse_distance_computation_spends_more_instructions_per_byte() {
        // Same data volume: the sparse representation packs fewer values per
        // element but pays index-decoding overhead for each of them, so it
        // executes more instructions per byte of input and is less
        // floating-point dominated — the mechanism behind the paper's
        // Fig. 7 bandwidth observation.
        let cfg = MotifConfig::big_data_default();
        let sparse = cost_profile(MotifKind::DistanceCalculation, &vector_data(1, 0.9), &cfg);
        let dense = cost_profile(MotifKind::DistanceCalculation, &vector_data(1, 0.0), &cfg);
        assert!(
            sparse.instructions.mix().floating_point < dense.instructions.mix().floating_point,
            "sparse fp {} dense fp {}",
            sparse.instructions.mix().floating_point,
            dense.instructions.mix().floating_point
        );
        assert!(sparse.branch.regularity < dense.branch.regularity);
    }

    #[test]
    fn spilling_motifs_have_disk_traffic_and_ai_motifs_little() {
        let sort = cost_profile(
            MotifKind::QuickSort,
            &text_data(1),
            &MotifConfig::big_data_default(),
        );
        assert_eq!(sort.disk_read_bytes, 1 << 30);
        assert_eq!(sort.disk_write_bytes, 1 << 30);
        let images = image_data(10_000);
        let conv = cost_profile(MotifKind::Convolution, &images, &MotifConfig::ai_default());
        assert_eq!(conv.disk_write_bytes, 0);
        assert!(conv.disk_read_bytes < images.total_bytes / 10);
    }

    #[test]
    fn graph_traversal_uses_pointer_chasing() {
        let g = DataDescriptor::new(
            DataClass::Graph,
            1 << 30,
            8,
            0.0,
            Distribution::PowerLaw { exponent: 1.0 },
        );
        let p = cost_profile(
            MotifKind::GraphTraversal,
            &g,
            &MotifConfig::big_data_default(),
        );
        assert!(p
            .memory_segments
            .iter()
            .any(|s| matches!(s.pattern, AccessPattern::PointerChase)));
    }

    #[test]
    fn more_data_means_proportionally_more_instructions() {
        let cfg = MotifConfig::big_data_default();
        let one = cost_profile(MotifKind::MergeSort, &text_data(1), &cfg);
        let four = cost_profile(MotifKind::MergeSort, &text_data(4), &cfg);
        let ratio = four.total_instructions() as f64 / one.total_instructions() as f64;
        assert!((3.5..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn bigger_batch_increases_ai_working_set() {
        let data = image_data(10_000);
        let small = cost_profile(
            MotifKind::Relu,
            &data,
            &MotifConfig::ai_default().with_batch_size(16),
        );
        let large = cost_profile(
            MotifKind::Relu,
            &data,
            &MotifConfig::ai_default().with_batch_size(256),
        );
        assert!(
            large.memory_segments[0].working_set_bytes > small.memory_segments[0].working_set_bytes
        );
    }

    #[test]
    fn disabling_spill_removes_disk_writes() {
        let cfg = MotifConfig::big_data_default();
        let no_spill = MotifConfig {
            spill_to_disk: false,
            ..cfg
        };
        let with_spill = cost_profile(MotifKind::QuickSort, &text_data(1), &cfg);
        let without = cost_profile(MotifKind::QuickSort, &text_data(1), &no_spill);
        assert!(with_spill.disk_write_bytes > 0);
        assert_eq!(without.disk_write_bytes, 0);
        assert!(without.disk_read_bytes < with_spill.disk_read_bytes);
    }
}
