//! A persistent work-stealing worker pool shared by the whole harness.
//!
//! Before this module existed, every parallel site of the workspace —
//! the suite runner's per-workload fan-out, the DAG executor's per-stage
//! branches, [`crate::threading::map_chunks`]'s chunk map — spawned fresh
//! scoped OS threads on every call.  At proxy-benchmark scale (kernels of
//! microseconds, dozens of kernels per proxy, eight proxies per run) the
//! spawn/join syscalls rival the work itself, which directly erodes the
//! ~100x proxy speedup the methodology exists to deliver.
//!
//! [`WorkerPool`] replaces all of that with long-lived workers:
//!
//! * each worker owns a deque; a worker pushes tasks it spawns onto its
//!   own deque (popped LIFO for locality) and **steals** FIFO from the
//!   other deques and the shared injector queue when its own runs dry;
//! * external threads (anything that is not a pool worker) submit to the
//!   injector queue;
//! * [`WorkerPool::scope`] gives structured, borrow-friendly task groups:
//!   tasks may borrow from the caller's stack because `scope` does not
//!   return until every task it spawned (transitively) has finished;
//! * the **caller participates**: while waiting for a scope to drain, the
//!   calling thread executes tasks itself.  A pool therefore only needs
//!   `n - 1` background workers to run `n` branches concurrently, a pool
//!   with zero workers degrades to plain serial execution, and nested
//!   scopes on one pool cannot deadlock (a blocked waiter keeps running
//!   tasks instead of holding a worker hostage).
//!
//! Workers are spawned once, in [`WorkerPool::new`], and never in steady
//! state; [`WorkerPool::total_threads_spawned`] exposes the process-wide
//! spawn counter so tests can pin that property.
//!
//! Determinism: the pool schedules *when* tasks run, never *what* they
//! compute.  All harness tasks derive their seeds from topological or
//! positional indices and publish results into pre-indexed slots, so any
//! interleaving produces byte-identical output (see
//! `dmpb_core::executor`).

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// The number of hardware threads the host exposes (at least 1;
/// [`std::thread::available_parallelism`] with a conservative fallback).
pub fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The default ceiling for explicit parallelism requests, derived from
/// [`hardware_parallelism`] instead of a hard-wired constant: 4x the
/// hardware threads (a benchmark harness tolerates mild oversubscription),
/// floored at 8 so the canonical 8-worker determinism gates stay
/// meaningful on small CI boxes, and capped at 512 as a sanity bound on
/// very wide machines.
pub fn default_parallel_ceiling() -> usize {
    hardware_parallelism().saturating_mul(4).clamp(8, 512)
}

/// A task as stored in the queues: the scope it belongs to plus the
/// lifetime-erased closure (see the `SAFETY` discussion in
/// [`Scope::spawn`]).
struct Task {
    state: Arc<ScopeState>,
    run: Box<dyn FnOnce(&Scope<'static>) + Send + 'static>,
}

/// Completion tracking for one [`WorkerPool::scope`] call.
struct ScopeState {
    /// Tasks spawned but not yet finished.  The scope call returns only
    /// once this reaches zero.
    pending: AtomicUsize,
    /// First panic payload raised by a task of this scope, re-raised on
    /// the scope caller's thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// Distinguishes pools so a worker of pool A submitting to pool B is
    /// routed to B's injector, not A's deque index.
    id: usize,
    /// One deque per background worker.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Submission queue for external (non-worker) threads.
    injector: Mutex<VecDeque<Task>>,
    /// Sleep/wake plumbing: pushers notify under this lock, idle workers
    /// and scope waiters re-check the queues under it before parking.
    monitor: Mutex<()>,
    signal: Condvar,
    /// Threads currently parked (or about to park) on `signal`.  Pushers
    /// skip the monitor lock and the notification entirely while this is
    /// zero, keeping the task-submission hot path lock-free with respect
    /// to the monitor when every worker is busy.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    /// Enqueues a task: onto the current worker's own deque when called
    /// from a worker of this pool, onto the injector otherwise.
    fn push(&self, task: Task) {
        match current_slot() {
            Some((pool, index)) if pool == self.id && index < self.deques.len() => {
                self.deques[index]
                    .lock()
                    .expect("worker deque poisoned")
                    .push_back(task);
            }
            _ => {
                self.injector
                    .lock()
                    .expect("injector poisoned")
                    .push_back(task);
            }
        }
        self.wake();
    }

    /// Wakes parked threads if there are any.  Sound against the parking
    /// protocol: a parking thread registers in `sleepers` (SeqCst) and
    /// only then re-checks the queues, so either this load observes the
    /// sleeper and notifies, or the sleeper's re-check observes the work
    /// enqueued before the load — a wakeup can be skipped only when it
    /// was not needed.
    fn wake(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.monitor.lock().expect("pool monitor poisoned");
            self.signal.notify_all();
        }
    }

    /// Pops a task: the caller's own deque LIFO first (locality), then the
    /// injector, then the other deques FIFO (stealing).
    fn find_task(&self, own: Option<usize>) -> Option<Task> {
        if let Some(me) = own {
            if let Some(task) = self.deques[me]
                .lock()
                .expect("worker deque poisoned")
                .pop_back()
            {
                return Some(task);
            }
        }
        if let Some(task) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(task);
        }
        let workers = self.deques.len();
        let start = own.map_or(0, |me| me + 1);
        for offset in 0..workers {
            let victim = (start + offset) % workers;
            if Some(victim) == own {
                continue;
            }
            if let Some(task) = self.deques[victim]
                .lock()
                .expect("worker deque poisoned")
                .pop_front()
            {
                return Some(task);
            }
        }
        None
    }

    /// Whether any queue currently holds a task (used for the re-check
    /// under the monitor lock before parking).
    fn has_tasks(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.deques
            .iter()
            .any(|d| !d.lock().expect("worker deque poisoned").is_empty())
    }
}

thread_local! {
    /// `(pool id, worker index)` of the pool worker running on this
    /// thread, `None` on external threads.
    static WORKER_SLOT: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

fn current_slot() -> Option<(usize, usize)> {
    WORKER_SLOT.with(Cell::get)
}

/// The index of the pool worker running on the current thread, if any.
///
/// Sharded resources (notably [`crate::pool::BufferPool`]) use this to
/// pick a per-worker shard without threading pool handles through every
/// kernel signature.
pub fn current_worker_index() -> Option<usize> {
    current_slot().map(|(_, index)| index)
}

/// Runs one task, routing a panic into the scope state, and signals
/// completion.
fn run_task(shared: &Arc<Shared>, task: Task) {
    let Task { state, run } = task;
    let scope = Scope::<'static> {
        shared: Arc::clone(shared),
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(&scope))) {
        let mut slot = state.panic.lock().expect("scope panic slot poisoned");
        slot.get_or_insert(payload);
    }
    if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
        // Last task of the scope: wake its waiter.
        shared.wake();
    }
}

/// The long-lived background worker body.
fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER_SLOT.with(|slot| slot.set(Some((shared.id, index))));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = shared.find_task(Some(index)) {
            run_task(&shared, task);
            continue;
        }
        let guard = shared.monitor.lock().expect("pool monitor poisoned");
        // Park protocol: register as a sleeper *first*, then re-check the
        // queues — a pusher either sees the registration and notifies, or
        // enqueued early enough for this re-check to find the task.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        if shared.shutdown.load(Ordering::Acquire) || shared.has_tasks() {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            continue;
        }
        let _ = shared
            .signal
            .wait_timeout(guard, Duration::from_millis(2))
            .expect("pool monitor poisoned");
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Helps execute tasks until `state` has no pending tasks left.  Called by
/// scope waiters — the scope owner's thread and any worker blocked on a
/// nested scope — so waiting threads contribute throughput instead of
/// parking.
fn help_until_done(shared: &Arc<Shared>, state: &Arc<ScopeState>) {
    let own = current_slot().and_then(|(pool, index)| (pool == shared.id).then_some(index));
    while state.pending.load(Ordering::SeqCst) != 0 {
        if let Some(task) = shared.find_task(own) {
            run_task(shared, task);
            continue;
        }
        let guard = shared.monitor.lock().expect("pool monitor poisoned");
        // Same park protocol as `worker_loop`: register, then re-check
        // both wake conditions (scope drained, work available).
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        if state.pending.load(Ordering::SeqCst) == 0 || shared.has_tasks() {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            if state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            continue;
        }
        let _ = shared
            .signal
            .wait_timeout(guard, Duration::from_micros(500))
            .expect("pool monitor poisoned");
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A spawn handle into one [`WorkerPool::scope`] call.
///
/// Tasks receive a `&Scope<'scope>` so they can spawn further tasks into
/// the same scope — this is what lets the DAG executor release successor
/// edges the instant their countdown hits zero, from whichever worker
/// finished the last predecessor.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, like [`std::thread::Scope`].
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.state.pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns a task into this scope.  The closure may borrow anything
    /// that outlives the `scope` call, and may itself spawn further tasks
    /// through the `&Scope` it receives.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let run: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(f);
        // SAFETY: the closure's `'scope` borrows are erased to `'static`
        // for storage in the queues.  This is sound because every path out
        // of `WorkerPool::scope` — normal return or unwind — first waits
        // for `pending` to reach zero (the `WaitGuard`), and `pending` is
        // only decremented *after* a task's closure has returned.  No task
        // can therefore touch its borrows after `scope` returns, which is
        // exactly the guarantee `'scope` encoded.  The `Scope<'static>`
        // argument mismatch is equally erased; `Scope`'s layout does not
        // depend on its lifetime parameter.
        let run: Box<dyn FnOnce(&Scope<'static>) + Send + 'static> = unsafe {
            std::mem::transmute::<
                Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>,
                Box<dyn FnOnce(&Scope<'static>) + Send + 'static>,
            >(run)
        };
        self.shared.push(Task {
            state: Arc::clone(&self.state),
            run,
        });
    }
}

/// Process-wide count of threads ever spawned by any [`WorkerPool`]; see
/// [`WorkerPool::total_threads_spawned`].
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);
/// Monotonic pool-id source for [`Shared::id`].
static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

/// A persistent pool of work-stealing workers (see the
/// [module documentation](self)).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` background worker threads.  Because
    /// scope callers participate in execution, a pool sized `n - 1` runs
    /// `n` branches concurrently, and `WorkerPool::new(0)` is a valid,
    /// thread-free pool whose scopes execute entirely on the caller.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            monitor: Mutex::new(()),
            signal: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|index| {
                THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dmpb-worker-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// A process-wide shared pool sized to the hardware
    /// (`hardware_parallelism() - 1` background workers), for call sites
    /// without their own pool (e.g. [`crate::threading::map_chunks`]).
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(WorkerPool::new(hardware_parallelism() - 1)))
    }

    /// Number of background worker threads (constant for the pool's whole
    /// lifetime — workers are never added, replaced or respawned).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Total threads ever spawned by worker pools in this process.  Stable
    /// across steady-state execution: after the pools a workload uses have
    /// been constructed, repeated runs must not move this counter.
    pub fn total_threads_spawned() -> usize {
        THREADS_SPAWNED.load(Ordering::Relaxed)
    }

    /// Runs `f` with a [`Scope`] spawn handle and waits — helping to
    /// execute tasks — until every task spawned into the scope (including
    /// transitively, by other tasks) has finished.  Panics raised by tasks
    /// are re-raised here after the scope has drained.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&state),
            _marker: PhantomData,
        };
        let result = {
            /// Waits out the scope even when `f` unwinds, so borrowed data
            /// is never freed under a still-running task.
            struct WaitGuard<'a> {
                shared: &'a Arc<Shared>,
                state: &'a Arc<ScopeState>,
            }
            impl Drop for WaitGuard<'_> {
                fn drop(&mut self) {
                    help_until_done(self.shared, self.state);
                }
            }
            let _wait = WaitGuard {
                shared: &self.shared,
                state: &state,
            };
            f(&scope)
        };
        let payload = state
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        result
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.monitor.lock().expect("pool monitor poisoned");
            self.shared.signal.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_worker_pool_executes_on_the_caller() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        let caller = std::thread::current().id();
        let ran_on = Mutex::new(None);
        pool.scope(|s| {
            let ran_on = &ran_on;
            s.spawn(move |_| {
                *ran_on.lock().unwrap() = Some(std::thread::current().id());
            });
        });
        assert_eq!(ran_on.into_inner().unwrap(), Some(caller));
    }

    #[test]
    fn tasks_can_spawn_tasks_into_the_same_scope() {
        let pool = WorkerPool::new(2);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            let counter = &counter;
            s.spawn(move |s| {
                counter.fetch_add(1, Ordering::Relaxed);
                for _ in 0..10 {
                    s.spawn(move |s| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 21);
    }

    #[test]
    fn nested_scopes_on_one_pool_do_not_deadlock() {
        let pool = WorkerPool::new(1);
        let counter = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let counter = &counter;
                let pool = &pool;
                outer.spawn(move |_| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move |_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panics_propagate_to_the_scope_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("task exploded"));
            });
        }));
        assert!(result.is_err());
        // The pool survives a task panic.
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            let counter = &counter;
            s.spawn(move |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_count_is_constant_and_spawns_are_construction_only() {
        let before = WorkerPool::total_threads_spawned();
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let after_construction = WorkerPool::total_threads_spawned();
        assert_eq!(after_construction - before, 4);
        for _ in 0..10 {
            pool.scope(|s| {
                for _ in 0..32 {
                    s.spawn(|_| {
                        std::hint::black_box(0u64);
                    });
                }
            });
        }
        assert_eq!(
            WorkerPool::total_threads_spawned(),
            after_construction,
            "steady-state scopes must not spawn threads"
        );
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn worker_indices_are_exposed_to_tasks() {
        let pool = WorkerPool::new(2);
        // The external caller has no worker index; pool workers do.  With
        // the caller helping, some tasks may legitimately observe `None`.
        assert_eq!(current_worker_index(), None);
        let seen = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..64 {
                let seen = &seen;
                s.spawn(move |_| {
                    seen.lock().unwrap().push(current_worker_index());
                    std::thread::yield_now();
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 64);
        assert!(seen
            .iter()
            .all(|slot| matches!(slot, None | Some(0) | Some(1))));
    }

    #[test]
    fn ceiling_is_derived_from_the_hardware() {
        let ceiling = default_parallel_ceiling();
        assert!(ceiling >= 8, "floor keeps 8-worker gates meaningful");
        assert!(ceiling >= hardware_parallelism());
        assert!(ceiling <= 512);
    }
}
