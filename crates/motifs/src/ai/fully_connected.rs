//! Fully connected (dense) layer and element-wise multiplication.

/// Forward pass of a fully connected layer: `output = input * weightsᵀ + bias`.
///
/// `input` is `[batch, in_features]` flattened row-major, `weights` is
/// `[out_features, in_features]` flattened row-major, `bias` has
/// `out_features` entries.  Returns `[batch, out_features]`.
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn fully_connected(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    batch: usize,
    in_features: usize,
    out_features: usize,
) -> Vec<f32> {
    assert_eq!(input.len(), batch * in_features, "input shape mismatch");
    assert_eq!(
        weights.len(),
        out_features * in_features,
        "weight shape mismatch"
    );
    assert_eq!(bias.len(), out_features, "bias shape mismatch");
    let mut output = vec![0.0f32; batch * out_features];
    for b in 0..batch {
        let row = &input[b * in_features..(b + 1) * in_features];
        for o in 0..out_features {
            let w = &weights[o * in_features..(o + 1) * in_features];
            let mut acc = bias[o];
            for (x, wv) in row.iter().zip(w) {
                acc += x * wv;
            }
            output[b * out_features + o] = acc;
        }
    }
    output
}

/// Element-wise multiplication of two equally shaped tensors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn element_wise_multiply(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "tensor length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_matches_hand_computation() {
        // batch=1, in=3, out=2
        let input = [1.0, 2.0, 3.0];
        let weights = [1.0, 0.0, -1.0, 0.5, 0.5, 0.5];
        let bias = [0.5, -1.0];
        let out = fully_connected(&input, &weights, &bias, 1, 3, 2);
        assert_eq!(out, vec![1.0 - 3.0 + 0.5, 0.5 + 1.0 + 1.5 - 1.0]);
    }

    #[test]
    fn fully_connected_handles_batches_independently() {
        let input = [1.0, 0.0, 0.0, 1.0]; // batch=2, in=2
        let weights = [2.0, 3.0]; // out=1
        let bias = [0.0];
        let out = fully_connected(&input, &weights, &bias, 2, 2, 1);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn identity_weights_reproduce_input() {
        let input = [3.0, 7.0];
        let weights = [1.0, 0.0, 0.0, 1.0];
        let bias = [0.0, 0.0];
        let out = fully_connected(&input, &weights, &bias, 1, 2, 2);
        assert_eq!(out, vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "weight shape")]
    fn rejects_bad_weight_shape() {
        let _ = fully_connected(&[1.0], &[1.0, 2.0, 3.0], &[0.0], 1, 1, 1);
    }

    #[test]
    fn element_wise_multiply_works() {
        assert_eq!(
            element_wise_multiply(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]),
            vec![4.0, 10.0, 18.0]
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn element_wise_multiply_rejects_mismatch() {
        let _ = element_wise_multiply(&[1.0], &[1.0, 2.0]);
    }
}
