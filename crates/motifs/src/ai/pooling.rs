//! Pooling motifs: max pooling and average pooling over `ImageTensor`s.

use dmpb_datagen::image::{ImageTensor, TensorShape};

/// Pooling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Take the maximum of each window.
    Max,
    /// Take the mean of each window.
    Average,
}

/// 2-D pooling with a square window and stride, valid padding.
///
/// # Panics
///
/// Panics if the window is zero-sized or larger than the input.
pub fn pool2d(input: &ImageTensor, window: usize, stride: usize, mode: PoolMode) -> ImageTensor {
    let shape = input.shape();
    assert!(
        window > 0 && stride > 0,
        "window and stride must be non-zero"
    );
    assert!(
        window <= shape.height && window <= shape.width,
        "window larger than the input"
    );
    let out_h = (shape.height - window) / stride + 1;
    let out_w = (shape.width - window) / stride + 1;
    let out_shape = TensorShape::new(shape.batch, shape.channels, out_h, out_w);
    let mut output = ImageTensor::zeros(out_shape, input.layout());
    for n in 0..shape.batch {
        for c in 0..shape.channels {
            for oh in 0..out_h {
                for ow in 0..out_w {
                    let mut acc = match mode {
                        PoolMode::Max => f32::NEG_INFINITY,
                        PoolMode::Average => 0.0,
                    };
                    for kh in 0..window {
                        for kw in 0..window {
                            let v = input.get(n, c, oh * stride + kh, ow * stride + kw);
                            match mode {
                                PoolMode::Max => acc = acc.max(v),
                                PoolMode::Average => acc += v,
                            }
                        }
                    }
                    if mode == PoolMode::Average {
                        acc /= (window * window) as f32;
                    }
                    output.set(n, c, oh, ow, acc);
                }
            }
        }
    }
    output
}

/// Max pooling (convenience wrapper).
pub fn max_pool2d(input: &ImageTensor, window: usize, stride: usize) -> ImageTensor {
    pool2d(input, window, stride, PoolMode::Max)
}

/// Average pooling (convenience wrapper).
pub fn average_pool2d(input: &ImageTensor, window: usize, stride: usize) -> ImageTensor {
    pool2d(input, window, stride, PoolMode::Average)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::image::TensorLayout;

    fn ramp_tensor() -> ImageTensor {
        let shape = TensorShape::new(1, 1, 4, 4);
        let mut t = ImageTensor::zeros(shape, TensorLayout::Nchw);
        for h in 0..4 {
            for w in 0..4 {
                t.set(0, 0, h, w, (h * 4 + w) as f32);
            }
        }
        t
    }

    #[test]
    fn max_pool_takes_window_maxima() {
        let out = max_pool2d(&ramp_tensor(), 2, 2);
        assert_eq!(out.shape().height, 2);
        assert_eq!(out.shape().width, 2);
        assert_eq!(out.get(0, 0, 0, 0), 5.0);
        assert_eq!(out.get(0, 0, 0, 1), 7.0);
        assert_eq!(out.get(0, 0, 1, 0), 13.0);
        assert_eq!(out.get(0, 0, 1, 1), 15.0);
    }

    #[test]
    fn average_pool_takes_window_means() {
        let out = average_pool2d(&ramp_tensor(), 2, 2);
        assert_eq!(out.get(0, 0, 0, 0), (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
        assert_eq!(out.get(0, 0, 1, 1), (10.0 + 11.0 + 14.0 + 15.0) / 4.0);
    }

    #[test]
    fn stride_one_overlapping_windows() {
        let out = max_pool2d(&ramp_tensor(), 2, 1);
        assert_eq!(out.shape().height, 3);
        assert_eq!(out.shape().width, 3);
        assert_eq!(out.get(0, 0, 0, 0), 5.0);
        assert_eq!(out.get(0, 0, 2, 2), 15.0);
    }

    #[test]
    fn pooling_preserves_batch_and_channels() {
        let shape = TensorShape::new(2, 3, 8, 8);
        let t = ImageTensor::zeros(shape, TensorLayout::Nhwc);
        let out = max_pool2d(&t, 2, 2);
        assert_eq!(out.shape().batch, 2);
        assert_eq!(out.shape().channels, 3);
        assert_eq!(out.shape().height, 4);
    }

    #[test]
    #[should_panic(expected = "window larger")]
    fn oversized_window_is_rejected() {
        let _ = max_pool2d(&ramp_tensor(), 5, 1);
    }
}
