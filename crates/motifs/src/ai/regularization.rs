//! Dropout motif.

use rand::Rng;

use dmpb_datagen::rng::seeded_rng;

/// Inverted dropout: zeroes each element with probability `rate` and scales
/// the survivors by `1 / (1 - rate)` so the expected activation is
/// unchanged.  Deterministic for a given seed.
///
/// # Panics
///
/// Panics if `rate` is outside `[0, 1)`.
pub fn dropout(input: &[f32], rate: f64, seed: u64) -> Vec<f32> {
    assert!(
        (0.0..1.0).contains(&rate),
        "dropout rate must be within [0, 1)"
    );
    if rate == 0.0 {
        return input.to_vec();
    }
    let scale = 1.0 / (1.0 - rate) as f32;
    let mut rng = seeded_rng(seed);
    input
        .iter()
        .map(|&v| {
            if rng.gen::<f64>() < rate {
                0.0
            } else {
                v * scale
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_zeroes_roughly_the_requested_fraction() {
        let input = vec![1.0f32; 100_000];
        let out = dropout(&input, 0.4, 9);
        let zeroed = out.iter().filter(|&&v| v == 0.0).count();
        let ratio = zeroed as f64 / input.len() as f64;
        assert!((ratio - 0.4).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn dropout_preserves_expected_value() {
        let input = vec![2.0f32; 100_000];
        let out = dropout(&input, 0.5, 10);
        let mean: f64 = out.iter().map(|&v| v as f64).sum::<f64>() / out.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_rate_is_identity() {
        let input = vec![1.0, 2.0, 3.0];
        assert_eq!(dropout(&input, 0.0, 1), input);
    }

    #[test]
    fn dropout_is_deterministic() {
        let input: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        assert_eq!(dropout(&input, 0.3, 7), dropout(&input, 0.3, 7));
    }

    #[test]
    #[should_panic(expected = "within [0, 1)")]
    fn rate_of_one_is_rejected() {
        let _ = dropout(&[1.0], 1.0, 1);
    }
}
