//! Normalisation motifs: batch normalisation and cosine normalisation.

use dmpb_datagen::image::ImageTensor;

/// Batch normalisation over an `ImageTensor`: per channel, normalise to
/// zero mean and unit variance across batch and spatial dimensions, then
/// scale and shift.
///
/// # Panics
///
/// Panics if `gamma` / `beta` length does not match the channel count.
pub fn batch_norm(input: &ImageTensor, gamma: &[f32], beta: &[f32], epsilon: f32) -> ImageTensor {
    let shape = input.shape();
    assert_eq!(gamma.len(), shape.channels, "gamma length mismatch");
    assert_eq!(beta.len(), shape.channels, "beta length mismatch");
    let per_channel = (shape.batch * shape.height * shape.width) as f32;
    let mut output = input.clone();
    for c in 0..shape.channels {
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for n in 0..shape.batch {
            for h in 0..shape.height {
                for w in 0..shape.width {
                    let v = input.get(n, c, h, w) as f64;
                    sum += v;
                    sum_sq += v * v;
                }
            }
        }
        let mean = (sum / per_channel as f64) as f32;
        let var = (sum_sq / per_channel as f64) as f32 - mean * mean;
        let inv_std = 1.0 / (var.max(0.0) + epsilon).sqrt();
        for n in 0..shape.batch {
            for h in 0..shape.height {
                for w in 0..shape.width {
                    let v = input.get(n, c, h, w);
                    output.set(n, c, h, w, gamma[c] * (v - mean) * inv_std + beta[c]);
                }
            }
        }
    }
    output
}

/// Cosine normalisation of a flat vector: divides by its L2 norm (returns
/// the input unchanged when the norm is zero).
pub fn cosine_normalize(input: &[f32]) -> Vec<f32> {
    let norm: f32 = input.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm == 0.0 {
        return input.to_vec();
    }
    input.iter().map(|v| v / norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::image::{ImageGenerator, TensorLayout, TensorShape};

    #[test]
    fn batch_norm_zero_means_unit_variance() {
        let input =
            ImageGenerator::new(3).generate(TensorShape::new(4, 2, 8, 8), TensorLayout::Nchw);
        let out = batch_norm(&input, &[1.0, 1.0], &[0.0, 0.0], 1e-5);
        let shape = out.shape();
        for c in 0..2 {
            let mut values = Vec::new();
            for n in 0..shape.batch {
                for h in 0..shape.height {
                    for w in 0..shape.width {
                        values.push(out.get(n, c, h, w) as f64);
                    }
                }
            }
            let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
            let var: f64 =
                values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batch_norm_applies_gamma_and_beta() {
        let input =
            ImageGenerator::new(4).generate(TensorShape::new(2, 1, 4, 4), TensorLayout::Nchw);
        let plain = batch_norm(&input, &[1.0], &[0.0], 1e-5);
        let scaled = batch_norm(&input, &[2.0], &[1.0], 1e-5);
        for (p, s) in plain.as_slice().iter().zip(scaled.as_slice()) {
            assert!((s - (2.0 * p + 1.0)).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_normalize_produces_unit_vector() {
        let out = cosine_normalize(&[3.0, 4.0]);
        let norm: f32 = out.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        assert!((out[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn cosine_normalize_of_zero_vector_is_identity() {
        assert_eq!(cosine_normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "gamma length")]
    fn batch_norm_rejects_bad_gamma() {
        let input =
            ImageGenerator::new(5).generate(TensorShape::new(1, 3, 2, 2), TensorLayout::Nchw);
        let _ = batch_norm(&input, &[1.0], &[0.0, 0.0, 0.0], 1e-5);
    }
}
