//! Convolution motif: direct 2-D convolution over `ImageTensor`s.
//!
//! The implementation honours the knobs the paper lists for its AI motif
//! implementations: input geometry (height, width, channels), filter
//! geometry, stride and padding algorithm (`SAME` / `VALID`), and the data
//! storage format is whatever layout the input tensor carries.

use dmpb_datagen::image::{ImageTensor, TensorShape};

/// Padding algorithm, matching TensorFlow's naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Padding {
    /// No padding: the output shrinks by `filter - 1`.
    Valid,
    /// Zero padding so that (with stride 1) the output keeps the input size.
    Same,
}

/// Convolution filter bank: `[out_channels, in_channels, k, k]` row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterBank {
    /// Number of output channels.
    pub out_channels: usize,
    /// Number of input channels.
    pub in_channels: usize,
    /// Spatial size of the (square) kernel.
    pub kernel: usize,
    /// Flattened weights.
    pub weights: Vec<f32>,
}

impl FilterBank {
    /// Creates a filter bank from flattened weights.
    ///
    /// # Panics
    ///
    /// Panics if the weight count does not match the declared shape.
    pub fn new(out_channels: usize, in_channels: usize, kernel: usize, weights: Vec<f32>) -> Self {
        assert_eq!(
            weights.len(),
            out_channels * in_channels * kernel * kernel,
            "weight count does not match filter shape"
        );
        Self {
            out_channels,
            in_channels,
            kernel,
            weights,
        }
    }

    /// A bank with every weight equal to `value` (useful in tests).
    pub fn constant(out_channels: usize, in_channels: usize, kernel: usize, value: f32) -> Self {
        Self::new(
            out_channels,
            in_channels,
            kernel,
            vec![value; out_channels * in_channels * kernel * kernel],
        )
    }

    fn weight(&self, oc: usize, ic: usize, kh: usize, kw: usize) -> f32 {
        self.weights[((oc * self.in_channels + ic) * self.kernel + kh) * self.kernel + kw]
    }
}

/// Direct 2-D convolution.
///
/// # Panics
///
/// Panics if the filter's input channel count does not match the tensor, or
/// if the stride is zero.
pub fn conv2d(
    input: &ImageTensor,
    filters: &FilterBank,
    stride: usize,
    padding: Padding,
) -> ImageTensor {
    assert!(stride > 0, "stride must be non-zero");
    let shape = input.shape();
    assert_eq!(
        filters.in_channels, shape.channels,
        "input channel mismatch"
    );

    let pad = match padding {
        Padding::Valid => 0,
        Padding::Same => (filters.kernel - 1) / 2,
    };
    let out_h = (shape.height + 2 * pad - filters.kernel) / stride + 1;
    let out_w = (shape.width + 2 * pad - filters.kernel) / stride + 1;
    let out_shape = TensorShape::new(shape.batch, filters.out_channels, out_h, out_w);
    let mut output = ImageTensor::zeros(out_shape, input.layout());

    for n in 0..shape.batch {
        for oc in 0..filters.out_channels {
            for oh in 0..out_h {
                for ow in 0..out_w {
                    let mut acc = 0.0f32;
                    for ic in 0..shape.channels {
                        for kh in 0..filters.kernel {
                            for kw in 0..filters.kernel {
                                let ih = (oh * stride + kh) as isize - pad as isize;
                                let iw = (ow * stride + kw) as isize - pad as isize;
                                if ih < 0
                                    || iw < 0
                                    || ih >= shape.height as isize
                                    || iw >= shape.width as isize
                                {
                                    continue;
                                }
                                acc += input.get(n, ic, ih as usize, iw as usize)
                                    * filters.weight(oc, ic, kh, kw);
                            }
                        }
                    }
                    output.set(n, oc, oh, ow, acc);
                }
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::image::TensorLayout;

    fn ones_input(h: usize, w: usize) -> ImageTensor {
        let shape = TensorShape::new(1, 1, h, w);
        let mut t = ImageTensor::zeros(shape, TensorLayout::Nchw);
        for y in 0..h {
            for x in 0..w {
                t.set(0, 0, y, x, 1.0);
            }
        }
        t
    }

    #[test]
    fn valid_convolution_output_shape() {
        let out = conv2d(
            &ones_input(5, 5),
            &FilterBank::constant(2, 1, 3, 1.0),
            1,
            Padding::Valid,
        );
        assert_eq!(out.shape().height, 3);
        assert_eq!(out.shape().width, 3);
        assert_eq!(out.shape().channels, 2);
    }

    #[test]
    fn same_padding_keeps_spatial_size_with_stride_one() {
        let out = conv2d(
            &ones_input(6, 6),
            &FilterBank::constant(1, 1, 3, 1.0),
            1,
            Padding::Same,
        );
        assert_eq!(out.shape().height, 6);
        assert_eq!(out.shape().width, 6);
    }

    #[test]
    fn constant_filter_on_ones_sums_window() {
        let out = conv2d(
            &ones_input(5, 5),
            &FilterBank::constant(1, 1, 3, 1.0),
            1,
            Padding::Valid,
        );
        // Interior windows see 9 ones.
        assert_eq!(out.get(0, 0, 1, 1), 9.0);
    }

    #[test]
    fn same_padding_border_sums_partial_window() {
        let out = conv2d(
            &ones_input(5, 5),
            &FilterBank::constant(1, 1, 3, 1.0),
            1,
            Padding::Same,
        );
        assert_eq!(
            out.get(0, 0, 0, 0),
            4.0,
            "corner window covers 2x2 real pixels"
        );
        assert_eq!(out.get(0, 0, 2, 2), 9.0);
    }

    #[test]
    fn stride_two_halves_the_output() {
        let out = conv2d(
            &ones_input(8, 8),
            &FilterBank::constant(1, 1, 2, 1.0),
            2,
            Padding::Valid,
        );
        assert_eq!(out.shape().height, 4);
        assert_eq!(out.shape().width, 4);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let shape = TensorShape::new(1, 1, 3, 3);
        let mut input = ImageTensor::zeros(shape, TensorLayout::Nchw);
        for y in 0..3 {
            for x in 0..3 {
                input.set(0, 0, y, x, (y * 3 + x) as f32);
            }
        }
        let filters = FilterBank::new(1, 1, 1, vec![1.0]);
        let out = conv2d(&input, &filters, 1, Padding::Valid);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn mismatched_channels_are_rejected() {
        let _ = conv2d(
            &ones_input(4, 4),
            &FilterBank::constant(1, 3, 3, 1.0),
            1,
            Padding::Valid,
        );
    }
}
