//! Activation functions: sigmoid, tanh, softmax and ReLU.

/// Sigmoid applied element-wise.
pub fn sigmoid(input: &[f32]) -> Vec<f32> {
    input.iter().map(|&x| 1.0 / (1.0 + (-x).exp())).collect()
}

/// Tanh applied element-wise.
pub fn tanh(input: &[f32]) -> Vec<f32> {
    input.iter().map(|&x| x.tanh()).collect()
}

/// ReLU applied element-wise.
pub fn relu(input: &[f32]) -> Vec<f32> {
    input.iter().map(|&x| x.max(0.0)).collect()
}

/// Numerically stable softmax over each row of a `[batch, classes]` tensor.
///
/// # Panics
///
/// Panics if the input length is not a multiple of `classes` or `classes`
/// is zero.
pub fn softmax(input: &[f32], classes: usize) -> Vec<f32> {
    assert!(classes > 0, "classes must be non-zero");
    assert!(
        input.len() % classes == 0,
        "input is not a whole number of rows"
    );
    let mut output = Vec::with_capacity(input.len());
    for row in input.chunks_exact(classes) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        output.extend(exps.into_iter().map(|e| e / sum));
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_midpoint() {
        let out = sigmoid(&[-100.0, 0.0, 100.0]);
        assert!(out[0] < 1e-6);
        assert!((out[1] - 0.5).abs() < 1e-6);
        assert!(out[2] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let out = tanh(&[-1.0, 0.0, 1.0]);
        assert!((out[0] + out[2]).abs() < 1e-6);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(&[-2.0, -0.1, 0.0, 3.5]), vec![0.0, 0.0, 0.0, 3.5]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let out = softmax(&[1.0, 2.0, 3.0, 10.0, 10.0, 10.0], 3);
        let row1: f32 = out[..3].iter().sum();
        let row2: f32 = out[3..].iter().sum();
        assert!((row1 - 1.0).abs() < 1e-6);
        assert!((row2 - 1.0).abs() < 1e-6);
        // Uniform logits give uniform probabilities.
        assert!((out[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let out = softmax(&[1000.0, 1001.0], 2);
        assert!(out.iter().all(|v| v.is_finite()));
        assert!(out[1] > out[0]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn softmax_rejects_ragged_input() {
        let _ = softmax(&[1.0, 2.0, 3.0], 2);
    }
}
