//! AI data-motif implementations (right column of Fig. 2).
//!
//! These kernels are the layer-level building blocks of the AlexNet and
//! Inception-V3 proxies: fully connected layers, element-wise operations
//! and activations, pooling, convolution, dropout, normalisation and
//! reductions.  They operate on the `NCHW`/`NHWC` image tensors from
//! `dmpb-datagen`, honouring the data-format, batch-size, filter-geometry
//! and padding considerations the paper calls out for its AI motif
//! implementations.

pub mod activation;
pub mod convolution;
pub mod fully_connected;
pub mod normalization;
pub mod pooling;
pub mod reduce;
pub mod regularization;
