//! Reduction motifs: reduce-sum and reduce-max.

/// Sum of all elements.
pub fn reduce_sum(input: &[f32]) -> f32 {
    input.iter().sum()
}

/// Maximum element; `None` for an empty slice.
pub fn reduce_max(input: &[f32]) -> Option<f32> {
    input.iter().cloned().reduce(f32::max)
}

/// Row-wise sums of a `[rows, cols]` tensor.
///
/// # Panics
///
/// Panics if the input length is not a multiple of `cols` or `cols` is zero.
pub fn reduce_sum_rows(input: &[f32], cols: usize) -> Vec<f32> {
    assert!(cols > 0, "cols must be non-zero");
    assert!(
        input.len() % cols == 0,
        "input is not a whole number of rows"
    );
    input
        .chunks_exact(cols)
        .map(|row| row.iter().sum())
        .collect()
}

/// Row-wise maxima of a `[rows, cols]` tensor.
///
/// # Panics
///
/// Panics if the input length is not a multiple of `cols` or `cols` is zero.
pub fn reduce_max_rows(input: &[f32], cols: usize) -> Vec<f32> {
    assert!(cols > 0, "cols must be non-zero");
    assert!(
        input.len() % cols == 0,
        "input is not a whole number of rows"
    );
    input
        .chunks_exact(cols)
        .map(|row| row.iter().cloned().fold(f32::NEG_INFINITY, f32::max))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sum_adds_everything() {
        assert_eq!(reduce_sum(&[1.0, 2.0, 3.5]), 6.5);
        assert_eq!(reduce_sum(&[]), 0.0);
    }

    #[test]
    fn reduce_max_finds_the_largest() {
        assert_eq!(reduce_max(&[1.0, 7.0, -3.0]), Some(7.0));
        assert_eq!(reduce_max(&[]), None);
    }

    #[test]
    fn row_wise_reductions() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(reduce_sum_rows(&data, 3), vec![6.0, 15.0]);
        assert_eq!(reduce_max_rows(&data, 3), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_rows_are_rejected() {
        let _ = reduce_sum_rows(&[1.0, 2.0, 3.0], 2);
    }
}
