//! Chunked multi-threaded execution of motif kernels.
//!
//! The paper's big-data motif implementations use the POSIX-threads model:
//! input data is partitioned, each thread processes its chunk, intermediate
//! results may be written to disk, and a final step combines the partial
//! results.  [`map_chunks`] reproduces that shape on the process-wide
//! persistent [`WorkerPool`] — chunks become pool tasks instead of freshly
//! spawned scoped threads, so repeated motif invocations pay no per-call
//! thread spawn/join cost.

use crate::workers::WorkerPool;

/// Runs `map` over equal chunks of `items` as tasks on the shared
/// [`WorkerPool`] and folds the per-chunk results with `combine`.
///
/// Chunks are assigned contiguously, mirroring how the motif
/// implementations partition their input ("input data partition, chunk data
/// allocation per thread").  The fold order is deterministic (chunk order),
/// so `combine` need not be commutative, and the result is independent of
/// how the pool schedules the chunk tasks.
///
/// Returns `None` if `items` is empty.
///
/// # Panics
///
/// Panics if `num_tasks` is zero or a worker task panics.
pub fn map_chunks<T, R, M, C>(items: &[T], num_tasks: usize, map: M, combine: C) -> Option<R>
where
    T: Sync,
    R: Send,
    M: Fn(usize, &[T]) -> R + Sync,
    C: Fn(R, R) -> R,
{
    assert!(num_tasks > 0, "at least one task is required");
    if items.is_empty() {
        return None;
    }
    let num_tasks = num_tasks.min(items.len());
    let chunk_len = items.len().div_ceil(num_tasks);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();

    // Each task gets its own `&mut` slot, so result publication needs no
    // locking and no atomics.
    let mut results: Vec<Option<R>> = chunks.iter().map(|_| None).collect();
    WorkerPool::global().scope(|scope| {
        for ((index, &chunk), slot) in chunks.iter().enumerate().zip(results.iter_mut()) {
            let map = &map;
            scope.spawn(move |_| {
                *slot = Some(map(index, chunk));
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.expect("every chunk task produced a result"))
        .reduce(combine)
}

/// Splits `total_items` into per-task chunk sizes of at most
/// `chunk_items`, the decomposition used by the cost models to reason
/// about task counts.
pub fn chunk_counts(total_items: u64, chunk_items: u64) -> u64 {
    if total_items == 0 {
        0
    } else {
        total_items.div_ceil(chunk_items.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_sums_correctly() {
        let data: Vec<u64> = (1..=1000).collect();
        let total = map_chunks(&data, 8, |_, chunk| chunk.iter().sum::<u64>(), |a, b| a + b);
        assert_eq!(total, Some(500_500));
    }

    #[test]
    fn single_task_matches_multi_task() {
        let data: Vec<u64> = (0..997).map(|i| i * 31 % 101).collect();
        let one = map_chunks(&data, 1, |_, c| c.iter().sum::<u64>(), |a, b| a + b);
        let many = map_chunks(&data, 7, |_, c| c.iter().sum::<u64>(), |a, b| a + b);
        assert_eq!(one, many);
    }

    #[test]
    fn empty_input_returns_none() {
        let data: Vec<u64> = Vec::new();
        assert_eq!(map_chunks(&data, 4, |_, c| c.len(), |a, b| a + b), None);
    }

    #[test]
    fn chunk_indexes_are_passed_in_order() {
        let data: Vec<u32> = (0..100).collect();
        let indexes = map_chunks(
            &data,
            4,
            |index, _| vec![index],
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
        .unwrap();
        assert_eq!(indexes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn more_tasks_than_items_is_fine() {
        let data = vec![1u64, 2, 3];
        let total = map_chunks(&data, 64, |_, c| c.iter().sum::<u64>(), |a, b| a + b);
        assert_eq!(total, Some(6));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_is_rejected() {
        let data = vec![1u64];
        let _ = map_chunks(&data, 0, |_, c| c.len(), |a, b| a + b);
    }

    #[test]
    fn chunk_counts_rounds_up() {
        assert_eq!(chunk_counts(100, 64), 2);
        assert_eq!(chunk_counts(0, 64), 0);
        assert_eq!(chunk_counts(64, 64), 1);
        assert_eq!(chunk_counts(10, 0), 10);
    }
}
