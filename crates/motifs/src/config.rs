//! Per-motif configuration — the implementation-side view of Table I.
//!
//! The proxy generator (in `dmpb-core`) owns the full parameter vector
//! **P**; when it runs or models one motif it translates the relevant
//! entries into this [`MotifConfig`]: the chunk size processed per task,
//! the number of tasks, and the tensor geometry for the AI motifs.

/// Configuration of a single motif invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifConfig {
    /// Data block size processed by each worker task, in bytes
    /// (`chunkSize` of Table I).
    pub chunk_bytes: u64,
    /// Number of worker tasks (`numTasks`).
    pub num_tasks: u32,
    /// Batch size per iteration for AI motifs (`batchSize`).
    pub batch_size: u32,
    /// Input / filter height for AI motifs (`heightSize`).
    pub height: u32,
    /// Input / filter width for AI motifs (`widthSize`).
    pub width: u32,
    /// Number of channels for AI motifs (`numChannels`).
    pub channels: u32,
    /// Convolution filter spatial size (filters are square).
    pub filter_size: u32,
    /// Whether intermediate results are spilled to disk between phases, as
    /// the Hadoop-style big-data motifs do.
    pub spill_to_disk: bool,
}

impl MotifConfig {
    /// A sensible default for big-data motifs: 64 MB chunks (the HDFS
    /// default block size), 8 tasks, spilling intermediates to disk.
    pub fn big_data_default() -> Self {
        Self {
            chunk_bytes: 64 * 1024 * 1024,
            num_tasks: 8,
            batch_size: 1,
            height: 1,
            width: 1,
            channels: 1,
            filter_size: 1,
            spill_to_disk: true,
        }
    }

    /// A sensible default for AI motifs: CIFAR-sized tensors, batch 128,
    /// no disk spilling (TensorFlow keeps activations in memory).
    pub fn ai_default() -> Self {
        Self {
            chunk_bytes: 8 * 1024 * 1024,
            num_tasks: 8,
            batch_size: 128,
            height: 32,
            width: 32,
            channels: 3,
            filter_size: 3,
            spill_to_disk: false,
        }
    }

    /// Returns a copy with a different chunk size.
    pub fn with_chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Returns a copy with a different task count.
    pub fn with_num_tasks(mut self, num_tasks: u32) -> Self {
        self.num_tasks = num_tasks;
        self
    }

    /// Returns a copy with a different batch size.
    pub fn with_batch_size(mut self, batch_size: u32) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns a copy with different tensor geometry.
    pub fn with_geometry(mut self, height: u32, width: u32, channels: u32) -> Self {
        self.height = height;
        self.width = width;
        self.channels = channels;
        self
    }

    /// Elements in one image/feature-map of the configured geometry.
    pub fn spatial_elements(&self) -> u64 {
        u64::from(self.height) * u64::from(self.width) * u64::from(self.channels)
    }
}

impl Default for MotifConfig {
    fn default() -> Self {
        Self::big_data_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_differ_between_families() {
        let bd = MotifConfig::big_data_default();
        let ai = MotifConfig::ai_default();
        assert!(bd.spill_to_disk);
        assert!(!ai.spill_to_disk);
        assert_eq!(bd.chunk_bytes, 64 * 1024 * 1024);
        assert_eq!(ai.batch_size, 128);
    }

    #[test]
    fn builders_set_fields() {
        let c = MotifConfig::ai_default()
            .with_batch_size(32)
            .with_geometry(299, 299, 3)
            .with_num_tasks(4)
            .with_chunk_bytes(1 << 20);
        assert_eq!(c.batch_size, 32);
        assert_eq!(c.height, 299);
        assert_eq!(c.num_tasks, 4);
        assert_eq!(c.chunk_bytes, 1 << 20);
        assert_eq!(c.spatial_elements(), 299 * 299 * 3);
    }
}
