//! # dmpb-motifs — the eight data motifs
//!
//! The paper builds its proxy benchmarks out of **data motifs**: the most
//! time-consuming units of computation performed on initial or intermediate
//! data, identified in earlier work as eight classes — Matrix, Sampling,
//! Transform, Graph, Logic, Set, Sort and Statistics.  Each class has
//! several concrete light-weight implementations (Fig. 2 of the paper),
//! split into **big-data motif implementations** (quick/merge sort,
//! random/interval sampling, set algebra, graph construction and traversal,
//! MD5 and stream encryption, FFT/IFFT/DCT, distance computation and matrix
//! multiplication, count/probability/min-max statistics) and **AI data
//! motif implementations** (fully connected layers, element-wise ops and
//! activations, max/average pooling, convolution, dropout, batch and cosine
//! normalisation, ReLU, reductions).
//!
//! Every implementation in this crate has two faces:
//!
//! * a **real kernel** — a plain Rust function that actually computes
//!   (sorts, convolves, hashes…), used by the Criterion benches, the
//!   examples and the correctness tests; and
//! * a **cost model** — [`MotifKind::cost_profile`], which maps an input
//!   [`dmpb_datagen::DataDescriptor`] and a [`MotifConfig`] to the
//!   [`dmpb_perfmodel::OpProfile`] consumed by the shared performance-model
//!   instrument.  This is how motifs are measured at the paper's scale
//!   (100 GB inputs) without materialising the data.
//!
//! Both faces are unified behind the [`kernel::MotifKernel`] trait: the
//! [`kernel::MotifRegistry`] holds one kernel object per [`MotifKind`],
//! exposing `cost_profile(...)` and `execute(...)` over a shared
//! intermediate-buffer pool ([`pool::BufferPool`]).  Downstream crates
//! dispatch through the registry instead of per-kind `match` blocks, and
//! workload models declare fork/join structure with a
//! [`topology::DagPlan`].
//!
//! The big-data implementations follow the paper's description of the
//! execution model: input is split into chunks, each chunk is handed to a
//! worker task ([`threading`]), and allocation goes through a unified
//! memory-management module with GC-like collection pauses ([`memory`]),
//! mirroring the JVM behaviour of Hadoop workloads.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ai;
pub mod bigdata;
pub mod class;
pub mod config;
pub mod cost;
pub mod kernel;
pub mod memory;
pub mod pool;
pub mod profile;
pub mod threading;
pub mod topology;
pub mod workers;

pub use class::{MotifClass, MotifKind};
pub use config::MotifConfig;
pub use kernel::{ChunkState, FusedKernel, GranuleCtx, MotifKernel, MotifRegistry};
pub use pool::BufferPool;
pub use profile::{KernelProfile, KernelProfiler};
pub use topology::{DagPlan, PlanEdge};
pub use workers::WorkerPool;
