//! A sharded pool of intermediate buffers for motif-kernel execution.
//!
//! Every motif kernel materialises one or more scratch vectors (generated
//! keys, signal samples, activation tensors…) per invocation.  When a DAG
//! executor runs dozens of kernels per proxy — and eight proxies per suite
//! run — those allocations dominate the allocator traffic of sample
//! execution.  [`BufferPool`] recycles the backing storage: a kernel leases
//! a buffer of the length it needs, and the allocation is returned to the
//! pool when the lease is dropped.
//!
//! Two properties make the pool cheap under the work-stealing executor:
//!
//! * **Sharding** — free lists are split into per-worker shards, indexed
//!   by [`crate::workers::current_worker_index`] (shard 0 serves external
//!   threads).  A worker leases and returns through its own shard, so the
//!   hot path never contends on a global lock; only when a shard has no
//!   fitting buffer does `take` probe the other shards before allocating
//!   fresh storage.
//! * **Size-bucketed best-fit reuse** — within a shard, free buffers are
//!   bucketed by capacity class (power-of-two ceiling) and `take` pops the
//!   *smallest* buffer whose capacity fits the requested length.  A
//!   fitting recycled buffer therefore never reallocates, and a large
//!   buffer is never burned on a tiny request while a snug one idles (the
//!   old LIFO pop did both).
//!
//! Determinism: a leased buffer is always resized to the requested length
//! and zero-filled before it is handed out, so a kernel observes the same
//! contents whether its buffer is fresh, recycled, or stolen from another
//! shard.  Pool state therefore never leaks into kernel checksums.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::profile::{BucketPlan, KernelProfiler};
use crate::workers;

/// Free buffers a shard keeps per capacity class; overflow is released to
/// the allocator so an execution spike cannot pin memory forever.
const MAX_PER_BUCKET: usize = 32;

/// Number of power-of-two capacity classes (`ceil(log2(capacity))` for
/// every possible `usize` capacity).
const BUCKETS: usize = usize::BITS as usize + 1;

/// The capacity class of `capacity`: the smallest `b` with
/// `2^b >= capacity` (0 for empty or single-element buffers).
fn bucket_of(capacity: usize) -> usize {
    (usize::BITS - capacity.max(1).saturating_sub(1).leading_zeros()) as usize
}

/// One worker's free lists: per capacity class, the returned buffers.
struct Shard<T> {
    buckets: Vec<Vec<Vec<T>>>,
}

impl<T> Default for Shard<T> {
    fn default() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
        }
    }
}

impl<T> Shard<T> {
    /// Removes and returns the smallest free buffer whose capacity fits
    /// `len`, searching the exact capacity class first and then the larger
    /// ones.
    fn take_fit(&mut self, len: usize) -> Option<Vec<T>> {
        for bucket in &mut self.buckets[bucket_of(len)..] {
            let mut best: Option<usize> = None;
            for (i, vec) in bucket.iter().enumerate() {
                // In the request's own class a buffer may still be too
                // small (classes span a 2x range); higher classes always
                // fit, there best-fit just picks the smallest.
                if vec.capacity() >= len
                    && best.map_or(true, |b| vec.capacity() < bucket[b].capacity())
                {
                    best = Some(i);
                }
            }
            if let Some(i) = best {
                return Some(bucket.swap_remove(i));
            }
        }
        None
    }

    fn put(&mut self, vec: Vec<T>) {
        if vec.capacity() == 0 {
            return;
        }
        let bucket = &mut self.buckets[bucket_of(vec.capacity())];
        if bucket.len() < MAX_PER_BUCKET {
            bucket.push(vec);
        }
    }
}

/// A sharded free list of `Vec<T>` allocations plus reuse counters.
struct ShardedFreeList<T> {
    shards: Vec<Mutex<Shard<T>>>,
    reused: AtomicU64,
    allocated: AtomicU64,
}

impl<T> std::fmt::Debug for ShardedFreeList<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFreeList")
            .field("shards", &self.shards.len())
            .field("reused", &self.reused.load(Ordering::Relaxed))
            .field("allocated", &self.allocated.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Default + Clone> ShardedFreeList<T> {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            reused: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
        }
    }

    /// The shard serving the current thread: worker `i` maps to shard
    /// `(i + 1) % shards`, external threads to shard 0.
    fn home_shard(&self) -> usize {
        workers::current_worker_index()
            .map(|index| (index + 1) % self.shards.len())
            .unwrap_or(0)
    }

    fn take(&self, len: usize) -> Vec<T> {
        let home = self.home_shard();
        let shards = self.shards.len();
        for offset in 0..shards {
            let shard = &self.shards[(home + offset) % shards];
            let recycled = shard.lock().expect("buffer pool poisoned").take_fit(len);
            if let Some(mut vec) = recycled {
                self.reused.fetch_add(1, Ordering::Relaxed);
                vec.clear();
                vec.resize(len, T::default());
                return vec;
            }
        }
        self.allocated.fetch_add(1, Ordering::Relaxed);
        let mut vec = Vec::with_capacity(len);
        vec.resize(len, T::default());
        vec
    }

    fn put_back(&self, vec: Vec<T>) {
        self.shards[self.home_shard()]
            .lock()
            .expect("buffer pool poisoned")
            .put(vec);
    }

    /// Seeds the free lists with `count` empty buffers of `capacity`,
    /// distributed round-robin across shards so every worker finds warm
    /// storage.  Prewarmed buffers are not counted as allocations — the
    /// stats keep describing lease traffic only.
    fn preload(&self, capacity: usize, count: usize) {
        for i in 0..count {
            self.shards[i % self.shards.len()]
                .lock()
                .expect("buffer pool poisoned")
                .put(Vec::with_capacity(capacity));
        }
    }
}

/// Counters describing how effectively a [`BufferPool`] recycles storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Leases served by recycling a previously returned allocation whose
    /// capacity already fit the request (such a lease never reallocates).
    pub reused: u64,
    /// Leases that had to allocate fresh storage.
    pub allocated: u64,
}

impl PoolStats {
    /// Total leases served.
    pub fn leases(&self) -> u64 {
        self.reused + self.allocated
    }

    /// Fraction of leases served without allocating (`0.0` when no lease
    /// has been served yet).
    pub fn reuse_ratio(&self) -> f64 {
        if self.leases() == 0 {
            0.0
        } else {
            self.reused as f64 / self.leases() as f64
        }
    }
}

/// A thread-safe, sharded pool of scratch buffers shared by all motif
/// kernels of an execution (see the [module documentation](self)).
#[derive(Debug)]
pub struct BufferPool {
    f64s: ShardedFreeList<f64>,
    f32s: ShardedFreeList<f32>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

/// A leased buffer; dereferences to its `Vec` and returns the allocation
/// to the pool (the current thread's shard) on drop.
#[derive(Debug)]
pub struct Lease<'p, T: Default + Clone> {
    vec: Vec<T>,
    list: &'p ShardedFreeList<T>,
}

impl<T: Default + Clone> Deref for Lease<'_, T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.vec
    }
}

impl<T: Default + Clone> DerefMut for Lease<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.vec
    }
}

impl<T: Default + Clone> Drop for Lease<'_, T> {
    fn drop(&mut self) {
        self.list.put_back(std::mem::take(&mut self.vec));
    }
}

impl BufferPool {
    /// An empty pool with one shard per hardware thread plus the external
    /// shard.
    pub fn new() -> Self {
        Self::with_shards(workers::hardware_parallelism() + 1)
    }

    /// An empty pool with exactly `shards` shards (clamped to at least 1).
    /// Executors size this as worker count + 1: one shard per worker plus
    /// shard 0 for external threads.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            f64s: ShardedFreeList::new(shards),
            f32s: ShardedFreeList::new(shards),
        }
    }

    /// Number of shards per element type.
    pub fn shards(&self) -> usize {
        self.f64s.shards.len()
    }

    /// Leases a zero-filled `f64` buffer of length `len`.
    pub fn f64s(&self, len: usize) -> Lease<'_, f64> {
        let profiler = KernelProfiler::global();
        if profiler.enabled() {
            profiler.record_lease_f64(len);
        }
        Lease {
            vec: self.f64s.take(len),
            list: &self.f64s,
        }
    }

    /// Leases a zero-filled `f32` buffer of length `len`.
    pub fn f32s(&self, len: usize) -> Lease<'_, f32> {
        let profiler = KernelProfiler::global();
        if profiler.enabled() {
            profiler.record_lease_f32(len);
        }
        Lease {
            vec: self.f32s.take(len),
            list: &self.f32s,
        }
    }

    /// Seeds the pool from a profile-derived [`BucketPlan`] (see
    /// [`crate::profile::KernelProfile::bucket_plan`]): every observed
    /// lease capacity class gets free buffers ready before the first
    /// lease, so a cold executor reaches steady-state reuse without the
    /// initial allocation burst.
    pub fn prewarm(&self, plan: &BucketPlan) {
        for bucket in &plan.f64s {
            self.f64s.preload(bucket.capacity, bucket.count);
        }
        for bucket in &plan.f32s {
            self.f32s.preload(bucket.capacity, bucket.count);
        }
    }

    /// Snapshot of the reuse counters, aggregated over all element types
    /// and shards.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reused: self.f64s.reused.load(Ordering::Relaxed)
                + self.f32s.reused.load(Ordering::Relaxed),
            allocated: self.f64s.allocated.load(Ordering::Relaxed)
                + self.f32s.allocated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_zero_filled_even_when_recycled() {
        let pool = BufferPool::with_shards(1);
        {
            let mut a = pool.f64s(16);
            a.iter_mut().for_each(|v| *v = 42.0);
        }
        let b = pool.f64s(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&v| v == 0.0), "recycled buffer leaked state");
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn returned_buffers_are_reused_when_they_fit() {
        let pool = BufferPool::with_shards(1);
        drop(pool.f32s(64));
        drop(pool.f32s(32));
        let stats = pool.stats();
        assert_eq!(stats.allocated, 1, "second lease must recycle the first");
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.leases(), 2);
        assert!((stats.reuse_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn a_fitting_recycled_buffer_never_reallocates() {
        let pool = BufferPool::with_shards(1);
        let (small_ptr, big_ptr) = {
            let small = pool.f64s(100);
            let big = pool.f64s(512);
            (small.as_ptr(), big.as_ptr())
        };
        // Best fit: a 64-element request must come from the 100-capacity
        // buffer (the smallest that fits), untouched by a reallocation…
        let small_again = pool.f64s(64);
        assert_eq!(small_again.as_ptr(), small_ptr);
        assert_eq!(small_again.capacity(), 100);
        // …and a 256-element request must skip the too-small buffer and
        // reuse the 512-capacity one instead of allocating.
        let big_again = pool.f64s(256);
        assert_eq!(big_again.as_ptr(), big_ptr);
        assert_eq!(big_again.capacity(), 512);
        let stats = pool.stats();
        assert_eq!(stats.allocated, 2, "no fitting lease may allocate");
        assert_eq!(stats.reused, 2);
    }

    #[test]
    fn too_small_recycled_buffers_are_not_regrown() {
        let pool = BufferPool::with_shards(1);
        drop(pool.f32s(16));
        // The 16-capacity buffer does not fit: allocate fresh instead of
        // growing it (the old LIFO pop reallocated here), and keep the
        // small one for a later small request.
        let big = pool.f32s(4096);
        assert_eq!(big.capacity(), 4096);
        assert_eq!(pool.stats().allocated, 2);
        assert_eq!(pool.stats().reused, 0);
        drop(big);
        let small = pool.f32s(8);
        assert_eq!(small.capacity(), 16, "the idle small buffer serves it");
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn concurrent_leases_get_distinct_buffers() {
        let pool = BufferPool::new();
        let a = pool.f64s(4);
        let b = pool.f64s(4);
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn capacity_classes_are_monotonic() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 11);
        for cap in 1..10_000usize {
            assert!(cap <= 1usize << bucket_of(cap), "{cap}");
        }
    }

    #[test]
    fn shards_overflowing_a_bucket_release_to_the_allocator() {
        let pool = BufferPool::with_shards(1);
        for _ in 0..(MAX_PER_BUCKET + 10) {
            // Leases of the same class, returned one at a time: the first
            // allocates, the rest reuse the single cached buffer.
            drop(pool.f64s(100));
        }
        let held: Vec<_> = (0..MAX_PER_BUCKET + 10).map(|_| pool.f64s(100)).collect();
        drop(held);
        // Dropping the overflow must not panic; the bucket simply caps.
        let stats = pool.stats();
        assert!(stats.allocated >= MAX_PER_BUCKET as u64);
    }

    #[test]
    fn prewarmed_buffers_serve_first_leases_without_allocating() {
        use crate::profile::{BucketPlan, PrewarmBucket};
        let pool = BufferPool::with_shards(1);
        pool.prewarm(&BucketPlan {
            f64s: vec![PrewarmBucket {
                capacity: 256,
                count: 2,
            }],
            f32s: vec![PrewarmBucket {
                capacity: 64,
                count: 1,
            }],
        });
        // Prewarming itself is not lease traffic.
        assert_eq!(pool.stats(), PoolStats::default());
        let a = pool.f64s(200);
        let b = pool.f64s(256);
        let c = pool.f32s(64);
        assert_eq!(a.capacity(), 256);
        assert_eq!(b.capacity(), 256);
        assert_eq!(c.capacity(), 64);
        let stats = pool.stats();
        assert_eq!(stats.reused, 3, "all first leases come prewarmed");
        assert_eq!(stats.allocated, 0);
    }

    #[test]
    fn prewarm_distributes_across_shards() {
        use crate::profile::{BucketPlan, PrewarmBucket};
        use crate::workers::WorkerPool;
        let pool = BufferPool::with_shards(3);
        pool.prewarm(&BucketPlan {
            f64s: vec![PrewarmBucket {
                capacity: 128,
                count: 3,
            }],
            f32s: Vec::new(),
        });
        // Every worker's home shard (and the external shard) holds one
        // warm buffer, so concurrent first leases all reuse.
        let workers = WorkerPool::new(2);
        workers.scope(|s| {
            for _ in 0..2 {
                let pool = &pool;
                s.spawn(move |_| {
                    assert_eq!(pool.f64s(100).capacity(), 128);
                });
            }
        });
        assert_eq!(pool.f64s(100).capacity(), 128);
        assert_eq!(pool.stats().allocated, 0);
    }

    #[test]
    fn enabled_profiling_observes_lease_classes() {
        use crate::profile::{lease_class, KernelProfiler};
        // The pool reports into the *global* profiler; use a capacity
        // class no kernel ever leases (100k elements) so concurrently
        // running tests cannot perturb the counter.
        let profiler = KernelProfiler::global();
        let before = profiler.snapshot();
        let pool = BufferPool::with_shards(1);
        drop(pool.f64s(100_000));
        let was_enabled = profiler.enabled();
        profiler.set_enabled(true);
        drop(pool.f64s(100_000));
        drop(pool.f32s(100_000));
        profiler.set_enabled(was_enabled);
        let after = profiler.snapshot();
        let class = lease_class(100_000);
        assert_eq!(
            after.lease_f64[class] - before.lease_f64[class],
            1,
            "only the lease taken while enabled is observed"
        );
        assert_eq!(after.lease_f32[class] - before.lease_f32[class], 1);
    }

    #[test]
    fn workers_use_their_own_shards_without_losing_reuse() {
        use crate::workers::WorkerPool;
        let pool = BufferPool::with_shards(3);
        let workers = WorkerPool::new(2);
        workers.scope(|s| {
            for _ in 0..16 {
                let pool = &pool;
                s.spawn(move |_| {
                    drop(pool.f64s(256));
                });
            }
        });
        // Same-sized leases from any shard: after the first allocation per
        // shard at most `shards` fresh allocations are needed.
        let stats = pool.stats();
        assert_eq!(stats.leases(), 16);
        assert!(
            stats.allocated <= 3,
            "at most one allocation per shard: {stats:?}"
        );
    }
}
