//! A shared pool of intermediate buffers for motif-kernel execution.
//!
//! Every motif kernel materialises one or more scratch vectors (generated
//! keys, signal samples, activation tensors…) per invocation.  When a DAG
//! executor runs dozens of kernels per proxy — and eight proxies per suite
//! run — those allocations dominate the allocator traffic of sample
//! execution.  [`BufferPool`] recycles the backing storage: a kernel leases
//! a buffer of the length it needs, and the allocation is returned to the
//! pool when the lease is dropped.
//!
//! Determinism: a leased buffer is always resized to the requested length
//! and zero-filled before it is handed out, so a kernel observes the same
//! contents whether its buffer is fresh or recycled.  Pool state therefore
//! never leaks into kernel checksums.
//!
//! The pool is thread-safe (the DAG executor leases buffers from several
//! scoped worker threads at once) and cheap to share: each element type has
//! its own free list behind a mutex that is only held for the push/pop.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A free list of `Vec<T>` allocations plus reuse counters.
#[derive(Debug, Default)]
struct FreeList<T> {
    free: Mutex<Vec<Vec<T>>>,
    reused: AtomicU64,
    allocated: AtomicU64,
}

impl<T: Default + Clone> FreeList<T> {
    fn take(&self, len: usize) -> Vec<T> {
        let recycled = self.free.lock().expect("buffer pool poisoned").pop();
        let mut vec = match recycled {
            Some(vec) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                vec
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(len)
            }
        };
        vec.clear();
        vec.resize(len, T::default());
        vec
    }

    fn put_back(&self, vec: Vec<T>) {
        self.free.lock().expect("buffer pool poisoned").push(vec);
    }
}

/// Counters describing how effectively a [`BufferPool`] recycles storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Leases served by recycling a previously returned allocation.
    pub reused: u64,
    /// Leases that had to allocate fresh storage.
    pub allocated: u64,
}

impl PoolStats {
    /// Total leases served.
    pub fn leases(&self) -> u64 {
        self.reused + self.allocated
    }
}

/// A thread-safe pool of scratch buffers shared by all motif kernels of an
/// execution (see the [module documentation](self)).
#[derive(Debug, Default)]
pub struct BufferPool {
    f64s: FreeList<f64>,
    f32s: FreeList<f32>,
}

/// A leased buffer; dereferences to its `Vec` and returns the allocation
/// to the pool on drop.
#[derive(Debug)]
pub struct Lease<'p, T: Default + Clone> {
    vec: Vec<T>,
    list: &'p FreeList<T>,
}

impl<T: Default + Clone> Deref for Lease<'_, T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.vec
    }
}

impl<T: Default + Clone> DerefMut for Lease<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.vec
    }
}

impl<T: Default + Clone> Drop for Lease<'_, T> {
    fn drop(&mut self) {
        self.list.put_back(std::mem::take(&mut self.vec));
    }
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leases a zero-filled `f64` buffer of length `len`.
    pub fn f64s(&self, len: usize) -> Lease<'_, f64> {
        Lease {
            vec: self.f64s.take(len),
            list: &self.f64s,
        }
    }

    /// Leases a zero-filled `f32` buffer of length `len`.
    pub fn f32s(&self, len: usize) -> Lease<'_, f32> {
        Lease {
            vec: self.f32s.take(len),
            list: &self.f32s,
        }
    }

    /// Snapshot of the reuse counters, aggregated over all element types.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reused: self.f64s.reused.load(Ordering::Relaxed)
                + self.f32s.reused.load(Ordering::Relaxed),
            allocated: self.f64s.allocated.load(Ordering::Relaxed)
                + self.f32s.allocated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_zero_filled_even_when_recycled() {
        let pool = BufferPool::new();
        {
            let mut a = pool.f64s(8);
            a.iter_mut().for_each(|v| *v = 42.0);
        }
        let b = pool.f64s(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&v| v == 0.0), "recycled buffer leaked state");
    }

    #[test]
    fn returned_buffers_are_reused() {
        let pool = BufferPool::new();
        drop(pool.f32s(32));
        drop(pool.f32s(64));
        let stats = pool.stats();
        assert_eq!(stats.allocated, 1, "second lease must recycle the first");
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.leases(), 2);
    }

    #[test]
    fn concurrent_leases_get_distinct_buffers() {
        let pool = BufferPool::new();
        let a = pool.f64s(4);
        let b = pool.f64s(4);
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!(pool.stats().allocated, 2);
    }
}
