//! The [`MotifKernel`] trait and the registry of one kernel per
//! [`MotifKind`].
//!
//! A kernel is the uniform, object-safe face of one motif implementation.
//! It bundles the two things a proxy benchmark needs from a motif:
//!
//! * [`MotifKernel::cost_profile`] — the analytic cost model (delegating to
//!   [`crate::cost`]), used to *measure* the motif at the paper's data
//!   scale without materialising data; and
//! * [`MotifKernel::execute`] — the real, scaled-down sample kernel, used
//!   to *run* the motif on generated data and fold its output into a
//!   checksum.  Scratch storage is leased from a shared, sharded
//!   [`BufferPool`] (a pool worker leases through its own shard with
//!   best-fit reuse; see [`crate::pool`]), so a DAG full of kernels
//!   recycles allocations instead of re-allocating per edge — without
//!   contending on a global free-list lock under the work-stealing
//!   executor.
//!
//! The [`MotifRegistry`] maps every [`MotifKind`] to its kernel object.
//! Registration happens in one exhaustive `match` (`kernel_for`): adding
//! a `MotifKind` variant without a kernel is a *compile* error, and the
//! registry's own tests additionally assert the mapping round-trips for
//! every variant.  Downstream crates dispatch through the registry instead
//! of maintaining their own `match motif { … }` blocks.
//!
//! Execution is deterministic: a kernel's checksum depends only on `(n,
//! seed)`, never on pool state or thread scheduling (leased buffers are
//! zero-filled; see [`crate::pool`]).

use std::sync::OnceLock;

use dmpb_datagen::image::{ImageGenerator, TensorLayout, TensorShape};
use dmpb_datagen::matrix::MatrixSpec;
use dmpb_datagen::text::TextGenerator;
use dmpb_datagen::DataDescriptor;
use dmpb_perfmodel::profile::OpProfile;

use crate::ai::convolution::{conv2d, FilterBank, Padding};
use crate::ai::pooling::{average_pool2d, max_pool2d};
use crate::ai::{activation, fully_connected, normalization, reduce, regularization};
use crate::bigdata::{
    graph_ops, logic, matrix_ops, sampling, set_ops, sort, statistics, transform,
};
use crate::class::MotifKind;
use crate::config::MotifConfig;
use crate::cost;
use crate::pool::BufferPool;

// --- FNV-1a checksum folding (shared by all kernels) ---------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn hash_f64s<I: IntoIterator<Item = f64>>(values: I) -> u64 {
    let mut h = FNV_OFFSET;
    for v in values {
        h ^= v.to_bits();
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One data-motif implementation behind a uniform cost/execution interface.
///
/// Implementations are stateless singletons owned by the [`MotifRegistry`];
/// all per-invocation state lives in the arguments (and the leased pool
/// buffers), which is what makes concurrent execution of independent DAG
/// branches safe.
pub trait MotifKernel: Send + Sync + std::fmt::Debug {
    /// Which motif implementation this kernel realises.
    fn kind(&self) -> MotifKind;

    /// The analytic operation profile of running this motif over `data`
    /// with configuration `config` (the "measure without materialising"
    /// face; see [`crate::cost`]).
    fn cost_profile(&self, data: &DataDescriptor, config: &MotifConfig) -> OpProfile {
        cost::cost_profile(self.kind(), data, config)
    }

    /// Really executes the scaled-down sample kernel over `n` generated
    /// elements, leasing scratch storage from `pool`, and returns a
    /// checksum over the output.  Deterministic in `(n, seed)`.
    fn execute(&self, n: usize, seed: u64, pool: &BufferPool) -> u64;
}

/// Declares a private unit struct implementing [`MotifKernel`] for one
/// [`MotifKind`], with the `execute` body written inline.
macro_rules! kernel {
    ($struct:ident, $kind:ident, |$n:ident, $seed:ident, $pool:ident| $body:expr) => {
        #[derive(Debug)]
        struct $struct;

        impl MotifKernel for $struct {
            fn kind(&self) -> MotifKind {
                MotifKind::$kind
            }

            #[allow(unused_variables)]
            fn execute(&self, $n: usize, $seed: u64, $pool: &BufferPool) -> u64 {
                $body
            }
        }
    };
}

// --- Big-data kernels ----------------------------------------------------

kernel!(QuickSortKernel, QuickSort, |n, seed, pool| {
    let mut keys = TextGenerator::new(seed).generate(n).keys();
    sort::quick_sort(&mut keys);
    hash_bytes(&keys[0])
});

kernel!(MergeSortKernel, MergeSort, |n, seed, pool| {
    let keys = TextGenerator::new(seed).generate(n).keys();
    let sorted = sort::merge_sort(&keys);
    hash_bytes(&sorted[sorted.len() / 2])
});

kernel!(RandomSamplingKernel, RandomSampling, |n, seed, pool| {
    sampling::random_sample_indices(n, 0.1, seed).len() as u64
});

kernel!(IntervalSamplingKernel, IntervalSampling, |n, seed, pool| {
    sampling::interval_sample_indices(n, 10, 0).len() as u64
});

fn set_inputs(n: usize) -> (Vec<u64>, Vec<u64>) {
    let a: Vec<u64> = (0..n as u64).map(|i| i * 3 % (n as u64).max(1)).collect();
    let b: Vec<u64> = (0..n as u64).map(|i| i * 7 % (n as u64).max(1)).collect();
    (set_ops::normalize(&a), set_ops::normalize(&b))
}

kernel!(SetUnionKernel, SetUnion, |n, seed, pool| {
    let (a, b) = set_inputs(n);
    set_ops::union(&a, &b).len() as u64
});

kernel!(SetIntersectionKernel, SetIntersection, |n, seed, pool| {
    let (a, b) = set_inputs(n);
    set_ops::intersection(&a, &b).len() as u64
});

kernel!(SetDifferenceKernel, SetDifference, |n, seed, pool| {
    let (a, b) = set_inputs(n);
    set_ops::difference(&a, &b).len() as u64
});

fn sample_graph(n: usize) -> dmpb_datagen::graph::CsrGraph {
    let vertices = n.max(8);
    let edges: Vec<(u32, u32)> = (0..vertices * 4)
        .map(|i| ((i % vertices) as u32, ((i * 31 + 7) % vertices) as u32))
        .collect();
    graph_ops::construct(vertices, &edges)
}

kernel!(GraphConstructKernel, GraphConstruct, |n, seed, pool| {
    sample_graph(n).num_edges() as u64
});

kernel!(GraphTraversalKernel, GraphTraversal, |n, seed, pool| {
    graph_ops::traversal_reach(&sample_graph(n), 0) as u64
});

fn statistics_values(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f64> {
    let mut values = pool.f64s(n);
    for (i, v) in values.iter_mut().enumerate() {
        *v = (i as f64 * 0.37).sin();
    }
    values
}

kernel!(CountStatisticsKernel, CountStatistics, |n, seed, pool| {
    hash_f64s([statistics::count_average(&statistics_values(pool, n)).1])
});

kernel!(MinMaxKernel, MinMax, |n, seed, pool| {
    let values = statistics_values(pool, n);
    let (min, max) = statistics::min_max(&values).unwrap_or((0.0, 0.0));
    hash_f64s([min, max])
});

kernel!(
    ProbabilityStatisticsKernel,
    ProbabilityStatistics,
    |n, seed, pool| {
        let keys: Vec<u32> = (0..n).map(|i| (i % 17) as u32).collect();
        statistics::probabilities(&keys).len() as u64
    }
);

kernel!(Md5HashKernel, Md5Hash, |n, seed, pool| {
    let data = TextGenerator::new(seed).generate(n.min(512));
    hash_bytes(&logic::md5(data.as_bytes()))
});

kernel!(EncryptionKernel, Encryption, |n, seed, pool| {
    let data = TextGenerator::new(seed).generate(n.min(512));
    hash_bytes(&logic::xor_encrypt(data.as_bytes(), seed | 1))
});

fn fft_signal(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f64> {
    let len = n.next_power_of_two().clamp(64, 4096);
    let mut signal = pool.f64s(len);
    for (i, v) in signal.iter_mut().enumerate() {
        *v = (i as f64 * 0.11).cos();
    }
    signal
}

kernel!(FftKernel, Fft, |n, seed, pool| {
    let spectrum = transform::fft_real(&fft_signal(pool, n));
    hash_f64s(spectrum.into_iter().map(|(re, _)| re))
});

kernel!(IfftKernel, Ifft, |n, seed, pool| {
    let spectrum = transform::fft_real(&fft_signal(pool, n));
    hash_f64s(transform::ifft_real(&spectrum))
});

kernel!(DctKernel, Dct, |n, seed, pool| {
    let mut samples = pool.f64s(n.min(256));
    for (i, v) in samples.iter_mut().enumerate() {
        *v = (i as f64 * 0.21).sin();
    }
    hash_f64s(transform::dct2(&samples))
});

kernel!(
    DistanceCalculationKernel,
    DistanceCalculation,
    |n, seed, pool| {
        let dim = 32;
        let mut a = pool.f64s(dim);
        let mut b = pool.f64s(dim);
        for i in 0..dim {
            a[i] = (i as f64 * 0.3).sin();
            b[i] = (i as f64 * 0.7).cos();
        }
        hash_f64s([
            matrix_ops::euclidean_distance(&a, &b),
            matrix_ops::cosine_distance(&a, &b),
        ])
    }
);

kernel!(MatrixMultiplyKernel, MatrixMultiply, |n, seed, pool| {
    let size = (n as f64).sqrt().ceil().clamp(4.0, 64.0) as usize;
    let a = MatrixSpec::dense(size, size, seed).generate_dense();
    let b = MatrixSpec::dense(size, size, seed ^ 1).generate_dense();
    hash_f64s([matrix_ops::matrix_multiply(&a, &b).frobenius_norm()])
});

// --- AI kernels ----------------------------------------------------------

kernel!(ConvolutionKernel, Convolution, |n, seed, pool| {
    let t = ImageGenerator::new(seed).generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw);
    let filters = FilterBank::constant(4, 3, 3, 0.1);
    hash_f64s(
        conv2d(&t, &filters, 1, Padding::Same)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(MaxPoolingKernel, MaxPooling, |n, seed, pool| {
    let t = ImageGenerator::new(seed).generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw);
    hash_f64s(
        max_pool2d(&t, 2, 2)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(AveragePoolingKernel, AveragePooling, |n, seed, pool| {
    let t = ImageGenerator::new(seed).generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw);
    hash_f64s(
        average_pool2d(&t, 2, 2)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(FullyConnectedKernel, FullyConnected, |n, seed, pool| {
    let mut input = pool.f32s(64);
    for (i, v) in input.iter_mut().enumerate() {
        *v = i as f32 * 0.01;
    }
    let mut weights = pool.f32s(64 * 8);
    for (i, v) in weights.iter_mut().enumerate() {
        *v = (i % 7) as f32 * 0.1;
    }
    let out = fully_connected::fully_connected(&input, &weights, &[0.0; 8], 1, 64, 8);
    hash_f64s(out.into_iter().map(f64::from))
});

kernel!(
    ElementWiseMultiplyKernel,
    ElementWiseMultiply,
    |n, seed, pool| {
        let mut a = pool.f32s(n.min(1024));
        for (i, v) in a.iter_mut().enumerate() {
            *v = i as f32 * 0.5;
        }
        hash_f64s(
            fully_connected::element_wise_multiply(&a, &a)
                .into_iter()
                .map(f64::from),
        )
    }
);

fn activation_input(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f32> {
    let mut x = pool.f32s(n.min(1024));
    for (i, v) in x.iter_mut().enumerate() {
        *v = (i as f32 - 512.0) * 0.01;
    }
    x
}

kernel!(SigmoidKernel, Sigmoid, |n, seed, pool| {
    let x = activation_input(pool, n);
    hash_f64s(activation::sigmoid(&x).into_iter().map(f64::from))
});

kernel!(TanhKernel, Tanh, |n, seed, pool| {
    let x = activation_input(pool, n);
    hash_f64s(activation::tanh(&x).into_iter().map(f64::from))
});

kernel!(ReluKernel, Relu, |n, seed, pool| {
    let x = activation_input(pool, n);
    hash_f64s(activation::relu(&x).into_iter().map(f64::from))
});

kernel!(SoftmaxKernel, Softmax, |n, seed, pool| {
    let x = activation_input(pool, n);
    hash_f64s(
        activation::softmax(&x, x.len().max(1))
            .into_iter()
            .map(f64::from),
    )
});

kernel!(DropoutKernel, Dropout, |n, seed, pool| {
    let mut x = pool.f32s(n.min(1024));
    x.fill(1.0);
    hash_f64s(
        regularization::dropout(&x, 0.5, seed)
            .into_iter()
            .map(f64::from),
    )
});

fn normalization_input(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f32> {
    let mut x = pool.f32s(n.min(1024));
    for (i, v) in x.iter_mut().enumerate() {
        *v = i as f32 * 0.3;
    }
    x
}

kernel!(
    BatchNormalizationKernel,
    BatchNormalization,
    |n, seed, pool| {
        let x = normalization_input(pool, n);
        hash_f64s(
            normalization::cosine_normalize(&x)
                .into_iter()
                .map(f64::from),
        )
    }
);

kernel!(
    CosineNormalizationKernel,
    CosineNormalization,
    |n, seed, pool| {
        let x = normalization_input(pool, n);
        hash_f64s(
            normalization::cosine_normalize(&x)
                .into_iter()
                .map(f64::from),
        )
    }
);

fn reduce_input(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f32> {
    let mut x = pool.f32s(n.min(4096));
    for (i, v) in x.iter_mut().enumerate() {
        *v = i as f32;
    }
    x
}

kernel!(ReduceSumKernel, ReduceSum, |n, seed, pool| {
    hash_f64s([f64::from(reduce::reduce_sum(&reduce_input(pool, n)))])
});

kernel!(ReduceMaxKernel, ReduceMax, |n, seed, pool| {
    hash_f64s([f64::from(
        reduce::reduce_max(&reduce_input(pool, n)).unwrap_or(0.0),
    )])
});

// --- Superkernels (profile-guided fusion) --------------------------------

/// A **superkernel**: one object executing two adjacent DAG edges'
/// kernels in a single dispatch.
///
/// Profiling the eight workloads' DAG plans (see
/// [`crate::profile::rank_fusion_candidates`]) showed two kernel pairs
/// chained through an intermediate node more often than any other:
/// quick sort feeding merge sort (combiner output merged at the
/// reducer) and graph construction feeding graph traversal (build the
/// adjacency structure, then walk it).  Registering a fused kernel for
/// a pair lets the executor run a whole chain as *one* scheduled task —
/// eliding a readiness countdown, a task spawn and a dispatch per fused
/// edge — and share input materialisation when both halves read the
/// same data.
///
/// # Contract
///
/// `execute` must return **exactly** the checksums the two registered
/// [`MotifKernel`]s would produce for the same `(n, seed)` arguments —
/// fusion is a pure performance axis, pinned by unit tests and a
/// proptest over random argument pairs.
pub trait FusedKernel: Send + Sync + std::fmt::Debug {
    /// The `(first, second)` motif pair this superkernel fuses.
    fn pair(&self) -> (MotifKind, MotifKind);

    /// Executes both halves and returns their checksums in order.
    /// `first` and `second` carry each half's `(n, seed)` arguments.
    fn execute(&self, first: (usize, u64), second: (usize, u64), pool: &BufferPool) -> (u64, u64);
}

/// Quick sort + merge sort fused: when both halves sort the same
/// generated keys (equal `(n, seed)`), the input is generated once —
/// merge sort reads the unsorted keys before quick sort reorders them
/// in place.  Distinct arguments fall back to running both bodies
/// back to back (still one scheduled task instead of two).
#[derive(Debug)]
struct QuickMergeSortKernel;

impl FusedKernel for QuickMergeSortKernel {
    fn pair(&self) -> (MotifKind, MotifKind) {
        (MotifKind::QuickSort, MotifKind::MergeSort)
    }

    fn execute(
        &self,
        (n_quick, seed_quick): (usize, u64),
        (n_merge, seed_merge): (usize, u64),
        _pool: &BufferPool,
    ) -> (u64, u64) {
        let mut keys = TextGenerator::new(seed_quick).generate(n_quick).keys();
        let sorted = if (n_merge, seed_merge) == (n_quick, seed_quick) {
            sort::merge_sort(&keys)
        } else {
            sort::merge_sort(&TextGenerator::new(seed_merge).generate(n_merge).keys())
        };
        sort::quick_sort(&mut keys);
        (hash_bytes(&keys[0]), hash_bytes(&sorted[sorted.len() / 2]))
    }
}

/// Graph construction + traversal fused: the sample graph depends only
/// on `n`, so when both halves agree on `n` the adjacency structure is
/// built **once** and both the edge count and the traversal reach are
/// read off the same graph — construction is the expensive half, so
/// this roughly halves the chain's work.
#[derive(Debug)]
struct GraphConstructTraversalKernel;

impl FusedKernel for GraphConstructTraversalKernel {
    fn pair(&self) -> (MotifKind, MotifKind) {
        (MotifKind::GraphConstruct, MotifKind::GraphTraversal)
    }

    fn execute(
        &self,
        (n_construct, _): (usize, u64),
        (n_traverse, _): (usize, u64),
        _pool: &BufferPool,
    ) -> (u64, u64) {
        let graph = sample_graph(n_construct);
        let construct = graph.num_edges() as u64;
        let traversal = if n_traverse == n_construct {
            graph_ops::traversal_reach(&graph, 0) as u64
        } else {
            graph_ops::traversal_reach(&sample_graph(n_traverse), 0) as u64
        };
        (construct, traversal)
    }
}

/// The registered superkernels — the two most frequently adjacent pairs
/// across the eight workloads' DAG plans, tie-broken by profiled
/// cumulative kernel time (see `profile_ranks_the_registered_fusions`
/// in the crate tests).
static FUSED_KERNELS: [&dyn FusedKernel; 2] =
    [&QuickMergeSortKernel, &GraphConstructTraversalKernel];

/// Constructs the kernel object for one motif kind.
///
/// This match is the **single** kind→kernel dispatch point of the whole
/// workspace, and it is deliberately written without a wildcard arm:
/// adding a [`MotifKind`] variant without registering a kernel fails to
/// compile here, long before any runtime lookup could miss.
fn kernel_for(kind: MotifKind) -> &'static dyn MotifKernel {
    use MotifKind::*;
    match kind {
        DistanceCalculation => &DistanceCalculationKernel,
        MatrixMultiply => &MatrixMultiplyKernel,
        RandomSampling => &RandomSamplingKernel,
        IntervalSampling => &IntervalSamplingKernel,
        SetUnion => &SetUnionKernel,
        SetIntersection => &SetIntersectionKernel,
        SetDifference => &SetDifferenceKernel,
        GraphConstruct => &GraphConstructKernel,
        GraphTraversal => &GraphTraversalKernel,
        QuickSort => &QuickSortKernel,
        MergeSort => &MergeSortKernel,
        CountStatistics => &CountStatisticsKernel,
        ProbabilityStatistics => &ProbabilityStatisticsKernel,
        MinMax => &MinMaxKernel,
        Md5Hash => &Md5HashKernel,
        Encryption => &EncryptionKernel,
        Fft => &FftKernel,
        Ifft => &IfftKernel,
        Dct => &DctKernel,
        FullyConnected => &FullyConnectedKernel,
        ElementWiseMultiply => &ElementWiseMultiplyKernel,
        Sigmoid => &SigmoidKernel,
        Tanh => &TanhKernel,
        Softmax => &SoftmaxKernel,
        MaxPooling => &MaxPoolingKernel,
        AveragePooling => &AveragePoolingKernel,
        Convolution => &ConvolutionKernel,
        Dropout => &DropoutKernel,
        BatchNormalization => &BatchNormalizationKernel,
        CosineNormalization => &CosineNormalizationKernel,
        ReduceSum => &ReduceSumKernel,
        ReduceMax => &ReduceMaxKernel,
        Relu => &ReluKernel,
    }
}

/// The registry mapping every [`MotifKind`] to its [`MotifKernel`].
///
/// Lookup is an array index (`kind as usize` follows declaration order,
/// which [`MotifKind::ALL`] mirrors), so dispatch through the registry is
/// as cheap as the `match` blocks it replaces.
#[derive(Debug)]
pub struct MotifRegistry {
    kernels: Vec<&'static dyn MotifKernel>,
}

impl MotifRegistry {
    /// Builds a registry covering every motif kind.
    fn new() -> Self {
        let kernels: Vec<&'static dyn MotifKernel> =
            MotifKind::ALL.iter().map(|&k| kernel_for(k)).collect();
        for (i, kernel) in kernels.iter().enumerate() {
            debug_assert_eq!(
                kernel.kind() as usize,
                i,
                "MotifKind::ALL must follow declaration order"
            );
        }
        Self { kernels }
    }

    /// The process-wide shared registry.
    pub fn global() -> &'static MotifRegistry {
        static REGISTRY: OnceLock<MotifRegistry> = OnceLock::new();
        REGISTRY.get_or_init(MotifRegistry::new)
    }

    /// The kernel registered for `kind`.
    pub fn kernel(&self, kind: MotifKind) -> &'static dyn MotifKernel {
        self.kernels[kind as usize]
    }

    /// All registered kernels, in [`MotifKind::ALL`] order.
    pub fn kernels(&self) -> impl Iterator<Item = &'static dyn MotifKernel> + '_ {
        self.kernels.iter().copied()
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the registry is empty (it never is; `clippy` insists the
    /// method exists alongside [`MotifRegistry::len`]).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The superkernel fusing `(first, second)`, if one is registered.
    /// The executor consults this when an edge's target node has
    /// in-degree 1, i.e. when the second edge becomes ready exactly as
    /// the first completes.
    pub fn fused(&self, first: MotifKind, second: MotifKind) -> Option<&'static dyn FusedKernel> {
        FUSED_KERNELS
            .iter()
            .copied()
            .find(|k| k.pair() == (first, second))
    }

    /// Every registered superkernel pair, in registration order.
    pub fn fused_pairs(&self) -> Vec<(MotifKind, MotifKind)> {
        FUSED_KERNELS.iter().map(|k| k.pair()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::descriptor::{DataClass, Distribution};

    /// The satellite exhaustiveness gate: every `MotifKind` variant must
    /// resolve to a kernel whose `kind()` round-trips.  (The `match` in
    /// [`kernel_for`] already makes a *missing* registration a compile
    /// error; this test additionally catches a mis-wired one.)
    #[test]
    fn registry_covers_every_motif_kind() {
        let registry = MotifRegistry::global();
        assert_eq!(registry.len(), MotifKind::ALL.len());
        assert!(!registry.is_empty());
        for kind in MotifKind::ALL {
            assert_eq!(
                registry.kernel(kind).kind(),
                kind,
                "registry entry for {kind} resolves to the wrong kernel"
            );
        }
    }

    #[test]
    fn every_kernel_executes_deterministically() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        for kernel in registry.kernels() {
            let a = kernel.execute(128, 3, &pool);
            let b = kernel.execute(128, 3, &pool);
            assert_eq!(a, b, "{} is not deterministic", kernel.kind());
        }
    }

    #[test]
    fn checksums_do_not_depend_on_pool_reuse() {
        let registry = MotifRegistry::global();
        for kind in MotifKind::ALL {
            let fresh = registry.kernel(kind).execute(200, 9, &BufferPool::new());
            let warm_pool = BufferPool::new();
            // Dirty the pool with other kernels first.
            for other in MotifKind::ALL {
                registry.kernel(other).execute(64, 1, &warm_pool);
            }
            let warm = registry.kernel(kind).execute(200, 9, &warm_pool);
            assert_eq!(fresh, warm, "{kind} checksum depends on pool state");
        }
    }

    #[test]
    fn kernel_cost_profile_matches_the_analytic_model() {
        let data = DataDescriptor::new(DataClass::Text, 1 << 30, 100, 0.0, Distribution::Uniform);
        let config = MotifConfig::big_data_default();
        let via_kernel = MotifRegistry::global()
            .kernel(MotifKind::QuickSort)
            .cost_profile(&data, &config);
        let via_model = cost::cost_profile(MotifKind::QuickSort, &data, &config);
        assert_eq!(
            via_kernel.total_instructions(),
            via_model.total_instructions()
        );
    }

    /// A fused pair must be checksum-identical to its unfused halves for
    /// every argument combination — exercised here on the boundary cases
    /// (shared arguments, distinct arguments) for both superkernels.
    #[test]
    fn superkernels_match_their_unfused_pairs() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        for (first, second) in registry.fused_pairs() {
            let fused = registry.fused(first, second).expect("pair is registered");
            assert_eq!(fused.pair(), (first, second));
            for (args_a, args_b) in [
                ((128, 7), (128, 7)), // shared input fast path
                ((128, 7), (128, 9)), // same size, different seed
                ((128, 7), (300, 7)), // different size, same seed
                ((64, 1), (512, 99)), // fully distinct
                ((16, 0), (16, u64::MAX)),
            ] {
                let expect_a = registry.kernel(first).execute(args_a.0, args_a.1, &pool);
                let expect_b = registry.kernel(second).execute(args_b.0, args_b.1, &pool);
                let (got_a, got_b) = fused.execute(args_a, args_b, &pool);
                assert_eq!(
                    (got_a, got_b),
                    (expect_a, expect_b),
                    "fused {first}+{second} diverges at {args_a:?}/{args_b:?}"
                );
            }
        }
    }

    #[test]
    fn unregistered_pairs_have_no_superkernel() {
        let registry = MotifRegistry::global();
        assert!(registry
            .fused(MotifKind::QuickSort, MotifKind::MergeSort)
            .is_some());
        assert!(registry
            .fused(MotifKind::GraphConstruct, MotifKind::GraphTraversal)
            .is_some());
        // Order matters: only the observed adjacency direction is fused.
        assert!(registry
            .fused(MotifKind::MergeSort, MotifKind::QuickSort)
            .is_none());
        assert!(registry.fused(MotifKind::Fft, MotifKind::Ifft).is_none());
        assert_eq!(registry.fused_pairs().len(), 2);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// The digest-identity pin: over random argument pairs, every
        /// superkernel reproduces its unfused halves' checksums exactly.
        #[test]
        fn superkernels_are_checksum_identical_for_random_arguments(
            n_a in 16usize..600,
            n_b in 16usize..600,
            seed_a in 0u64..10_000,
            seed_b in 0u64..10_000,
        ) {
            let registry = MotifRegistry::global();
            let pool = BufferPool::new();
            for (first, second) in registry.fused_pairs() {
                let fused = registry.fused(first, second).unwrap();
                let expect = (
                    registry.kernel(first).execute(n_a, seed_a, &pool),
                    registry.kernel(second).execute(n_b, seed_b, &pool),
                );
                let got = fused.execute((n_a, seed_a), (n_b, seed_b), &pool);
                proptest::prop_assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn kernels_share_one_pool_across_kinds() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        registry
            .kernel(MotifKind::CountStatistics)
            .execute(512, 1, &pool);
        registry.kernel(MotifKind::MinMax).execute(512, 2, &pool);
        assert!(
            pool.stats().reused >= 1,
            "second statistics kernel must recycle the first one's buffer"
        );
    }
}
