//! The [`MotifKernel`] trait and the registry of one kernel per
//! [`MotifKind`].
//!
//! A kernel is the uniform, object-safe face of one motif implementation.
//! It bundles the two things a proxy benchmark needs from a motif:
//!
//! * [`MotifKernel::cost_profile`] — the analytic cost model (delegating to
//!   [`crate::cost`]), used to *measure* the motif at the paper's data
//!   scale without materialising data; and
//! * [`MotifKernel::execute_granule`] — the real sample kernel over one
//!   **granule** (a fixed [`CHUNK_GRANULE`]-element window of the motif's
//!   logical input), used to *run* the motif on generated data.  Scratch
//!   storage is leased from a shared, sharded [`BufferPool`] (a pool
//!   worker leases through its own shard with best-fit reuse; see
//!   [`crate::pool`]), so a DAG full of kernels recycles allocations
//!   instead of re-allocating per granule — without contending on a
//!   global free-list lock under the work-stealing executor.
//!
//! # Streaming execution model
//!
//! Every kernel's logical input is addressed on the granule grid defined
//! by `dmpb_datagen::chunks`: granule `g` of an `n`-element input covers
//! global elements `[g * CHUNK_GRANULE, (g + 1) * CHUNK_GRANULE).min(n)`
//! and is generated from the derived seed `granule_seed(seed, g)`.
//! [`MotifKernel::execute_granule`] maps one granule to a `u64` outcome;
//! [`MotifKernel::execute_chunk`] folds a granule-aligned chunk of
//! outcomes into a [`ChunkState`]; and [`ChunkState`] is an exactly
//! associative, commutative monoid (counts, xor, wrapping sum, min,
//! max over granule outcomes — no floating-point accumulation), so chunk
//! states merged in **any** grouping and order finalize to the same
//! digest.  Monolithic execution ([`MotifKernel::execute`]) is just the
//! single-chunk case, which is what makes chunked streaming execution
//! digest-identical to monolithic execution *by construction*, for every
//! chunk size and worker count.
//!
//! Granule bodies are deliberately granule-local — fixed-size buffers,
//! index-arithmetic fills, no cross-granule state — which keeps peak RSS
//! constant in the input size and leaves the hot inner loops in a shape
//! the compiler can auto-vectorize.
//!
//! The [`MotifRegistry`] maps every [`MotifKind`] to its kernel object.
//! Registration happens in one exhaustive `match` (`kernel_for`): adding
//! a `MotifKind` variant without a kernel is a *compile* error, and the
//! registry's own tests additionally assert the mapping round-trips for
//! every variant.  Downstream crates dispatch through the registry instead
//! of maintaining their own `match motif { … }` blocks.
//!
//! Execution is deterministic: a kernel's digest depends only on `(n,
//! seed)`, never on pool state, chunking or thread scheduling (leased
//! buffers are zero-filled; see [`crate::pool`]).

use std::sync::OnceLock;

use dmpb_datagen::chunks::{granule_seed, CHUNK_GRANULE};
use dmpb_datagen::image::{ImageGenerator, TensorLayout, TensorShape};
use dmpb_datagen::matrix::MatrixSpec;
use dmpb_datagen::text::{TextGenerator, KEY_LEN};
use dmpb_datagen::DataDescriptor;
use dmpb_perfmodel::profile::OpProfile;

use crate::ai::convolution::{conv2d, FilterBank, Padding};
use crate::ai::pooling::{average_pool2d, max_pool2d};
use crate::ai::{activation, fully_connected, normalization, reduce, regularization};
use crate::bigdata::{
    graph_ops, logic, matrix_ops, sampling, set_ops, sort, statistics, transform,
};
use crate::class::MotifKind;
use crate::config::MotifConfig;
use crate::cost;
use crate::pool::BufferPool;

// --- FNV-1a checksum folding (shared by all kernels) ---------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn hash_keys(keys: &[[u8; KEY_LEN]]) -> u64 {
    let mut h = FNV_OFFSET;
    for key in keys {
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

fn hash_u64s<I: IntoIterator<Item = u64>>(values: I) -> u64 {
    let mut h = FNV_OFFSET;
    for v in values {
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn hash_f64s<I: IntoIterator<Item = f64>>(values: I) -> u64 {
    let mut h = FNV_OFFSET;
    for v in values {
        h ^= v.to_bits();
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// --- Granule execution context and the chunk-reduce monoid ---------------

/// The execution context of one granule of a motif's logical input.
///
/// A granule is the fixed [`CHUNK_GRANULE`]-element window
/// `[start, end)` of an `total`-element input (only the input's last
/// granule may be partial).  Granule bodies address their data through
/// **global** element indices (`start + i`) and the granule-derived
/// [`seed`](GranuleCtx::seed), which is what makes a granule's outcome
/// independent of how the input was chunked.
#[derive(Debug, Clone, Copy)]
pub struct GranuleCtx {
    /// Global index of the granule's first element.
    pub start: usize,
    /// Global index one past the granule's last element.
    pub end: usize,
    /// Total number of elements in the motif's logical input.
    pub total: usize,
    /// The input data set's seed (shared by every granule of the input).
    pub dataset_seed: u64,
    /// This granule's derived seed: `granule_seed(dataset_seed, index)`.
    pub seed: u64,
}

impl GranuleCtx {
    /// Number of elements in the granule.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the granule is empty (never, for granules the default
    /// [`MotifKernel::execute_chunk`] constructs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The granule's index on the input's granule grid.
    pub fn index(&self) -> u64 {
        (self.start / CHUNK_GRANULE) as u64
    }
}

/// The associative reduce state of chunked motif execution.
///
/// A `ChunkState` summarises any set of granule outcomes with exactly
/// associative, commutative integer folds: granule/element counts, a
/// position-salted xor, a wrapping sum and min/max of the outcomes.  No
/// floating-point accumulation crosses granules (float addition is not
/// bit-associative), so [`merge`](ChunkState::merge)-ing chunk states in
/// any grouping and order — one chunk per granule, one chunk for the
/// whole input, or anything between, reduced on any number of workers —
/// [`finalize`](ChunkState::finalize)s to the same digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkState {
    /// Number of granules folded in.
    pub granules: u64,
    /// Number of input elements folded in.
    pub elements: u64,
    /// Xor of granule outcomes, each rotated by its granule index.
    pub xor: u64,
    /// Wrapping sum of granule outcomes.
    pub sum: u64,
    /// Minimum granule outcome (`u64::MAX` for the identity).
    pub min: u64,
    /// Maximum granule outcome (0 for the identity).
    pub max: u64,
}

impl ChunkState {
    /// The monoid identity: merging it into any state is a no-op.
    pub const IDENTITY: ChunkState = ChunkState {
        granules: 0,
        elements: 0,
        xor: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
    };

    /// Folds one granule's outcome into the state.
    pub fn absorb(&mut self, granule_index: u64, elements: usize, outcome: u64) {
        self.granules += 1;
        self.elements += elements as u64;
        // Salt the xor with the granule's position so equal outcomes at
        // different positions do not cancel.
        self.xor ^= outcome.rotate_left((granule_index % 64) as u32);
        self.sum = self.sum.wrapping_add(outcome);
        self.min = self.min.min(outcome);
        self.max = self.max.max(outcome);
    }

    /// Merges another chunk's state into this one (associative and
    /// commutative).
    pub fn merge(&mut self, other: &ChunkState) {
        self.granules += other.granules;
        self.elements += other.elements;
        self.xor ^= other.xor;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Folds the state into the motif's execution digest.
    pub fn finalize(&self, kind: MotifKind) -> u64 {
        hash_u64s([
            kind as u64,
            self.granules,
            self.elements,
            self.xor,
            self.sum,
            self.min,
            self.max,
        ])
    }
}

/// One data-motif implementation behind a uniform cost/execution interface.
///
/// Implementations are stateless singletons owned by the [`MotifRegistry`];
/// all per-invocation state lives in the arguments (and the leased pool
/// buffers), which is what makes concurrent execution of independent DAG
/// branches — and of independent chunks of one edge — safe.
pub trait MotifKernel: Send + Sync + std::fmt::Debug {
    /// Which motif implementation this kernel realises.
    fn kind(&self) -> MotifKind;

    /// The analytic operation profile of running this motif over `data`
    /// with configuration `config` (the "measure without materialising"
    /// face; see [`crate::cost`]).
    fn cost_profile(&self, data: &DataDescriptor, config: &MotifConfig) -> OpProfile {
        cost::cost_profile(self.kind(), data, config)
    }

    /// Executes the sample kernel over one granule of generated input and
    /// returns the granule's outcome.  Deterministic in the context alone
    /// (global element range, total size and seeds) — never in pool state
    /// or scheduling.
    fn execute_granule(&self, g: &GranuleCtx, pool: &BufferPool) -> u64;

    /// Executes the granule-aligned chunk `[start, end)` of an
    /// `total`-element input seeded with `seed`, folding every granule's
    /// outcome into a [`ChunkState`].
    ///
    /// # Panics
    ///
    /// Panics if `start` is not granule-aligned, or if `end` is neither
    /// granule-aligned nor the end of the input.
    fn execute_chunk(
        &self,
        start: usize,
        end: usize,
        total: usize,
        seed: u64,
        pool: &BufferPool,
    ) -> ChunkState {
        assert!(
            start <= end && end <= total,
            "invalid chunk {start}..{end} of {total}"
        );
        assert!(
            start % CHUNK_GRANULE == 0,
            "chunk start {start} splits a granule"
        );
        assert!(
            end % CHUNK_GRANULE == 0 || end == total,
            "chunk end {end} splits a granule"
        );
        let mut state = ChunkState::IDENTITY;
        let mut cursor = start;
        while cursor < end {
            let index = (cursor / CHUNK_GRANULE) as u64;
            let g = GranuleCtx {
                start: cursor,
                end: (cursor + CHUNK_GRANULE).min(end),
                total,
                dataset_seed: seed,
                seed: granule_seed(seed, index),
            };
            let outcome = self.execute_granule(&g, pool);
            state.absorb(index, g.len(), outcome);
            cursor = g.end;
        }
        state
    }

    /// Really executes the scaled-down sample kernel over `n` generated
    /// elements, leasing scratch storage from `pool`, and returns the
    /// execution digest.  Defined as the single-chunk case of
    /// [`execute_chunk`](Self::execute_chunk), so it is digest-identical
    /// to any chunked execution of the same `(n, seed)` by construction.
    fn execute(&self, n: usize, seed: u64, pool: &BufferPool) -> u64 {
        self.execute_chunk(0, n, n, seed, pool)
            .finalize(self.kind())
    }
}

/// Declares a private unit struct implementing [`MotifKernel`] for one
/// [`MotifKind`], with the `execute_granule` body written inline.
macro_rules! kernel {
    ($struct:ident, $kind:ident, |$g:ident, $pool:ident| $body:expr) => {
        #[derive(Debug)]
        struct $struct;

        impl MotifKernel for $struct {
            fn kind(&self) -> MotifKind {
                MotifKind::$kind
            }

            #[allow(unused_variables)]
            fn execute_granule(&self, $g: &GranuleCtx, $pool: &BufferPool) -> u64 {
                $body
            }
        }
    };
}

// --- Big-data kernels ----------------------------------------------------

kernel!(QuickSortKernel, QuickSort, |g, pool| {
    let mut keys = TextGenerator::new(g.dataset_seed)
        .generate_range(g.start, g.end)
        .keys();
    sort::quick_sort(&mut keys);
    hash_keys(&keys)
});

kernel!(MergeSortKernel, MergeSort, |g, pool| {
    let keys = TextGenerator::new(g.dataset_seed)
        .generate_range(g.start, g.end)
        .keys();
    hash_keys(&sort::merge_sort(&keys))
});

kernel!(RandomSamplingKernel, RandomSampling, |g, pool| {
    let start = g.start as u64;
    hash_u64s(
        sampling::random_sample_indices(g.len(), 0.1, g.seed)
            .into_iter()
            .map(|i| start + i as u64),
    )
});

kernel!(IntervalSamplingKernel, IntervalSampling, |g, pool| {
    // First local index whose *global* index is a multiple of 10, so the
    // union over granules is exactly the global 1-in-10 progression.
    let offset = (10 - g.start % 10) % 10;
    let start = g.start as u64;
    hash_u64s(
        sampling::interval_sample_indices(g.len(), 10, offset)
            .into_iter()
            .map(|i| start + i as u64),
    )
});

fn set_inputs(g: &GranuleCtx) -> (Vec<u64>, Vec<u64>) {
    let total = (g.total as u64).max(1);
    let a: Vec<u64> = (g.start as u64..g.end as u64)
        .map(|i| i * 3 % total)
        .collect();
    let b: Vec<u64> = (g.start as u64..g.end as u64)
        .map(|i| i * 7 % total)
        .collect();
    (set_ops::normalize(&a), set_ops::normalize(&b))
}

kernel!(SetUnionKernel, SetUnion, |g, pool| {
    let (a, b) = set_inputs(g);
    hash_u64s(set_ops::union(&a, &b))
});

kernel!(SetIntersectionKernel, SetIntersection, |g, pool| {
    let (a, b) = set_inputs(g);
    hash_u64s(set_ops::intersection(&a, &b))
});

kernel!(SetDifferenceKernel, SetDifference, |g, pool| {
    let (a, b) = set_inputs(g);
    hash_u64s(set_ops::difference(&a, &b))
});

fn granule_graph(g: &GranuleCtx) -> dmpb_datagen::graph::CsrGraph {
    let vertices = g.len().max(8);
    let salt = g.start;
    let edges: Vec<(u32, u32)> = (0..vertices * 4)
        .map(|i| {
            (
                (i % vertices) as u32,
                ((i * 31 + 7 + salt) % vertices) as u32,
            )
        })
        .collect();
    graph_ops::construct(vertices, &edges)
}

kernel!(GraphConstructKernel, GraphConstruct, |g, pool| {
    let graph = granule_graph(g);
    hash_u64s([graph.num_edges() as u64, graph.max_out_degree() as u64])
});

kernel!(GraphTraversalKernel, GraphTraversal, |g, pool| {
    graph_ops::traversal_reach(&granule_graph(g), 0) as u64
});

fn statistics_values<'p>(pool: &'p BufferPool, g: &GranuleCtx) -> crate::pool::Lease<'p, f64> {
    let mut values = pool.f64s(g.len());
    for (i, v) in values.iter_mut().enumerate() {
        *v = ((g.start + i) as f64 * 0.37).sin();
    }
    values
}

kernel!(CountStatisticsKernel, CountStatistics, |g, pool| {
    hash_f64s([statistics::count_average(&statistics_values(pool, g)).1])
});

kernel!(MinMaxKernel, MinMax, |g, pool| {
    let values = statistics_values(pool, g);
    let (min, max) = statistics::min_max(&values).unwrap_or((0.0, 0.0));
    hash_f64s([min, max])
});

kernel!(
    ProbabilityStatisticsKernel,
    ProbabilityStatistics,
    |g, pool| {
        let keys: Vec<u32> = (g.start..g.end).map(|i| (i % 17) as u32).collect();
        statistics::probabilities(&keys).len() as u64
    }
);

kernel!(Md5HashKernel, Md5Hash, |g, pool| {
    let data = TextGenerator::new(g.dataset_seed).generate_range(g.start, g.end);
    hash_bytes(&logic::md5(data.as_bytes()))
});

kernel!(EncryptionKernel, Encryption, |g, pool| {
    let data = TextGenerator::new(g.dataset_seed).generate_range(g.start, g.end);
    hash_bytes(&logic::xor_encrypt(data.as_bytes(), g.seed | 1))
});

fn fft_signal<'p>(pool: &'p BufferPool, g: &GranuleCtx) -> crate::pool::Lease<'p, f64> {
    let len = g.len().next_power_of_two().clamp(64, 4096);
    let mut signal = pool.f64s(len);
    for (i, v) in signal.iter_mut().enumerate() {
        *v = ((g.start + i) as f64 * 0.11).cos();
    }
    signal
}

kernel!(FftKernel, Fft, |g, pool| {
    let spectrum = transform::fft_real(&fft_signal(pool, g));
    hash_f64s(spectrum.into_iter().map(|(re, _)| re))
});

kernel!(IfftKernel, Ifft, |g, pool| {
    let spectrum = transform::fft_real(&fft_signal(pool, g));
    hash_f64s(transform::ifft_real(&spectrum))
});

kernel!(DctKernel, Dct, |g, pool| {
    // dct2 is O(len^2); capping the transform keeps the kernel linear in
    // the granule count at a fixed per-granule cost.
    let mut samples = pool.f64s(g.len().min(256));
    for (i, v) in samples.iter_mut().enumerate() {
        *v = ((g.start + i) as f64 * 0.21).sin();
    }
    hash_f64s(transform::dct2(&samples))
});

kernel!(DistanceCalculationKernel, DistanceCalculation, |g, pool| {
    let dim = g.len();
    let mut a = pool.f64s(dim);
    let mut b = pool.f64s(dim);
    for i in 0..dim {
        a[i] = ((g.start + i) as f64 * 0.3).sin();
        b[i] = ((g.start + i) as f64 * 0.7).cos();
    }
    hash_f64s([
        matrix_ops::euclidean_distance(&a, &b),
        matrix_ops::cosine_distance(&a, &b),
    ])
});

kernel!(MatrixMultiplyKernel, MatrixMultiply, |g, pool| {
    let size = (g.len() as f64).sqrt().ceil().clamp(4.0, 64.0) as usize;
    let a = MatrixSpec::dense(size, size, g.seed).generate_dense();
    let b = MatrixSpec::dense(size, size, g.seed ^ 1).generate_dense();
    hash_f64s([matrix_ops::matrix_multiply(&a, &b).frobenius_norm()])
});

// --- AI kernels ----------------------------------------------------------

fn granule_tensor(g: &GranuleCtx) -> dmpb_datagen::image::ImageTensor {
    ImageGenerator::new(g.seed).generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw)
}

kernel!(ConvolutionKernel, Convolution, |g, pool| {
    let filters = FilterBank::constant(4, 3, 3, 0.1);
    hash_f64s(
        conv2d(&granule_tensor(g), &filters, 1, Padding::Same)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(MaxPoolingKernel, MaxPooling, |g, pool| {
    hash_f64s(
        max_pool2d(&granule_tensor(g), 2, 2)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(AveragePoolingKernel, AveragePooling, |g, pool| {
    hash_f64s(
        average_pool2d(&granule_tensor(g), 2, 2)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(FullyConnectedKernel, FullyConnected, |g, pool| {
    let batch = (g.len() / 64).max(1);
    let mut input = pool.f32s(batch * 64);
    for (i, v) in input.iter_mut().enumerate() {
        *v = (g.start + i) as f32 * 0.01;
    }
    let mut weights = pool.f32s(64 * 8);
    for (i, v) in weights.iter_mut().enumerate() {
        *v = (i % 7) as f32 * 0.1;
    }
    let out = fully_connected::fully_connected(&input, &weights, &[0.0; 8], batch, 64, 8);
    hash_f64s(out.into_iter().map(f64::from))
});

kernel!(ElementWiseMultiplyKernel, ElementWiseMultiply, |g, pool| {
    let mut a = pool.f32s(g.len());
    for (i, v) in a.iter_mut().enumerate() {
        *v = (g.start + i) as f32 * 0.5;
    }
    hash_f64s(
        fully_connected::element_wise_multiply(&a, &a)
            .into_iter()
            .map(f64::from),
    )
});

fn activation_input<'p>(pool: &'p BufferPool, g: &GranuleCtx) -> crate::pool::Lease<'p, f32> {
    let mut x = pool.f32s(g.len());
    for (i, v) in x.iter_mut().enumerate() {
        *v = ((g.start + i) as f32 - 512.0) * 0.01;
    }
    x
}

kernel!(SigmoidKernel, Sigmoid, |g, pool| {
    let x = activation_input(pool, g);
    hash_f64s(activation::sigmoid(&x).into_iter().map(f64::from))
});

kernel!(TanhKernel, Tanh, |g, pool| {
    let x = activation_input(pool, g);
    hash_f64s(activation::tanh(&x).into_iter().map(f64::from))
});

kernel!(ReluKernel, Relu, |g, pool| {
    let x = activation_input(pool, g);
    hash_f64s(activation::relu(&x).into_iter().map(f64::from))
});

kernel!(SoftmaxKernel, Softmax, |g, pool| {
    let x = activation_input(pool, g);
    hash_f64s(
        activation::softmax(&x, x.len().max(1))
            .into_iter()
            .map(f64::from),
    )
});

kernel!(DropoutKernel, Dropout, |g, pool| {
    let mut x = pool.f32s(g.len());
    x.fill(1.0);
    hash_f64s(
        regularization::dropout(&x, 0.5, g.seed)
            .into_iter()
            .map(f64::from),
    )
});

fn normalization_input<'p>(pool: &'p BufferPool, g: &GranuleCtx) -> crate::pool::Lease<'p, f32> {
    let mut x = pool.f32s(g.len());
    for (i, v) in x.iter_mut().enumerate() {
        *v = (g.start + i) as f32 * 0.3;
    }
    x
}

kernel!(BatchNormalizationKernel, BatchNormalization, |g, pool| {
    let x = normalization_input(pool, g);
    hash_f64s(
        normalization::cosine_normalize(&x)
            .into_iter()
            .map(f64::from),
    )
});

kernel!(CosineNormalizationKernel, CosineNormalization, |g, pool| {
    let x = normalization_input(pool, g);
    hash_f64s(
        normalization::cosine_normalize(&x)
            .into_iter()
            .map(f64::from),
    )
});

fn reduce_input<'p>(pool: &'p BufferPool, g: &GranuleCtx) -> crate::pool::Lease<'p, f32> {
    let mut x = pool.f32s(g.len());
    for (i, v) in x.iter_mut().enumerate() {
        *v = (g.start + i) as f32;
    }
    x
}

kernel!(ReduceSumKernel, ReduceSum, |g, pool| {
    hash_f64s([f64::from(reduce::reduce_sum(&reduce_input(pool, g)))])
});

kernel!(ReduceMaxKernel, ReduceMax, |g, pool| {
    hash_f64s([f64::from(
        reduce::reduce_max(&reduce_input(pool, g)).unwrap_or(0.0),
    )])
});

// --- Superkernels (profile-guided fusion) --------------------------------

/// A **superkernel**: one object executing two adjacent DAG edges'
/// kernels in a single dispatch.
///
/// Profiling the eight workloads' DAG plans (see
/// [`crate::profile::rank_fusion_candidates`]) showed two kernel pairs
/// chained through an intermediate node more often than any other:
/// quick sort feeding merge sort (combiner output merged at the
/// reducer) and graph construction feeding graph traversal (build the
/// adjacency structure, then walk it).  Registering a fused kernel for
/// a pair lets the executor run a whole chain as *one* scheduled task —
/// eliding a readiness countdown, a task spawn and a dispatch per fused
/// edge — and share input materialisation when both halves read the
/// same data.
///
/// # Contract
///
/// `execute` must return **exactly** the digests the two registered
/// [`MotifKernel`]s would produce for the same `(n, seed)` arguments —
/// fusion is a pure performance axis, pinned by unit tests and a
/// proptest over random argument pairs.
pub trait FusedKernel: Send + Sync + std::fmt::Debug {
    /// The `(first, second)` motif pair this superkernel fuses.
    fn pair(&self) -> (MotifKind, MotifKind);

    /// Executes both halves and returns their digests in order.
    /// `first` and `second` carry each half's `(n, seed)` arguments.
    fn execute(&self, first: (usize, u64), second: (usize, u64), pool: &BufferPool) -> (u64, u64);
}

/// Quick sort + merge sort fused: when both halves sort the same
/// generated keys (equal `(n, seed)`), each granule's input is generated
/// once — merge sort reads the unsorted keys before quick sort reorders
/// them in place.  Distinct arguments fall back to running both bodies
/// back to back (still one scheduled task instead of two).
#[derive(Debug)]
struct QuickMergeSortKernel;

impl FusedKernel for QuickMergeSortKernel {
    fn pair(&self) -> (MotifKind, MotifKind) {
        (MotifKind::QuickSort, MotifKind::MergeSort)
    }

    fn execute(
        &self,
        (n_quick, seed_quick): (usize, u64),
        (n_merge, seed_merge): (usize, u64),
        pool: &BufferPool,
    ) -> (u64, u64) {
        let shared = (n_merge, seed_merge) == (n_quick, seed_quick);
        let mut quick_state = ChunkState::IDENTITY;
        let mut merge_state = ChunkState::IDENTITY;
        let generator = TextGenerator::new(seed_quick);
        let mut cursor = 0;
        while cursor < n_quick {
            let index = (cursor / CHUNK_GRANULE) as u64;
            let end = (cursor + CHUNK_GRANULE).min(n_quick);
            let mut keys = generator.generate_range(cursor, end).keys();
            if shared {
                merge_state.absorb(index, end - cursor, hash_keys(&sort::merge_sort(&keys)));
            }
            sort::quick_sort(&mut keys);
            quick_state.absorb(index, end - cursor, hash_keys(&keys));
            cursor = end;
        }
        if !shared {
            merge_state = MergeSortKernel.execute_chunk(0, n_merge, n_merge, seed_merge, pool);
        }
        (
            quick_state.finalize(MotifKind::QuickSort),
            merge_state.finalize(MotifKind::MergeSort),
        )
    }
}

/// Graph construction + traversal fused: each granule's sample graph
/// depends only on its element range, so when both halves agree on `n`
/// the adjacency structure is built **once** per granule and both the
/// construction outcome and the traversal reach are read off the same
/// graph — construction is the expensive half, so this roughly halves
/// the chain's work.
#[derive(Debug)]
struct GraphConstructTraversalKernel;

impl FusedKernel for GraphConstructTraversalKernel {
    fn pair(&self) -> (MotifKind, MotifKind) {
        (MotifKind::GraphConstruct, MotifKind::GraphTraversal)
    }

    fn execute(
        &self,
        (n_construct, seed_construct): (usize, u64),
        (n_traverse, seed_traverse): (usize, u64),
        pool: &BufferPool,
    ) -> (u64, u64) {
        let mut construct_state = ChunkState::IDENTITY;
        let mut traverse_state = ChunkState::IDENTITY;
        let mut cursor = 0;
        while cursor < n_construct {
            let index = (cursor / CHUNK_GRANULE) as u64;
            let end = (cursor + CHUNK_GRANULE).min(n_construct);
            let g = GranuleCtx {
                start: cursor,
                end,
                total: n_construct,
                dataset_seed: seed_construct,
                seed: granule_seed(seed_construct, index),
            };
            let graph = granule_graph(&g);
            construct_state.absorb(
                index,
                g.len(),
                hash_u64s([graph.num_edges() as u64, graph.max_out_degree() as u64]),
            );
            if n_traverse == n_construct {
                traverse_state.absorb(index, g.len(), graph_ops::traversal_reach(&graph, 0) as u64);
            }
            cursor = end;
        }
        if n_traverse != n_construct {
            traverse_state =
                GraphTraversalKernel.execute_chunk(0, n_traverse, n_traverse, seed_traverse, pool);
        }
        (
            construct_state.finalize(MotifKind::GraphConstruct),
            traverse_state.finalize(MotifKind::GraphTraversal),
        )
    }
}

/// The registered superkernels — the two most frequently adjacent pairs
/// across the eight workloads' DAG plans, tie-broken by profiled
/// cumulative kernel time (see `profile_ranks_the_registered_fusions`
/// in the crate tests).
static FUSED_KERNELS: [&dyn FusedKernel; 2] =
    [&QuickMergeSortKernel, &GraphConstructTraversalKernel];

/// Constructs the kernel object for one motif kind.
///
/// This match is the **single** kind→kernel dispatch point of the whole
/// workspace, and it is deliberately written without a wildcard arm:
/// adding a [`MotifKind`] variant without registering a kernel fails to
/// compile here, long before any runtime lookup could miss.
fn kernel_for(kind: MotifKind) -> &'static dyn MotifKernel {
    use MotifKind::*;
    match kind {
        DistanceCalculation => &DistanceCalculationKernel,
        MatrixMultiply => &MatrixMultiplyKernel,
        RandomSampling => &RandomSamplingKernel,
        IntervalSampling => &IntervalSamplingKernel,
        SetUnion => &SetUnionKernel,
        SetIntersection => &SetIntersectionKernel,
        SetDifference => &SetDifferenceKernel,
        GraphConstruct => &GraphConstructKernel,
        GraphTraversal => &GraphTraversalKernel,
        QuickSort => &QuickSortKernel,
        MergeSort => &MergeSortKernel,
        CountStatistics => &CountStatisticsKernel,
        ProbabilityStatistics => &ProbabilityStatisticsKernel,
        MinMax => &MinMaxKernel,
        Md5Hash => &Md5HashKernel,
        Encryption => &EncryptionKernel,
        Fft => &FftKernel,
        Ifft => &IfftKernel,
        Dct => &DctKernel,
        FullyConnected => &FullyConnectedKernel,
        ElementWiseMultiply => &ElementWiseMultiplyKernel,
        Sigmoid => &SigmoidKernel,
        Tanh => &TanhKernel,
        Softmax => &SoftmaxKernel,
        MaxPooling => &MaxPoolingKernel,
        AveragePooling => &AveragePoolingKernel,
        Convolution => &ConvolutionKernel,
        Dropout => &DropoutKernel,
        BatchNormalization => &BatchNormalizationKernel,
        CosineNormalization => &CosineNormalizationKernel,
        ReduceSum => &ReduceSumKernel,
        ReduceMax => &ReduceMaxKernel,
        Relu => &ReluKernel,
    }
}

/// The registry mapping every [`MotifKind`] to its [`MotifKernel`].
///
/// Lookup is an array index (`kind as usize` follows declaration order,
/// which [`MotifKind::ALL`] mirrors), so dispatch through the registry is
/// as cheap as the `match` blocks it replaces.
#[derive(Debug)]
pub struct MotifRegistry {
    kernels: Vec<&'static dyn MotifKernel>,
}

impl MotifRegistry {
    /// Builds a registry covering every motif kind.
    fn new() -> Self {
        let kernels: Vec<&'static dyn MotifKernel> =
            MotifKind::ALL.iter().map(|&k| kernel_for(k)).collect();
        for (i, kernel) in kernels.iter().enumerate() {
            debug_assert_eq!(
                kernel.kind() as usize,
                i,
                "MotifKind::ALL must follow declaration order"
            );
        }
        Self { kernels }
    }

    /// The process-wide shared registry.
    pub fn global() -> &'static MotifRegistry {
        static REGISTRY: OnceLock<MotifRegistry> = OnceLock::new();
        REGISTRY.get_or_init(MotifRegistry::new)
    }

    /// The kernel registered for `kind`.
    pub fn kernel(&self, kind: MotifKind) -> &'static dyn MotifKernel {
        self.kernels[kind as usize]
    }

    /// All registered kernels, in [`MotifKind::ALL`] order.
    pub fn kernels(&self) -> impl Iterator<Item = &'static dyn MotifKernel> + '_ {
        self.kernels.iter().copied()
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the registry is empty (it never is; `clippy` insists the
    /// method exists alongside [`MotifRegistry::len`]).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The superkernel fusing `(first, second)`, if one is registered.
    /// The executor consults this when an edge's target node has
    /// in-degree 1, i.e. when the second edge becomes ready exactly as
    /// the first completes.
    pub fn fused(&self, first: MotifKind, second: MotifKind) -> Option<&'static dyn FusedKernel> {
        FUSED_KERNELS
            .iter()
            .copied()
            .find(|k| k.pair() == (first, second))
    }

    /// Every registered superkernel pair, in registration order.
    pub fn fused_pairs(&self) -> Vec<(MotifKind, MotifKind)> {
        FUSED_KERNELS.iter().map(|k| k.pair()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::descriptor::{DataClass, Distribution};

    /// The satellite exhaustiveness gate: every `MotifKind` variant must
    /// resolve to a kernel whose `kind()` round-trips.  (The `match` in
    /// [`kernel_for`] already makes a *missing* registration a compile
    /// error; this test additionally catches a mis-wired one.)
    #[test]
    fn registry_covers_every_motif_kind() {
        let registry = MotifRegistry::global();
        assert_eq!(registry.len(), MotifKind::ALL.len());
        assert!(!registry.is_empty());
        for kind in MotifKind::ALL {
            assert_eq!(
                registry.kernel(kind).kind(),
                kind,
                "registry entry for {kind} resolves to the wrong kernel"
            );
        }
    }

    #[test]
    fn every_kernel_executes_deterministically() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        for kernel in registry.kernels() {
            let a = kernel.execute(128, 3, &pool);
            let b = kernel.execute(128, 3, &pool);
            assert_eq!(a, b, "{} is not deterministic", kernel.kind());
        }
    }

    #[test]
    fn checksums_do_not_depend_on_pool_reuse() {
        let registry = MotifRegistry::global();
        for kind in MotifKind::ALL {
            let fresh = registry.kernel(kind).execute(200, 9, &BufferPool::new());
            let warm_pool = BufferPool::new();
            // Dirty the pool with other kernels first.
            for other in MotifKind::ALL {
                registry.kernel(other).execute(64, 1, &warm_pool);
            }
            let warm = registry.kernel(kind).execute(200, 9, &warm_pool);
            assert_eq!(fresh, warm, "{kind} checksum depends on pool state");
        }
    }

    /// The streaming identity: for every motif kind, executing the input
    /// as granule-aligned chunks of any size reduces to exactly the
    /// monolithic digest.
    #[test]
    fn chunked_execution_is_digest_identical_for_every_kind() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        let total = 2 * CHUNK_GRANULE + 700;
        for kind in MotifKind::ALL {
            let kernel = registry.kernel(kind);
            let monolithic = kernel.execute(total, 5, &pool);
            for chunk in [CHUNK_GRANULE, 2 * CHUNK_GRANULE, 4 * CHUNK_GRANULE] {
                let mut state = ChunkState::IDENTITY;
                let mut start = 0;
                while start < total {
                    let end = (start + chunk).min(total);
                    state.merge(&kernel.execute_chunk(start, end, total, 5, &pool));
                    start = end;
                }
                assert_eq!(
                    state.finalize(kind),
                    monolithic,
                    "{kind} chunked digest diverges at chunk={chunk}"
                );
            }
        }
    }

    /// Chunk states merge associatively and commutatively: any merge
    /// order of the same chunks finalizes identically.
    #[test]
    fn chunk_state_merge_is_order_invariant() {
        let kernel = MotifRegistry::global().kernel(MotifKind::QuickSort);
        let pool = BufferPool::new();
        let total = 3 * CHUNK_GRANULE + 100;
        let chunks: Vec<ChunkState> = (0..4)
            .map(|i| {
                let start = i * CHUNK_GRANULE;
                let end = ((i + 1) * CHUNK_GRANULE).min(total);
                kernel.execute_chunk(start, end, total, 8, &pool)
            })
            .collect();
        let mut forward = ChunkState::IDENTITY;
        for c in &chunks {
            forward.merge(c);
        }
        let mut reverse = ChunkState::IDENTITY;
        for c in chunks.iter().rev() {
            reverse.merge(c);
        }
        // Pairwise tree reduction, as a parallel reducer would produce.
        let mut left = chunks[0];
        left.merge(&chunks[1]);
        let mut right = chunks[2];
        right.merge(&chunks[3]);
        let mut tree = ChunkState::IDENTITY;
        tree.merge(&left);
        tree.merge(&right);
        assert_eq!(forward, reverse);
        assert_eq!(forward, tree);
        assert_eq!(
            forward.finalize(MotifKind::QuickSort),
            tree.finalize(MotifKind::QuickSort)
        );
    }

    #[test]
    #[should_panic(expected = "splits a granule")]
    fn execute_chunk_rejects_unaligned_start() {
        let kernel = MotifRegistry::global().kernel(MotifKind::MinMax);
        let pool = BufferPool::new();
        let _ = kernel.execute_chunk(100, CHUNK_GRANULE, 2 * CHUNK_GRANULE, 1, &pool);
    }

    #[test]
    #[should_panic(expected = "splits a granule")]
    fn execute_chunk_rejects_unaligned_interior_end() {
        let kernel = MotifRegistry::global().kernel(MotifKind::MinMax);
        let pool = BufferPool::new();
        let _ = kernel.execute_chunk(0, 100, 2 * CHUNK_GRANULE, 1, &pool);
    }

    #[test]
    fn kernel_cost_profile_matches_the_analytic_model() {
        let data = DataDescriptor::new(DataClass::Text, 1 << 30, 100, 0.0, Distribution::Uniform);
        let config = MotifConfig::big_data_default();
        let via_kernel = MotifRegistry::global()
            .kernel(MotifKind::QuickSort)
            .cost_profile(&data, &config);
        let via_model = cost::cost_profile(MotifKind::QuickSort, &data, &config);
        assert_eq!(
            via_kernel.total_instructions(),
            via_model.total_instructions()
        );
    }

    /// A fused pair must be digest-identical to its unfused halves for
    /// every argument combination — exercised here on the boundary cases
    /// (shared arguments, distinct arguments) for both superkernels.
    #[test]
    fn superkernels_match_their_unfused_pairs() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        for (first, second) in registry.fused_pairs() {
            let fused = registry.fused(first, second).expect("pair is registered");
            assert_eq!(fused.pair(), (first, second));
            for (args_a, args_b) in [
                ((128, 7), (128, 7)), // shared input fast path
                ((128, 7), (128, 9)), // same size, different seed
                ((128, 7), (300, 7)), // different size, same seed
                ((64, 1), (512, 99)), // fully distinct
                ((16, 0), (16, u64::MAX)),
                ((CHUNK_GRANULE + 5, 3), (CHUNK_GRANULE + 5, 3)), // multi-granule shared
                ((2 * CHUNK_GRANULE, 4), (CHUNK_GRANULE, 4)),     // multi-granule distinct
            ] {
                let expect_a = registry.kernel(first).execute(args_a.0, args_a.1, &pool);
                let expect_b = registry.kernel(second).execute(args_b.0, args_b.1, &pool);
                let (got_a, got_b) = fused.execute(args_a, args_b, &pool);
                assert_eq!(
                    (got_a, got_b),
                    (expect_a, expect_b),
                    "fused {first}+{second} diverges at {args_a:?}/{args_b:?}"
                );
            }
        }
    }

    #[test]
    fn unregistered_pairs_have_no_superkernel() {
        let registry = MotifRegistry::global();
        assert!(registry
            .fused(MotifKind::QuickSort, MotifKind::MergeSort)
            .is_some());
        assert!(registry
            .fused(MotifKind::GraphConstruct, MotifKind::GraphTraversal)
            .is_some());
        // Order matters: only the observed adjacency direction is fused.
        assert!(registry
            .fused(MotifKind::MergeSort, MotifKind::QuickSort)
            .is_none());
        assert!(registry.fused(MotifKind::Fft, MotifKind::Ifft).is_none());
        assert_eq!(registry.fused_pairs().len(), 2);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// The digest-identity pin: over random argument pairs, every
        /// superkernel reproduces its unfused halves' digests exactly.
        #[test]
        fn superkernels_are_checksum_identical_for_random_arguments(
            n_a in 16usize..600,
            n_b in 16usize..600,
            seed_a in 0u64..10_000,
            seed_b in 0u64..10_000,
        ) {
            let registry = MotifRegistry::global();
            let pool = BufferPool::new();
            for (first, second) in registry.fused_pairs() {
                let fused = registry.fused(first, second).unwrap();
                let expect = (
                    registry.kernel(first).execute(n_a, seed_a, &pool),
                    registry.kernel(second).execute(n_b, seed_b, &pool),
                );
                let got = fused.execute((n_a, seed_a), (n_b, seed_b), &pool);
                proptest::prop_assert_eq!(got, expect);
            }
        }
    }

    #[test]
    fn kernels_share_one_pool_across_kinds() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        registry
            .kernel(MotifKind::CountStatistics)
            .execute(512, 1, &pool);
        registry.kernel(MotifKind::MinMax).execute(512, 2, &pool);
        assert!(
            pool.stats().reused >= 1,
            "second statistics kernel must recycle the first one's buffer"
        );
    }
}
