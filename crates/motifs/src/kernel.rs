//! The [`MotifKernel`] trait and the registry of one kernel per
//! [`MotifKind`].
//!
//! A kernel is the uniform, object-safe face of one motif implementation.
//! It bundles the two things a proxy benchmark needs from a motif:
//!
//! * [`MotifKernel::cost_profile`] — the analytic cost model (delegating to
//!   [`crate::cost`]), used to *measure* the motif at the paper's data
//!   scale without materialising data; and
//! * [`MotifKernel::execute`] — the real, scaled-down sample kernel, used
//!   to *run* the motif on generated data and fold its output into a
//!   checksum.  Scratch storage is leased from a shared, sharded
//!   [`BufferPool`] (a pool worker leases through its own shard with
//!   best-fit reuse; see [`crate::pool`]), so a DAG full of kernels
//!   recycles allocations instead of re-allocating per edge — without
//!   contending on a global free-list lock under the work-stealing
//!   executor.
//!
//! The [`MotifRegistry`] maps every [`MotifKind`] to its kernel object.
//! Registration happens in one exhaustive `match` (`kernel_for`): adding
//! a `MotifKind` variant without a kernel is a *compile* error, and the
//! registry's own tests additionally assert the mapping round-trips for
//! every variant.  Downstream crates dispatch through the registry instead
//! of maintaining their own `match motif { … }` blocks.
//!
//! Execution is deterministic: a kernel's checksum depends only on `(n,
//! seed)`, never on pool state or thread scheduling (leased buffers are
//! zero-filled; see [`crate::pool`]).

use std::sync::OnceLock;

use dmpb_datagen::image::{ImageGenerator, TensorLayout, TensorShape};
use dmpb_datagen::matrix::MatrixSpec;
use dmpb_datagen::text::TextGenerator;
use dmpb_datagen::DataDescriptor;
use dmpb_perfmodel::profile::OpProfile;

use crate::ai::convolution::{conv2d, FilterBank, Padding};
use crate::ai::pooling::{average_pool2d, max_pool2d};
use crate::ai::{activation, fully_connected, normalization, reduce, regularization};
use crate::bigdata::{
    graph_ops, logic, matrix_ops, sampling, set_ops, sort, statistics, transform,
};
use crate::class::MotifKind;
use crate::config::MotifConfig;
use crate::cost;
use crate::pool::BufferPool;

// --- FNV-1a checksum folding (shared by all kernels) ---------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn hash_f64s<I: IntoIterator<Item = f64>>(values: I) -> u64 {
    let mut h = FNV_OFFSET;
    for v in values {
        h ^= v.to_bits();
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One data-motif implementation behind a uniform cost/execution interface.
///
/// Implementations are stateless singletons owned by the [`MotifRegistry`];
/// all per-invocation state lives in the arguments (and the leased pool
/// buffers), which is what makes concurrent execution of independent DAG
/// branches safe.
pub trait MotifKernel: Send + Sync + std::fmt::Debug {
    /// Which motif implementation this kernel realises.
    fn kind(&self) -> MotifKind;

    /// The analytic operation profile of running this motif over `data`
    /// with configuration `config` (the "measure without materialising"
    /// face; see [`crate::cost`]).
    fn cost_profile(&self, data: &DataDescriptor, config: &MotifConfig) -> OpProfile {
        cost::cost_profile(self.kind(), data, config)
    }

    /// Really executes the scaled-down sample kernel over `n` generated
    /// elements, leasing scratch storage from `pool`, and returns a
    /// checksum over the output.  Deterministic in `(n, seed)`.
    fn execute(&self, n: usize, seed: u64, pool: &BufferPool) -> u64;
}

/// Declares a private unit struct implementing [`MotifKernel`] for one
/// [`MotifKind`], with the `execute` body written inline.
macro_rules! kernel {
    ($struct:ident, $kind:ident, |$n:ident, $seed:ident, $pool:ident| $body:expr) => {
        #[derive(Debug)]
        struct $struct;

        impl MotifKernel for $struct {
            fn kind(&self) -> MotifKind {
                MotifKind::$kind
            }

            #[allow(unused_variables)]
            fn execute(&self, $n: usize, $seed: u64, $pool: &BufferPool) -> u64 {
                $body
            }
        }
    };
}

// --- Big-data kernels ----------------------------------------------------

kernel!(QuickSortKernel, QuickSort, |n, seed, pool| {
    let mut keys = TextGenerator::new(seed).generate(n).keys();
    sort::quick_sort(&mut keys);
    hash_bytes(&keys[0])
});

kernel!(MergeSortKernel, MergeSort, |n, seed, pool| {
    let keys = TextGenerator::new(seed).generate(n).keys();
    let sorted = sort::merge_sort(&keys);
    hash_bytes(&sorted[sorted.len() / 2])
});

kernel!(RandomSamplingKernel, RandomSampling, |n, seed, pool| {
    sampling::random_sample_indices(n, 0.1, seed).len() as u64
});

kernel!(IntervalSamplingKernel, IntervalSampling, |n, seed, pool| {
    sampling::interval_sample_indices(n, 10, 0).len() as u64
});

fn set_inputs(n: usize) -> (Vec<u64>, Vec<u64>) {
    let a: Vec<u64> = (0..n as u64).map(|i| i * 3 % (n as u64).max(1)).collect();
    let b: Vec<u64> = (0..n as u64).map(|i| i * 7 % (n as u64).max(1)).collect();
    (set_ops::normalize(&a), set_ops::normalize(&b))
}

kernel!(SetUnionKernel, SetUnion, |n, seed, pool| {
    let (a, b) = set_inputs(n);
    set_ops::union(&a, &b).len() as u64
});

kernel!(SetIntersectionKernel, SetIntersection, |n, seed, pool| {
    let (a, b) = set_inputs(n);
    set_ops::intersection(&a, &b).len() as u64
});

kernel!(SetDifferenceKernel, SetDifference, |n, seed, pool| {
    let (a, b) = set_inputs(n);
    set_ops::difference(&a, &b).len() as u64
});

fn sample_graph(n: usize) -> dmpb_datagen::graph::CsrGraph {
    let vertices = n.max(8);
    let edges: Vec<(u32, u32)> = (0..vertices * 4)
        .map(|i| ((i % vertices) as u32, ((i * 31 + 7) % vertices) as u32))
        .collect();
    graph_ops::construct(vertices, &edges)
}

kernel!(GraphConstructKernel, GraphConstruct, |n, seed, pool| {
    sample_graph(n).num_edges() as u64
});

kernel!(GraphTraversalKernel, GraphTraversal, |n, seed, pool| {
    graph_ops::traversal_reach(&sample_graph(n), 0) as u64
});

fn statistics_values(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f64> {
    let mut values = pool.f64s(n);
    for (i, v) in values.iter_mut().enumerate() {
        *v = (i as f64 * 0.37).sin();
    }
    values
}

kernel!(CountStatisticsKernel, CountStatistics, |n, seed, pool| {
    hash_f64s([statistics::count_average(&statistics_values(pool, n)).1])
});

kernel!(MinMaxKernel, MinMax, |n, seed, pool| {
    let values = statistics_values(pool, n);
    let (min, max) = statistics::min_max(&values).unwrap_or((0.0, 0.0));
    hash_f64s([min, max])
});

kernel!(
    ProbabilityStatisticsKernel,
    ProbabilityStatistics,
    |n, seed, pool| {
        let keys: Vec<u32> = (0..n).map(|i| (i % 17) as u32).collect();
        statistics::probabilities(&keys).len() as u64
    }
);

kernel!(Md5HashKernel, Md5Hash, |n, seed, pool| {
    let data = TextGenerator::new(seed).generate(n.min(512));
    hash_bytes(&logic::md5(data.as_bytes()))
});

kernel!(EncryptionKernel, Encryption, |n, seed, pool| {
    let data = TextGenerator::new(seed).generate(n.min(512));
    hash_bytes(&logic::xor_encrypt(data.as_bytes(), seed | 1))
});

fn fft_signal(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f64> {
    let len = n.next_power_of_two().clamp(64, 4096);
    let mut signal = pool.f64s(len);
    for (i, v) in signal.iter_mut().enumerate() {
        *v = (i as f64 * 0.11).cos();
    }
    signal
}

kernel!(FftKernel, Fft, |n, seed, pool| {
    let spectrum = transform::fft_real(&fft_signal(pool, n));
    hash_f64s(spectrum.into_iter().map(|(re, _)| re))
});

kernel!(IfftKernel, Ifft, |n, seed, pool| {
    let spectrum = transform::fft_real(&fft_signal(pool, n));
    hash_f64s(transform::ifft_real(&spectrum))
});

kernel!(DctKernel, Dct, |n, seed, pool| {
    let mut samples = pool.f64s(n.min(256));
    for (i, v) in samples.iter_mut().enumerate() {
        *v = (i as f64 * 0.21).sin();
    }
    hash_f64s(transform::dct2(&samples))
});

kernel!(
    DistanceCalculationKernel,
    DistanceCalculation,
    |n, seed, pool| {
        let dim = 32;
        let mut a = pool.f64s(dim);
        let mut b = pool.f64s(dim);
        for i in 0..dim {
            a[i] = (i as f64 * 0.3).sin();
            b[i] = (i as f64 * 0.7).cos();
        }
        hash_f64s([
            matrix_ops::euclidean_distance(&a, &b),
            matrix_ops::cosine_distance(&a, &b),
        ])
    }
);

kernel!(MatrixMultiplyKernel, MatrixMultiply, |n, seed, pool| {
    let size = (n as f64).sqrt().ceil().clamp(4.0, 64.0) as usize;
    let a = MatrixSpec::dense(size, size, seed).generate_dense();
    let b = MatrixSpec::dense(size, size, seed ^ 1).generate_dense();
    hash_f64s([matrix_ops::matrix_multiply(&a, &b).frobenius_norm()])
});

// --- AI kernels ----------------------------------------------------------

kernel!(ConvolutionKernel, Convolution, |n, seed, pool| {
    let t = ImageGenerator::new(seed).generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw);
    let filters = FilterBank::constant(4, 3, 3, 0.1);
    hash_f64s(
        conv2d(&t, &filters, 1, Padding::Same)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(MaxPoolingKernel, MaxPooling, |n, seed, pool| {
    let t = ImageGenerator::new(seed).generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw);
    hash_f64s(
        max_pool2d(&t, 2, 2)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(AveragePoolingKernel, AveragePooling, |n, seed, pool| {
    let t = ImageGenerator::new(seed).generate(TensorShape::new(1, 3, 16, 16), TensorLayout::Nchw);
    hash_f64s(
        average_pool2d(&t, 2, 2)
            .as_slice()
            .iter()
            .map(|&v| f64::from(v)),
    )
});

kernel!(FullyConnectedKernel, FullyConnected, |n, seed, pool| {
    let mut input = pool.f32s(64);
    for (i, v) in input.iter_mut().enumerate() {
        *v = i as f32 * 0.01;
    }
    let mut weights = pool.f32s(64 * 8);
    for (i, v) in weights.iter_mut().enumerate() {
        *v = (i % 7) as f32 * 0.1;
    }
    let out = fully_connected::fully_connected(&input, &weights, &[0.0; 8], 1, 64, 8);
    hash_f64s(out.into_iter().map(f64::from))
});

kernel!(
    ElementWiseMultiplyKernel,
    ElementWiseMultiply,
    |n, seed, pool| {
        let mut a = pool.f32s(n.min(1024));
        for (i, v) in a.iter_mut().enumerate() {
            *v = i as f32 * 0.5;
        }
        hash_f64s(
            fully_connected::element_wise_multiply(&a, &a)
                .into_iter()
                .map(f64::from),
        )
    }
);

fn activation_input(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f32> {
    let mut x = pool.f32s(n.min(1024));
    for (i, v) in x.iter_mut().enumerate() {
        *v = (i as f32 - 512.0) * 0.01;
    }
    x
}

kernel!(SigmoidKernel, Sigmoid, |n, seed, pool| {
    let x = activation_input(pool, n);
    hash_f64s(activation::sigmoid(&x).into_iter().map(f64::from))
});

kernel!(TanhKernel, Tanh, |n, seed, pool| {
    let x = activation_input(pool, n);
    hash_f64s(activation::tanh(&x).into_iter().map(f64::from))
});

kernel!(ReluKernel, Relu, |n, seed, pool| {
    let x = activation_input(pool, n);
    hash_f64s(activation::relu(&x).into_iter().map(f64::from))
});

kernel!(SoftmaxKernel, Softmax, |n, seed, pool| {
    let x = activation_input(pool, n);
    hash_f64s(
        activation::softmax(&x, x.len().max(1))
            .into_iter()
            .map(f64::from),
    )
});

kernel!(DropoutKernel, Dropout, |n, seed, pool| {
    let mut x = pool.f32s(n.min(1024));
    x.fill(1.0);
    hash_f64s(
        regularization::dropout(&x, 0.5, seed)
            .into_iter()
            .map(f64::from),
    )
});

fn normalization_input(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f32> {
    let mut x = pool.f32s(n.min(1024));
    for (i, v) in x.iter_mut().enumerate() {
        *v = i as f32 * 0.3;
    }
    x
}

kernel!(
    BatchNormalizationKernel,
    BatchNormalization,
    |n, seed, pool| {
        let x = normalization_input(pool, n);
        hash_f64s(
            normalization::cosine_normalize(&x)
                .into_iter()
                .map(f64::from),
        )
    }
);

kernel!(
    CosineNormalizationKernel,
    CosineNormalization,
    |n, seed, pool| {
        let x = normalization_input(pool, n);
        hash_f64s(
            normalization::cosine_normalize(&x)
                .into_iter()
                .map(f64::from),
        )
    }
);

fn reduce_input(pool: &BufferPool, n: usize) -> crate::pool::Lease<'_, f32> {
    let mut x = pool.f32s(n.min(4096));
    for (i, v) in x.iter_mut().enumerate() {
        *v = i as f32;
    }
    x
}

kernel!(ReduceSumKernel, ReduceSum, |n, seed, pool| {
    hash_f64s([f64::from(reduce::reduce_sum(&reduce_input(pool, n)))])
});

kernel!(ReduceMaxKernel, ReduceMax, |n, seed, pool| {
    hash_f64s([f64::from(
        reduce::reduce_max(&reduce_input(pool, n)).unwrap_or(0.0),
    )])
});

/// Constructs the kernel object for one motif kind.
///
/// This match is the **single** kind→kernel dispatch point of the whole
/// workspace, and it is deliberately written without a wildcard arm:
/// adding a [`MotifKind`] variant without registering a kernel fails to
/// compile here, long before any runtime lookup could miss.
fn kernel_for(kind: MotifKind) -> &'static dyn MotifKernel {
    use MotifKind::*;
    match kind {
        DistanceCalculation => &DistanceCalculationKernel,
        MatrixMultiply => &MatrixMultiplyKernel,
        RandomSampling => &RandomSamplingKernel,
        IntervalSampling => &IntervalSamplingKernel,
        SetUnion => &SetUnionKernel,
        SetIntersection => &SetIntersectionKernel,
        SetDifference => &SetDifferenceKernel,
        GraphConstruct => &GraphConstructKernel,
        GraphTraversal => &GraphTraversalKernel,
        QuickSort => &QuickSortKernel,
        MergeSort => &MergeSortKernel,
        CountStatistics => &CountStatisticsKernel,
        ProbabilityStatistics => &ProbabilityStatisticsKernel,
        MinMax => &MinMaxKernel,
        Md5Hash => &Md5HashKernel,
        Encryption => &EncryptionKernel,
        Fft => &FftKernel,
        Ifft => &IfftKernel,
        Dct => &DctKernel,
        FullyConnected => &FullyConnectedKernel,
        ElementWiseMultiply => &ElementWiseMultiplyKernel,
        Sigmoid => &SigmoidKernel,
        Tanh => &TanhKernel,
        Softmax => &SoftmaxKernel,
        MaxPooling => &MaxPoolingKernel,
        AveragePooling => &AveragePoolingKernel,
        Convolution => &ConvolutionKernel,
        Dropout => &DropoutKernel,
        BatchNormalization => &BatchNormalizationKernel,
        CosineNormalization => &CosineNormalizationKernel,
        ReduceSum => &ReduceSumKernel,
        ReduceMax => &ReduceMaxKernel,
        Relu => &ReluKernel,
    }
}

/// The registry mapping every [`MotifKind`] to its [`MotifKernel`].
///
/// Lookup is an array index (`kind as usize` follows declaration order,
/// which [`MotifKind::ALL`] mirrors), so dispatch through the registry is
/// as cheap as the `match` blocks it replaces.
#[derive(Debug)]
pub struct MotifRegistry {
    kernels: Vec<&'static dyn MotifKernel>,
}

impl MotifRegistry {
    /// Builds a registry covering every motif kind.
    fn new() -> Self {
        let kernels: Vec<&'static dyn MotifKernel> =
            MotifKind::ALL.iter().map(|&k| kernel_for(k)).collect();
        for (i, kernel) in kernels.iter().enumerate() {
            debug_assert_eq!(
                kernel.kind() as usize,
                i,
                "MotifKind::ALL must follow declaration order"
            );
        }
        Self { kernels }
    }

    /// The process-wide shared registry.
    pub fn global() -> &'static MotifRegistry {
        static REGISTRY: OnceLock<MotifRegistry> = OnceLock::new();
        REGISTRY.get_or_init(MotifRegistry::new)
    }

    /// The kernel registered for `kind`.
    pub fn kernel(&self, kind: MotifKind) -> &'static dyn MotifKernel {
        self.kernels[kind as usize]
    }

    /// All registered kernels, in [`MotifKind::ALL`] order.
    pub fn kernels(&self) -> impl Iterator<Item = &'static dyn MotifKernel> + '_ {
        self.kernels.iter().copied()
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the registry is empty (it never is; `clippy` insists the
    /// method exists alongside [`MotifRegistry::len`]).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::descriptor::{DataClass, Distribution};

    /// The satellite exhaustiveness gate: every `MotifKind` variant must
    /// resolve to a kernel whose `kind()` round-trips.  (The `match` in
    /// [`kernel_for`] already makes a *missing* registration a compile
    /// error; this test additionally catches a mis-wired one.)
    #[test]
    fn registry_covers_every_motif_kind() {
        let registry = MotifRegistry::global();
        assert_eq!(registry.len(), MotifKind::ALL.len());
        assert!(!registry.is_empty());
        for kind in MotifKind::ALL {
            assert_eq!(
                registry.kernel(kind).kind(),
                kind,
                "registry entry for {kind} resolves to the wrong kernel"
            );
        }
    }

    #[test]
    fn every_kernel_executes_deterministically() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        for kernel in registry.kernels() {
            let a = kernel.execute(128, 3, &pool);
            let b = kernel.execute(128, 3, &pool);
            assert_eq!(a, b, "{} is not deterministic", kernel.kind());
        }
    }

    #[test]
    fn checksums_do_not_depend_on_pool_reuse() {
        let registry = MotifRegistry::global();
        for kind in MotifKind::ALL {
            let fresh = registry.kernel(kind).execute(200, 9, &BufferPool::new());
            let warm_pool = BufferPool::new();
            // Dirty the pool with other kernels first.
            for other in MotifKind::ALL {
                registry.kernel(other).execute(64, 1, &warm_pool);
            }
            let warm = registry.kernel(kind).execute(200, 9, &warm_pool);
            assert_eq!(fresh, warm, "{kind} checksum depends on pool state");
        }
    }

    #[test]
    fn kernel_cost_profile_matches_the_analytic_model() {
        let data = DataDescriptor::new(DataClass::Text, 1 << 30, 100, 0.0, Distribution::Uniform);
        let config = MotifConfig::big_data_default();
        let via_kernel = MotifRegistry::global()
            .kernel(MotifKind::QuickSort)
            .cost_profile(&data, &config);
        let via_model = cost::cost_profile(MotifKind::QuickSort, &data, &config);
        assert_eq!(
            via_kernel.total_instructions(),
            via_model.total_instructions()
        );
    }

    #[test]
    fn kernels_share_one_pool_across_kinds() {
        let registry = MotifRegistry::global();
        let pool = BufferPool::new();
        registry
            .kernel(MotifKind::CountStatistics)
            .execute(512, 1, &pool);
        registry.kernel(MotifKind::MinMax).execute(512, 2, &pool);
        assert!(
            pool.stats().reused >= 1,
            "second statistics kernel must recycle the first one's buffer"
        );
    }
}
