//! Set motif: union, intersection and difference over collections of
//! distinct values — the primitive operators of relational algebra the
//! paper cites.
//!
//! The kernels operate on sorted, deduplicated slices and produce sorted,
//! deduplicated results, the representation a shuffle-and-merge big-data
//! engine would use.

/// Sorts and deduplicates a collection into canonical set form.
pub fn normalize(values: &[u64]) -> Vec<u64> {
    let mut v = values.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Union of two canonical sets.
pub fn union(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(is_canonical(a) && is_canonical(b));
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersection of two canonical sets.
pub fn intersection(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(is_canonical(a) && is_canonical(b));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Difference `a \ b` of two canonical sets.
pub fn difference(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(is_canonical(a) && is_canonical(b));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out
}

/// Returns true if `values` is sorted and deduplicated.
pub fn is_canonical(values: &[u64]) -> bool {
    values.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn set_a() -> Vec<u64> {
        normalize(&[5, 1, 9, 3, 7, 5, 1])
    }

    fn set_b() -> Vec<u64> {
        normalize(&[2, 3, 5, 8])
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        assert_eq!(set_a(), vec![1, 3, 5, 7, 9]);
        assert!(is_canonical(&set_a()));
    }

    #[test]
    fn union_matches_btreeset() {
        let expected: Vec<u64> = set_a()
            .into_iter()
            .collect::<BTreeSet<_>>()
            .union(&set_b().into_iter().collect())
            .copied()
            .collect();
        assert_eq!(union(&set_a(), &set_b()), expected);
    }

    #[test]
    fn intersection_matches_btreeset() {
        let expected: Vec<u64> = set_a()
            .into_iter()
            .collect::<BTreeSet<_>>()
            .intersection(&set_b().into_iter().collect())
            .copied()
            .collect();
        assert_eq!(intersection(&set_a(), &set_b()), expected);
    }

    #[test]
    fn difference_matches_btreeset() {
        let expected: Vec<u64> = set_a()
            .into_iter()
            .collect::<BTreeSet<_>>()
            .difference(&set_b().into_iter().collect())
            .copied()
            .collect();
        assert_eq!(difference(&set_a(), &set_b()), expected);
    }

    #[test]
    fn operations_with_empty_sets() {
        let a = set_a();
        assert_eq!(union(&a, &[]), a);
        assert_eq!(intersection(&a, &[]), Vec::<u64>::new());
        assert_eq!(difference(&a, &[]), a);
        assert_eq!(difference(&[], &a), Vec::<u64>::new());
    }

    #[test]
    fn algebraic_identities_hold() {
        let a = set_a();
        let b = set_b();
        // |A ∪ B| = |A| + |B| - |A ∩ B|
        assert_eq!(
            union(&a, &b).len(),
            a.len() + b.len() - intersection(&a, &b).len()
        );
        // (A \ B) ∪ (A ∩ B) = A
        assert_eq!(union(&difference(&a, &b), &intersection(&a, &b)), a);
    }
}
