//! Statistics motif: count / average, probability statistics and min / max.
//!
//! These kernels implement the aggregation steps of the K-means and
//! PageRank proxies (cluster counting, average computation, out/in-degree
//! counting, min/max calculation) and the word-frequency style probability
//! statistics of Fig. 2.

use std::collections::HashMap;

/// Count and mean of a stream of values (one pass).
///
/// Returns `(0, 0.0)` for an empty slice.
pub fn count_average(values: &[f64]) -> (usize, f64) {
    if values.is_empty() {
        return (0, 0.0);
    }
    let sum: f64 = values.iter().sum();
    (values.len(), sum / values.len() as f64)
}

/// Per-key counts of a stream of keys (the "cluster count" of Table III).
pub fn group_counts(keys: &[u32]) -> HashMap<u32, usize> {
    let mut counts = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}

/// Per-key empirical probabilities (counts normalised by the total).
pub fn probabilities(keys: &[u32]) -> HashMap<u32, f64> {
    let counts = group_counts(keys);
    let total: usize = counts.values().sum();
    counts
        .into_iter()
        .map(|(k, c)| (k, c as f64 / total as f64))
        .collect()
}

/// Minimum and maximum of a stream of values; `None` for an empty slice.
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    Some((min, max))
}

/// Per-cluster mean vectors: given assignments of points to clusters, sums
/// each cluster's points and divides by its size — the K-means update step.
///
/// Clusters with no members keep their previous centroid.
///
/// # Panics
///
/// Panics if `assignments.len() != points.len()`.
pub fn cluster_means(
    points: &[Vec<f64>],
    assignments: &[usize],
    previous: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    assert_eq!(points.len(), assignments.len(), "assignment count mismatch");
    let k = previous.len();
    let dim = previous.first().map_or(0, Vec::len);
    let mut sums = vec![vec![0.0; dim]; k];
    let mut counts = vec![0usize; k];
    for (point, &a) in points.iter().zip(assignments) {
        counts[a] += 1;
        for (s, v) in sums[a].iter_mut().zip(point) {
            *s += v;
        }
    }
    sums.into_iter()
        .enumerate()
        .map(|(i, sum)| {
            if counts[i] == 0 {
                previous[i].clone()
            } else {
                sum.into_iter().map(|s| s / counts[i] as f64).collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_average_of_values() {
        let (n, avg) = count_average(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(n, 4);
        assert_eq!(avg, 2.5);
        assert_eq!(count_average(&[]), (0, 0.0));
    }

    #[test]
    fn group_counts_counts_each_key() {
        let counts = group_counts(&[1, 2, 2, 3, 3, 3]);
        assert_eq!(counts[&1], 1);
        assert_eq!(counts[&2], 2);
        assert_eq!(counts[&3], 3);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let p = probabilities(&[5, 5, 7, 9, 9, 9, 9, 7]);
        let total: f64 = p.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((p[&9] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_of_values() {
        assert_eq!(min_max(&[3.0, -1.0, 7.5, 0.0]), Some((-1.0, 7.5)));
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn cluster_means_compute_centroids() {
        let points = vec![vec![0.0, 0.0], vec![2.0, 2.0], vec![10.0, 10.0]];
        let assignments = vec![0, 0, 1];
        let previous = vec![vec![9.0, 9.0], vec![9.0, 9.0], vec![5.0, 5.0]];
        let means = cluster_means(&points, &assignments, &previous);
        assert_eq!(means[0], vec![1.0, 1.0]);
        assert_eq!(means[1], vec![10.0, 10.0]);
        assert_eq!(means[2], vec![5.0, 5.0], "empty cluster keeps its centroid");
    }

    #[test]
    #[should_panic(expected = "assignment count")]
    fn cluster_means_rejects_mismatched_assignments() {
        let _ = cluster_means(&[vec![1.0]], &[0, 1], &[vec![0.0]]);
    }
}
