//! Logic motif: bit-manipulation kernels — MD5 hashing and stream
//! encryption.
//!
//! MD5 is implemented in full (RFC 1321) and checked against the reference
//! test vectors; the encryption kernel is a simple XOR keystream cipher,
//! which exercises the same byte-granular bit manipulation pattern as the
//! paper's "encryption" implementation without pulling in a crypto
//! dependency.

/// Computes the MD5 digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    // Per-round shift amounts.
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5,
        9, 14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10,
        15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    // Binary integer parts of sines (RFC 1321 table T).
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ];

    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;

    // Padding: append 0x80, zeros, then the 64-bit little-endian bit length.
    let mut message = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in message.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let rotated = a
                .wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]);
            b = b.wrapping_add(rotated);
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut digest = [0u8; 16];
    digest[0..4].copy_from_slice(&a0.to_le_bytes());
    digest[4..8].copy_from_slice(&b0.to_le_bytes());
    digest[8..12].copy_from_slice(&c0.to_le_bytes());
    digest[12..16].copy_from_slice(&d0.to_le_bytes());
    digest
}

/// Formats a digest as the conventional lower-case hex string.
pub fn digest_to_hex(digest: &[u8; 16]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// XOR keystream "encryption": a xorshift keystream derived from `key` is
/// XORed over the data.  Applying it twice with the same key restores the
/// plaintext.
pub fn xor_encrypt(data: &[u8], key: u64) -> Vec<u8> {
    let mut state = key | 1;
    data.iter()
        .map(|&b| {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            b ^ (state as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_reference_vectors() {
        // RFC 1321 test suite.
        assert_eq!(digest_to_hex(&md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(
            digest_to_hex(&md5(b"a")),
            "0cc175b9c0f1b6a831c399e269772661"
        );
        assert_eq!(
            digest_to_hex(&md5(b"abc")),
            "900150983cd24fb0d6963f7d28e17f72"
        );
        assert_eq!(
            digest_to_hex(&md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            digest_to_hex(&md5(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
    }

    #[test]
    fn md5_handles_block_boundaries() {
        // 55, 56 and 64 byte messages cross the padding boundaries.
        for len in [55usize, 56, 63, 64, 65, 128] {
            let data = vec![b'x'; len];
            let d = md5(&data);
            assert_eq!(d.len(), 16);
            // Hash must differ from the empty-input hash.
            assert_ne!(digest_to_hex(&d), "d41d8cd98f00b204e9800998ecf8427e");
        }
    }

    #[test]
    fn xor_encrypt_round_trips() {
        let plain = b"the quick brown fox jumps over the lazy dog".to_vec();
        let cipher = xor_encrypt(&plain, 0xDEADBEEF);
        assert_ne!(cipher, plain);
        assert_eq!(xor_encrypt(&cipher, 0xDEADBEEF), plain);
    }

    #[test]
    fn xor_encrypt_different_keys_differ() {
        let plain = vec![0u8; 64];
        assert_ne!(xor_encrypt(&plain, 1), xor_encrypt(&plain, 2));
    }
}
