//! Graph motif: graph construction and traversal.
//!
//! Construction turns an edge list into the CSR adjacency structure from
//! `dmpb-datagen`; traversal is breadth-first search plus the degree
//! statistics PageRank's proxy needs (out-degree and in-degree counting is
//! listed in Table III as part of Proxy PageRank).

use dmpb_datagen::graph::CsrGraph;

/// Builds a CSR graph from an edge list (the "graph construct" motif).
///
/// # Panics
///
/// Panics if an endpoint is out of range.
pub fn construct(num_vertices: usize, edges: &[(u32, u32)]) -> CsrGraph {
    CsrGraph::from_edges(num_vertices, edges)
}

/// Breadth-first traversal from `start` (the "graph traversal" motif),
/// returning the number of reachable vertices.
pub fn traversal_reach(graph: &CsrGraph, start: usize) -> usize {
    graph.bfs(start).len()
}

/// Out-degree and in-degree of every vertex, the per-node statistics the
/// PageRank decomposition uses.
pub fn degree_counts(graph: &CsrGraph) -> (Vec<usize>, Vec<usize>) {
    let out: Vec<usize> = (0..graph.num_vertices())
        .map(|v| graph.out_degree(v))
        .collect();
    let in_deg = graph.in_degrees();
    (out, in_deg)
}

/// One synchronous PageRank iteration over the graph (damping 0.85),
/// used by the PageRank workload model's reference computation.
///
/// # Panics
///
/// Panics if `ranks.len()` does not match the vertex count.
pub fn pagerank_iteration(graph: &CsrGraph, ranks: &[f64], damping: f64) -> Vec<f64> {
    assert_eq!(
        ranks.len(),
        graph.num_vertices(),
        "rank vector size mismatch"
    );
    let n = graph.num_vertices();
    let mut next = vec![(1.0 - damping) / n as f64; n];
    let mut dangling = 0.0;
    for (v, &rank) in ranks.iter().enumerate() {
        let degree = graph.out_degree(v);
        if degree == 0 {
            dangling += rank;
            continue;
        }
        let share = damping * rank / degree as f64;
        for &t in graph.neighbors(v) {
            next[t as usize] += share;
        }
    }
    // Dangling mass is spread uniformly.
    let dangling_share = damping * dangling / n as f64;
    for r in &mut next {
        *r += dangling_share;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::graph::{GraphGenerator, GraphSpec};

    fn triangle_with_tail() -> CsrGraph {
        construct(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn construct_and_traverse() {
        let g = triangle_with_tail();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(traversal_reach(&g, 0), 4);
        assert_eq!(traversal_reach(&g, 3), 1, "vertex 3 has no out-edges");
    }

    #[test]
    fn degree_counts_match_structure() {
        let (out, in_deg) = degree_counts(&triangle_with_tail());
        assert_eq!(out, vec![1, 1, 2, 0]);
        assert_eq!(in_deg, vec![1, 1, 1, 1]);
    }

    #[test]
    fn pagerank_conserves_probability_mass() {
        let g = GraphGenerator::new(GraphSpec::power_law(500, 4, 11)).generate();
        let mut ranks = vec![1.0 / 500.0; 500];
        for _ in 0..10 {
            ranks = pagerank_iteration(&g, &ranks, 0.85);
            let sum: f64 = ranks.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "mass {sum}");
        }
    }

    #[test]
    fn pagerank_favours_high_in_degree_vertices() {
        // Star graph: every spoke points at vertex 0.
        let edges: Vec<(u32, u32)> = (1..50u32).map(|v| (v, 0)).collect();
        let g = construct(50, &edges);
        let mut ranks = vec![1.0 / 50.0; 50];
        for _ in 0..20 {
            ranks = pagerank_iteration(&g, &ranks, 0.85);
        }
        let max = ranks.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(ranks[0], max);
        assert!(ranks[0] > 10.0 * ranks[1]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn pagerank_rejects_wrong_rank_vector() {
        let g = triangle_with_tail();
        let _ = pagerank_iteration(&g, &[0.5, 0.5], 0.85);
    }
}
