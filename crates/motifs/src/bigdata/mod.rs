//! Big-data motif implementations (left column of Fig. 2).
//!
//! These are the light-weight, multi-threaded kernels the proxy benchmarks
//! are assembled from: sorting, sampling, set algebra, graph construction
//! and traversal, hashing and stream encryption, FFT/DCT transforms,
//! distance and matrix computation, and basic statistics.  Each module
//! exposes plain functions that really compute, plus tests; the analytic
//! cost models that map these kernels onto the performance model live in
//! [`crate::cost`].

pub mod graph_ops;
pub mod logic;
pub mod matrix_ops;
pub mod sampling;
pub mod set_ops;
pub mod sort;
pub mod statistics;
pub mod transform;
