//! Sampling motif: random sampling and interval (systematic) sampling.
//!
//! TeraSort uses sampling to compute its partition boundaries; the motif
//! implementations select a subset of records either uniformly at random or
//! at a fixed interval.

use rand::Rng;

use dmpb_datagen::rng::seeded_rng;

/// Selects each index in `0..count` independently with probability
/// `fraction`, deterministically for a given seed.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn random_sample_indices(count: usize, fraction: f64, seed: u64) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be within [0, 1]"
    );
    let mut rng = seeded_rng(seed);
    (0..count).filter(|_| rng.gen::<f64>() < fraction).collect()
}

/// Selects every `interval`-th index starting at `offset`.
///
/// # Panics
///
/// Panics if `interval` is zero.
pub fn interval_sample_indices(count: usize, interval: usize, offset: usize) -> Vec<usize> {
    assert!(interval > 0, "interval must be non-zero");
    (offset..count).step_by(interval).collect()
}

/// Random sampling of items (by value).
pub fn random_sample<T: Clone>(items: &[T], fraction: f64, seed: u64) -> Vec<T> {
    random_sample_indices(items.len(), fraction, seed)
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

/// Interval sampling of items (by value).
pub fn interval_sample<T: Clone>(items: &[T], interval: usize) -> Vec<T> {
    interval_sample_indices(items.len(), interval, 0)
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

/// Chooses `num_partitions - 1` splitter values from a sorted sample, the
/// way TeraSort derives its reducer partition boundaries.
///
/// Returns an empty vector when fewer than two partitions are requested.
pub fn choose_splitters<T: Clone + Ord>(sorted_sample: &[T], num_partitions: usize) -> Vec<T> {
    if num_partitions < 2 || sorted_sample.is_empty() {
        return Vec::new();
    }
    (1..num_partitions)
        .map(|i| {
            let idx = i * sorted_sample.len() / num_partitions;
            sorted_sample[idx.min(sorted_sample.len() - 1)].clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sample_hits_requested_fraction() {
        let idx = random_sample_indices(100_000, 0.1, 42);
        let ratio = idx.len() as f64 / 100_000.0;
        assert!((ratio - 0.1).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn random_sample_is_deterministic_and_sorted() {
        let a = random_sample_indices(10_000, 0.05, 7);
        let b = random_sample_indices(10_000, 0.05, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn extreme_fractions() {
        assert!(random_sample_indices(100, 0.0, 1).is_empty());
        assert_eq!(random_sample_indices(100, 1.0, 1).len(), 100);
    }

    #[test]
    fn interval_sampling_takes_every_nth() {
        assert_eq!(interval_sample_indices(10, 3, 0), vec![0, 3, 6, 9]);
        assert_eq!(interval_sample_indices(10, 3, 1), vec![1, 4, 7]);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_is_rejected() {
        let _ = interval_sample_indices(10, 0, 0);
    }

    #[test]
    fn sampling_by_value() {
        let items: Vec<u32> = (0..100).collect();
        let every_tenth = interval_sample(&items, 10);
        assert_eq!(every_tenth, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        let random = random_sample(&items, 0.2, 3);
        assert!(random.iter().all(|v| items.contains(v)));
    }

    #[test]
    fn splitters_divide_the_key_space() {
        let sample: Vec<u32> = (0..1000).collect();
        let splitters = choose_splitters(&sample, 4);
        assert_eq!(splitters, vec![250, 500, 750]);
        assert!(choose_splitters(&sample, 1).is_empty());
        assert!(choose_splitters::<u32>(&[], 4).is_empty());
    }
}
