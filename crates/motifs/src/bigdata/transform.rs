//! Transform motif: FFT, inverse FFT and DCT.
//!
//! The FFT is an iterative radix-2 Cooley–Tukey implementation over
//! interleaved complex values; the DCT-II is computed directly (the motif
//! exercises the same multiply-accumulate pattern whether or not it is
//! FFT-accelerated).

use std::f64::consts::PI;

/// A complex number as a `(re, im)` pair.
pub type Complex = (f64, f64);

fn complex_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// In-place radix-2 FFT.  `inverse` selects the inverse transform (with
/// 1/N normalisation).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "FFT length must be a power of two");

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * PI / len as f64;
        let wlen = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut w = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = complex_mul(data[start + k + len / 2], w);
                data[start + k] = (u.0 + v.0, u.1 + v.1);
                data[start + k + len / 2] = (u.0 - v.0, u.1 - v.1);
                w = complex_mul(w, wlen);
            }
        }
        len <<= 1;
    }

    if inverse {
        let scale = 1.0 / n as f64;
        for v in data.iter_mut() {
            v.0 *= scale;
            v.1 *= scale;
        }
    }
}

/// Forward FFT of a real signal, returning complex spectrum values.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
    fft_in_place(&mut data, false);
    data
}

/// Inverse FFT returning only the real parts.
pub fn ifft_real(spectrum: &[Complex]) -> Vec<f64> {
    let mut data = spectrum.to_vec();
    fft_in_place(&mut data, true);
    data.into_iter().map(|(re, _)| re).collect()
}

/// DCT-II of a real signal (unnormalised).
pub fn dct2(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    (0..n)
        .map(|k| {
            signal
                .iter()
                .enumerate()
                .map(|(i, &x)| x * ((PI / n as f64) * (i as f64 + 0.5) * k as f64).cos())
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut signal = vec![0.0; 8];
        signal[0] = 1.0;
        let spectrum = fft_real(&signal);
        for (re, im) in spectrum {
            assert!(approx_eq(re, 1.0) && approx_eq(im, 0.0));
        }
    }

    #[test]
    fn fft_of_constant_concentrates_in_dc() {
        let spectrum = fft_real(&[1.0; 16]);
        assert!(approx_eq(spectrum[0].0, 16.0));
        for &(re, im) in &spectrum[1..] {
            assert!(approx_eq(re, 0.0) && approx_eq(im, 0.0));
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let signal: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.37).sin() + 0.2 * i as f64)
            .collect();
        let spectrum = fft_real(&signal);
        let recovered = ifft_real(&spectrum);
        for (a, b) in signal.iter().zip(&recovered) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fft_detects_single_tone() {
        let n = 64;
        let freq = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * freq as f64 * i as f64 / n as f64).cos())
            .collect();
        let spectrum = fft_real(&signal);
        let magnitudes: Vec<f64> = spectrum
            .iter()
            .map(|(re, im)| (re * re + im * im).sqrt())
            .collect();
        let peak = magnitudes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak == freq || peak == n - freq, "peak at {peak}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 12];
        fft_in_place(&mut data, false);
    }

    #[test]
    fn dct_of_constant_signal() {
        let out = dct2(&[1.0; 8]);
        assert!(approx_eq(out[0], 8.0));
        for &v in &out[1..] {
            assert!(approx_eq(v, 0.0));
        }
    }

    #[test]
    fn dct_is_linear() {
        let a: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let lhs = dct2(&sum);
        let rhs: Vec<f64> = dct2(&a).iter().zip(dct2(&b)).map(|(x, y)| x + y).collect();
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
