//! Matrix motif: distance computation and matrix multiplication.
//!
//! These are the building blocks of the K-means and PageRank proxies
//! (Table III): vector euclidean / cosine distances, dense matrix multiply
//! and sparse matrix–vector multiply (delegated to `dmpb-datagen`'s CSR
//! matrix).

use dmpb_datagen::matrix::DenseMatrix;
use dmpb_datagen::vectors::SparseVector;

/// Squared euclidean distance between two dense vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn euclidean_distance_squared(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two dense vectors.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    euclidean_distance_squared(a, b).sqrt()
}

/// Cosine distance (`1 - cosine similarity`) between two dense vectors.
/// Returns 1.0 when either vector is all-zero.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na * nb)
}

/// Index of the nearest centroid to a sparse vector under squared
/// euclidean distance — the inner loop of K-means assignment.
///
/// # Panics
///
/// Panics if `centroids` is empty.
pub fn nearest_centroid(point: &SparseVector, centroids: &[Vec<f64>]) -> usize {
    assert!(!centroids.is_empty(), "need at least one centroid");
    let mut best = 0;
    let mut best_distance = f64::INFINITY;
    for (i, centroid) in centroids.iter().enumerate() {
        let d = point.squared_distance_to_dense(centroid);
        if d < best_distance {
            best_distance = d;
            best = i;
        }
    }
    best
}

/// Dense matrix multiplication (wrapper over the datagen matrix type so the
/// motif catalogue exposes one entry point).
///
/// # Panics
///
/// Panics if the inner dimensions do not match.
pub fn matrix_multiply(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    a.multiply(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::matrix::MatrixSpec;

    #[test]
    fn euclidean_distance_matches_hand_computation() {
        assert_eq!(euclidean_distance_squared(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn cosine_distance_of_parallel_vectors_is_zero() {
        let d = cosine_distance(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn cosine_distance_of_orthogonal_vectors_is_one() {
        let d = cosine_distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_distance_of_zero_vector_is_defined() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn nearest_centroid_picks_the_closest() {
        let point = SparseVector::new(3, vec![0, 2], vec![1.0, 1.0]);
        let centroids = vec![
            vec![10.0, 10.0, 10.0],
            vec![1.0, 0.0, 1.0],
            vec![-5.0, 0.0, 0.0],
        ];
        assert_eq!(nearest_centroid(&point, &centroids), 1);
    }

    #[test]
    fn matrix_multiply_delegates_correctly() {
        let a = MatrixSpec::dense(8, 8, 1).generate_dense();
        let identity = {
            let mut m = DenseMatrix::zeros(8, 8);
            for i in 0..8 {
                m.set(i, i, 1.0);
            }
            m
        };
        let product = matrix_multiply(&a, &identity);
        for r in 0..8 {
            for c in 0..8 {
                assert!((product.get(r, c) - a.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn distance_rejects_mismatched_vectors() {
        let _ = euclidean_distance(&[1.0], &[1.0, 2.0]);
    }
}
