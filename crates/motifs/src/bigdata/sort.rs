//! Sort motif: quick sort and merge sort (the TeraSort building blocks).
//!
//! Both kernels sort gensort-style 10-byte keys.  The parallel driver
//! splits the key array into chunks, sorts each chunk on its own task and
//! merges the runs — the same map/sort/merge shape a Hadoop TeraSort map
//! and reduce task performs.

use crate::threading::map_chunks;

/// A gensort sort key.
pub type Key = [u8; 10];

/// In-place quick sort (Hoare partitioning, median-of-three pivot).
pub fn quick_sort(keys: &mut [Key]) {
    if keys.len() <= 1 {
        return;
    }
    if keys.len() <= 24 {
        insertion_sort(keys);
        return;
    }
    let pivot_index = median_of_three(keys);
    keys.swap(pivot_index, keys.len() - 1);
    let pivot = keys[keys.len() - 1];
    let mut store = 0usize;
    for i in 0..keys.len() - 1 {
        if keys[i] <= pivot {
            keys.swap(i, store);
            store += 1;
        }
    }
    keys.swap(store, keys.len() - 1);
    let (left, right) = keys.split_at_mut(store);
    quick_sort(left);
    quick_sort(&mut right[1..]);
}

fn insertion_sort(keys: &mut [Key]) {
    for i in 1..keys.len() {
        let mut j = i;
        while j > 0 && keys[j - 1] > keys[j] {
            keys.swap(j - 1, j);
            j -= 1;
        }
    }
}

fn median_of_three(keys: &[Key]) -> usize {
    let a = 0;
    let b = keys.len() / 2;
    let c = keys.len() - 1;
    let (ka, kb, kc) = (keys[a], keys[b], keys[c]);
    if (ka <= kb && kb <= kc) || (kc <= kb && kb <= ka) {
        b
    } else if (kb <= ka && ka <= kc) || (kc <= ka && ka <= kb) {
        a
    } else {
        c
    }
}

/// Stable bottom-up merge sort returning a new sorted vector.
pub fn merge_sort(keys: &[Key]) -> Vec<Key> {
    let mut current: Vec<Key> = keys.to_vec();
    if current.len() <= 1 {
        return current;
    }
    let mut buffer = vec![[0u8; 10]; current.len()];
    let mut width = 1usize;
    while width < current.len() {
        for start in (0..current.len()).step_by(width * 2) {
            let mid = (start + width).min(current.len());
            let end = (start + width * 2).min(current.len());
            merge_runs(
                &current[start..mid],
                &current[mid..end],
                &mut buffer[start..end],
            );
        }
        std::mem::swap(&mut current, &mut buffer);
        width *= 2;
    }
    current
}

/// Merges two sorted runs into `out`.
///
/// # Panics
///
/// Panics if `out.len() != left.len() + right.len()`.
pub fn merge_runs(left: &[Key], right: &[Key], out: &mut [Key]) {
    assert_eq!(
        out.len(),
        left.len() + right.len(),
        "output buffer size mismatch"
    );
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            out[k] = left[i];
            i += 1;
        } else {
            out[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    out[k..k + left.len() - i].copy_from_slice(&left[i..]);
    k += left.len() - i;
    out[k..k + right.len() - j].copy_from_slice(&right[j..]);
}

/// Parallel sort: chunks are quick-sorted on `num_tasks` tasks and the
/// sorted runs are merged, the shape of a TeraSort map+reduce pipeline.
pub fn parallel_sort(keys: &[Key], num_tasks: usize) -> Vec<Key> {
    map_chunks(
        keys,
        num_tasks,
        |_, chunk| {
            let mut run = chunk.to_vec();
            quick_sort(&mut run);
            run
        },
        |a, b| {
            let mut out = vec![[0u8; 10]; a.len() + b.len()];
            merge_runs(&a, &b, &mut out);
            out
        },
    )
    .unwrap_or_default()
}

/// Returns true if `keys` is sorted ascending.
pub fn is_sorted(keys: &[Key]) -> bool {
    keys.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::text::TextGenerator;

    fn keys(n: usize, seed: u64) -> Vec<Key> {
        TextGenerator::new(seed).generate(n).keys()
    }

    #[test]
    fn quick_sort_sorts() {
        let mut k = keys(2000, 1);
        quick_sort(&mut k);
        assert!(is_sorted(&k));
    }

    #[test]
    fn quick_sort_matches_std_sort() {
        let mut a = keys(1500, 2);
        let mut b = a.clone();
        quick_sort(&mut a);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_sort_sorts_and_matches_std() {
        let input = keys(1777, 3);
        let sorted = merge_sort(&input);
        let mut expected = input;
        expected.sort();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn merge_runs_interleaves() {
        let left = [[1u8; 10], [3u8; 10]];
        let right = [[2u8; 10], [4u8; 10]];
        let mut out = [[0u8; 10]; 4];
        merge_runs(&left, &right, &mut out);
        assert_eq!(out, [[1u8; 10], [2u8; 10], [3u8; 10], [4u8; 10]]);
    }

    #[test]
    fn parallel_sort_matches_sequential() {
        let input = keys(4096, 5);
        let mut expected = input.clone();
        expected.sort_unstable();
        assert_eq!(parallel_sort(&input, 8), expected);
    }

    #[test]
    fn parallel_sort_of_empty_input() {
        assert!(parallel_sort(&[], 4).is_empty());
    }

    #[test]
    fn small_and_duplicate_inputs() {
        let mut one = vec![[7u8; 10]];
        quick_sort(&mut one);
        assert_eq!(one, vec![[7u8; 10]]);
        let mut dups = vec![[3u8; 10]; 100];
        quick_sort(&mut dups);
        assert!(is_sorted(&dups));
        assert_eq!(merge_sort(&dups), dups);
    }

    #[test]
    fn already_sorted_input_is_preserved() {
        let mut k = keys(500, 7);
        k.sort_unstable();
        let copy = k.clone();
        quick_sort(&mut k);
        assert_eq!(k, copy);
    }
}
