//! Unified memory-management module for the big-data motifs.
//!
//! The paper notes that big-data systems like Hadoop run on the JVM, whose
//! automatic memory management (garbage collection) is a visible part of
//! workload behaviour, and that the big-data motif implementations
//! therefore include "a unified memory management module, whose mechanism
//! is similar with GC".  [`ManagedArena`] reproduces that: allocations are
//! tracked against a budget, and when the live size crosses a threshold a
//! *collection* happens — dead buffers are dropped and a pause is recorded.
//! The collection statistics feed the workload models' JVM overhead
//! profile, and the arena is used by the big-data kernels for their
//! intermediate buffers.

use std::sync::{Arc, Mutex};

/// Statistics of one arena's allocation and collection activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total bytes ever allocated.
    pub allocated_bytes: u64,
    /// Number of allocations served.
    pub allocations: u64,
    /// Number of collections triggered.
    pub collections: u64,
    /// Total bytes reclaimed by collections.
    pub reclaimed_bytes: u64,
}

/// A GC-like managed allocation arena.
///
/// Buffers are handed out as plain `Vec<u8>` handles tagged with an id;
/// dropping the handle marks the buffer dead, and the next allocation that
/// pushes the live size over the threshold triggers a collection that
/// reclaims dead space.  The arena is `Clone` + thread-safe so chunked
/// worker tasks can share it, mirroring a shared JVM heap.
#[derive(Debug, Clone)]
pub struct ManagedArena {
    inner: Arc<Mutex<ArenaInner>>,
}

#[derive(Debug)]
struct ArenaInner {
    threshold_bytes: u64,
    live_bytes: u64,
    dead_bytes: u64,
    stats: ArenaStats,
}

/// A buffer allocated from a [`ManagedArena`].  Dropping it marks the bytes
/// as dead (reclaimable by the next collection).
#[derive(Debug)]
pub struct ManagedBuffer {
    data: Vec<u8>,
    arena: ManagedArena,
}

impl ManagedBuffer {
    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the buffer contents.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Drop for ManagedBuffer {
    fn drop(&mut self) {
        self.arena.mark_dead(self.data.len() as u64);
    }
}

impl ManagedArena {
    /// Creates an arena that collects when live + dead bytes exceed
    /// `threshold_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero.
    pub fn new(threshold_bytes: u64) -> Self {
        assert!(threshold_bytes > 0, "collection threshold must be non-zero");
        Self {
            inner: Arc::new(Mutex::new(ArenaInner {
                threshold_bytes,
                live_bytes: 0,
                dead_bytes: 0,
                stats: ArenaStats::default(),
            })),
        }
    }

    /// Allocates a zeroed buffer of `len` bytes, possibly triggering a
    /// collection first.
    pub fn allocate(&self, len: usize) -> ManagedBuffer {
        {
            let mut inner = self.inner.lock().expect("arena mutex poisoned");
            inner.stats.allocations += 1;
            inner.stats.allocated_bytes += len as u64;
            if inner.live_bytes + inner.dead_bytes + len as u64 > inner.threshold_bytes {
                // "Collection": reclaim everything dead, count the pause.
                inner.stats.collections += 1;
                inner.stats.reclaimed_bytes += inner.dead_bytes;
                inner.dead_bytes = 0;
            }
            inner.live_bytes += len as u64;
        }
        ManagedBuffer {
            data: vec![0u8; len],
            arena: self.clone(),
        }
    }

    fn mark_dead(&self, len: u64) {
        let mut inner = self.inner.lock().expect("arena mutex poisoned");
        inner.live_bytes = inner.live_bytes.saturating_sub(len);
        inner.dead_bytes += len;
    }

    /// Live (reachable) bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().expect("arena mutex poisoned").live_bytes
    }

    /// Snapshot of the allocation / collection statistics.
    pub fn stats(&self) -> ArenaStats {
        self.inner.lock().expect("arena mutex poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_tracks_live_bytes() {
        let arena = ManagedArena::new(1 << 20);
        let a = arena.allocate(1000);
        let b = arena.allocate(500);
        assert_eq!(arena.live_bytes(), 1500);
        drop(a);
        assert_eq!(arena.live_bytes(), 500);
        drop(b);
        assert_eq!(arena.live_bytes(), 0);
    }

    #[test]
    fn collection_triggers_when_threshold_exceeded() {
        let arena = ManagedArena::new(10_000);
        for _ in 0..100 {
            let buf = arena.allocate(1_000);
            drop(buf);
        }
        let stats = arena.stats();
        assert!(stats.collections > 0, "no collections happened");
        assert!(stats.reclaimed_bytes > 0);
        assert_eq!(stats.allocations, 100);
        assert_eq!(stats.allocated_bytes, 100_000);
    }

    #[test]
    fn no_collection_under_threshold() {
        let arena = ManagedArena::new(1 << 30);
        let _keep: Vec<ManagedBuffer> = (0..10).map(|_| arena.allocate(100)).collect();
        assert_eq!(arena.stats().collections, 0);
    }

    #[test]
    fn buffers_are_usable_memory() {
        let arena = ManagedArena::new(1 << 20);
        let mut buf = arena.allocate(64);
        buf.as_mut_slice()[0] = 42;
        assert_eq!(buf.as_slice()[0], 42);
        assert_eq!(buf.len(), 64);
        assert!(!buf.is_empty());
    }

    #[test]
    fn arena_is_shareable_across_threads() {
        let arena = ManagedArena::new(1 << 16);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let arena = arena.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let b = arena.allocate(512);
                        drop(b);
                    }
                });
            }
        });
        assert_eq!(arena.stats().allocations, 400);
        assert_eq!(arena.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_threshold_is_rejected() {
        let _ = ManagedArena::new(0);
    }
}
