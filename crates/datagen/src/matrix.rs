//! Dense and sparse matrix generation (matrix-motif and PageRank input).
//!
//! PageRank is modelled in the paper as matrix construction plus sparse
//! matrix–vector multiplication; the matrix motif also covers dense
//! matrix–matrix multiplication and distance computations.  This module
//! provides row-major dense matrices and CSR sparse matrices plus seeded
//! generators for both.

use rand::Rng;

use crate::descriptor::{DataClass, DataDescriptor, Distribution};
use crate::distributions::SparsityMask;
use crate::rng::{derive_seed, seeded_rng};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable access to row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Naive matrix multiplication `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn multiply(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions do not match");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// A sparse matrix in compressed sparse row form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(col, value)` entries.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range or the entry list does not
    /// have exactly `rows` rows.
    pub fn from_rows(rows: usize, cols: usize, entries: &[Vec<(u32, f64)>]) -> Self {
        assert_eq!(
            entries.len(),
            rows,
            "entry list must have one entry per row"
        );
        let mut offsets = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        offsets.push(0);
        for row in entries {
            let mut sorted = row.clone();
            sorted.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &sorted {
                assert!((c as usize) < cols, "column {c} out of range");
                indices.push(c);
                values.push(v);
            }
            offsets.push(indices.len());
        }
        Self {
            rows,
            cols,
            offsets,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Measured sparsity (fraction of zero entries).
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / total as f64
        }
    }

    /// The `(col, value)` entries of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[r];
        let hi = self.offsets[r + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse matrix–dense vector product.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the column count.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length does not match columns");
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
        y
    }
}

/// Specification for a generated matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixSpec {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Fraction of zero entries.
    pub sparsity: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl MatrixSpec {
    /// A dense matrix spec.
    pub fn dense(rows: usize, cols: usize, seed: u64) -> Self {
        Self {
            rows,
            cols,
            sparsity: 0.0,
            seed,
        }
    }

    /// A sparse matrix spec.
    pub fn sparse(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Self {
        Self {
            rows,
            cols,
            sparsity,
            seed,
        }
    }

    /// Descriptor for the generated matrix.
    pub fn descriptor(&self) -> DataDescriptor {
        DataDescriptor::new(
            DataClass::Matrix,
            (self.rows * self.cols * std::mem::size_of::<f64>()) as u64,
            std::mem::size_of::<f64>() as u64,
            self.sparsity,
            Distribution::Uniform,
        )
    }

    /// Generates a dense matrix (zero entries where the sparsity mask
    /// strikes).
    pub fn generate_dense(&self) -> DenseMatrix {
        self.generate_dense_rows(0, self.rows)
    }

    /// Generates rows `[start, end)` of the logical matrix as an
    /// `(end - start) x cols` dense matrix (row `r` of the output is row
    /// `start + r` of the logical matrix).
    ///
    /// Every row's RNG stream is derived from its global index alone, so
    /// any chunking of `[0, rows)` stacks to exactly the matrix of
    /// [`generate_dense`](Self::generate_dense).
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn generate_dense_rows(&self, start: usize, end: usize) -> DenseMatrix {
        assert!(start <= end, "invalid row range {start}..{end}");
        let mask = SparsityMask::new(self.sparsity);
        let mut data = Vec::with_capacity((end - start) * self.cols);
        for r in start..end {
            let mut rng = seeded_rng(derive_seed(self.seed, r as u64));
            for _ in 0..self.cols {
                if mask.keep(&mut rng) {
                    data.push(rng.gen_range(-1.0..1.0));
                } else {
                    data.push(0.0);
                }
            }
        }
        DenseMatrix::from_vec(end - start, self.cols, data)
    }

    /// Generates a CSR sparse matrix.
    pub fn generate_sparse(&self) -> CsrMatrix {
        let mask = SparsityMask::new(self.sparsity);
        let mut rows = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut rng = seeded_rng(derive_seed(self.seed, r as u64));
            let mut row = Vec::new();
            for c in 0..self.cols {
                if mask.keep(&mut rng) {
                    row.push((c as u32, rng.gen_range(-1.0..1.0)));
                } else {
                    // keep RNG stream aligned with generate_dense
                    let _ = ();
                }
            }
            rows.push(row);
        }
        CsrMatrix::from_rows(self.rows, self.cols, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_accessors_round_trip() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn chunked_row_generation_stacks_to_monolithic() {
        let spec = MatrixSpec::sparse(30, 12, 0.5, 13);
        let whole = spec.generate_dense();
        for chunk in [1, 7, 30] {
            let mut data = Vec::new();
            let mut start = 0;
            while start < spec.rows {
                let end = (start + chunk).min(spec.rows);
                data.extend_from_slice(spec.generate_dense_rows(start, end).as_slice());
                start = end;
            }
            assert_eq!(data, whole.as_slice(), "chunk={chunk}");
        }
    }

    #[test]
    fn multiply_matches_hand_computation() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.multiply(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn multiply_rejects_mismatched_shapes() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.multiply(&b);
    }

    #[test]
    fn csr_spmv_matches_dense() {
        let spec = MatrixSpec::sparse(20, 20, 0.7, 5);
        let dense = spec.generate_dense();
        let sparse = spec.generate_sparse();
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let y_sparse = sparse.spmv(&x);
        for (r, ys) in y_sparse.iter().enumerate() {
            let yd: f64 = dense.row(r).iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!((ys - yd).abs() < 1e-9, "row {r}: {ys} vs {yd}");
        }
    }

    #[test]
    fn sparse_generation_matches_sparsity() {
        let m = MatrixSpec::sparse(100, 100, 0.9, 9).generate_sparse();
        assert!(
            (m.sparsity() - 0.9).abs() < 0.02,
            "sparsity {}",
            m.sparsity()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = MatrixSpec::dense(10, 10, 4);
        assert_eq!(spec.generate_dense(), spec.generate_dense());
    }

    #[test]
    fn frobenius_norm_of_identityish() {
        let m = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn descriptor_matches_shape() {
        let d = MatrixSpec::dense(10, 20, 1).descriptor();
        assert_eq!(d.class, DataClass::Matrix);
        assert_eq!(d.total_bytes, 10 * 20 * 8);
    }
}
