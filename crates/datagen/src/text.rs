//! Gensort-style text record generation (TeraSort input).
//!
//! The original TeraSort evaluation uses 100 GB of records produced by
//! `gensort`: each record is 100 bytes, the first 10 bytes are the sort key
//! and the remaining 90 bytes are payload.  [`TextGenerator`] reproduces
//! that format with printable ASCII keys drawn uniformly at random, which
//! matches gensort's default (uniformly distributed keys).

use rand::Rng;

use crate::chunks::{granule_seed, CHUNK_GRANULE};
use crate::descriptor::{DataClass, DataDescriptor, Distribution};
use crate::rng::seeded_rng;

/// Length of one record in bytes (gensort format).
pub const RECORD_LEN: usize = 100;
/// Length of the sort key prefix in bytes (gensort format).
pub const KEY_LEN: usize = 10;

/// A contiguous buffer of fixed-size text records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSet {
    data: Vec<u8>,
}

impl RecordSet {
    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of [`RECORD_LEN`].
    pub fn from_bytes(data: Vec<u8>) -> Self {
        assert!(
            data.len() % RECORD_LEN == 0,
            "record buffer length {} is not a multiple of {RECORD_LEN}",
            data.len()
        );
        Self { data }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.data.len() / RECORD_LEN
    }

    /// Returns true if the set holds no records.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw backing buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Borrow record `i` (key + payload).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn record(&self, i: usize) -> &[u8] {
        &self.data[i * RECORD_LEN..(i + 1) * RECORD_LEN]
    }

    /// Borrow the 10-byte key of record `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn key(&self, i: usize) -> &[u8] {
        &self.data[i * RECORD_LEN..i * RECORD_LEN + KEY_LEN]
    }

    /// Iterates over the records in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(RECORD_LEN)
    }

    /// Extracts all keys as owned arrays, the form the sort motif consumes.
    pub fn keys(&self) -> Vec<[u8; KEY_LEN]> {
        self.iter()
            .map(|r| {
                let mut k = [0u8; KEY_LEN];
                k.copy_from_slice(&r[..KEY_LEN]);
                k
            })
            .collect()
    }

    /// Returns true if the records are sorted by key (ascending).
    pub fn is_sorted_by_key(&self) -> bool {
        self.keys().windows(2).all(|w| w[0] <= w[1])
    }
}

/// Deterministic generator of gensort-style records.
#[derive(Debug, Clone)]
pub struct TextGenerator {
    seed: u64,
}

impl TextGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates `count` records (the single-chunk case of
    /// [`generate_range`](Self::generate_range)).
    pub fn generate(&self, count: usize) -> RecordSet {
        self.generate_range(0, count)
    }

    /// Generates records `[start, end)` of the logical data set.
    ///
    /// Each [`CHUNK_GRANULE`]-record granule draws from its own RNG stream
    /// seeded with `granule_seed(seed, granule_index)`, so any
    /// granule-aligned chunking of `[0, n)` concatenates to exactly the
    /// bytes of `generate(n)`; unaligned ranges fast-forward within their
    /// first granule and remain sub-slices of the same logical data set.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn generate_range(&self, start: usize, end: usize) -> RecordSet {
        assert!(start <= end, "invalid record range {start}..{end}");
        let mut data = vec![0u8; (end - start) * RECORD_LEN];
        if start == end {
            return RecordSet { data };
        }
        let mut out = data.chunks_exact_mut(RECORD_LEN);
        for g in start / CHUNK_GRANULE..=(end - 1) / CHUNK_GRANULE {
            let mut rng = seeded_rng(granule_seed(self.seed, g as u64));
            let g_start = g * CHUNK_GRANULE;
            for i in g_start..(g_start + CHUNK_GRANULE).min(end) {
                if i < start {
                    // Burn this record's draws so an unaligned start stays
                    // in phase with the granule's stream.
                    for _ in 0..KEY_LEN {
                        let _ = rng.gen_range(b' '..=b'~');
                    }
                    for _ in KEY_LEN..RECORD_LEN {
                        let _ = rng.gen_range(b'A'..=b'Z');
                    }
                    continue;
                }
                let rec = out.next().expect("output sized to range");
                // Keys: printable ASCII (' ' .. '~'), matching gensort's
                // uniformly distributed key space.
                for b in rec[..KEY_LEN].iter_mut() {
                    *b = rng.gen_range(b' '..=b'~');
                }
                // Payload: record body bytes are alphanumeric filler.
                for b in rec[KEY_LEN..].iter_mut() {
                    *b = rng.gen_range(b'A'..=b'Z');
                }
            }
        }
        RecordSet { data }
    }

    /// Descriptor for a logical data set of `total_bytes` in this format.
    pub fn descriptor(total_bytes: u64) -> DataDescriptor {
        DataDescriptor::new(
            DataClass::Text,
            total_bytes,
            RECORD_LEN as u64,
            0.0,
            Distribution::Uniform,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let rs = TextGenerator::new(1).generate(128);
        assert_eq!(rs.len(), 128);
        assert_eq!(rs.as_bytes().len(), 128 * RECORD_LEN);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TextGenerator::new(42).generate(64);
        let b = TextGenerator::new(42).generate(64);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_records() {
        let a = TextGenerator::new(1).generate(64);
        let b = TextGenerator::new(2).generate(64);
        assert_ne!(a, b);
    }

    #[test]
    fn keys_are_printable_ascii() {
        let rs = TextGenerator::new(3).generate(32);
        for i in 0..rs.len() {
            for &b in rs.key(i) {
                assert!((b' '..=b'~').contains(&b));
            }
        }
    }

    #[test]
    fn record_accessors_are_consistent() {
        let rs = TextGenerator::new(4).generate(10);
        for i in 0..10 {
            assert_eq!(&rs.record(i)[..KEY_LEN], rs.key(i));
        }
        assert_eq!(rs.iter().count(), 10);
        assert_eq!(rs.keys().len(), 10);
    }

    #[test]
    fn fresh_records_are_not_sorted() {
        // 1000 uniformly random keys are sorted with probability ~0.
        let rs = TextGenerator::new(5).generate(1000);
        assert!(!rs.is_sorted_by_key());
    }

    #[test]
    fn empty_set_is_sorted_and_empty() {
        let rs = TextGenerator::new(6).generate(0);
        assert!(rs.is_empty());
        assert!(rs.is_sorted_by_key());
    }

    #[test]
    fn chunked_generation_concatenates_to_monolithic_bytes() {
        let total = 2 * CHUNK_GRANULE + 300;
        let generator = TextGenerator::new(9);
        let whole = generator.generate(total);
        for chunk in [CHUNK_GRANULE, 2 * CHUNK_GRANULE] {
            let mut data = Vec::new();
            let mut start = 0;
            while start < total {
                let end = (start + chunk).min(total);
                data.extend_from_slice(generator.generate_range(start, end).as_bytes());
                start = end;
            }
            assert_eq!(data, whole.as_bytes(), "chunk={chunk}");
        }
    }

    #[test]
    fn unaligned_range_is_a_slice_of_the_logical_data_set() {
        let generator = TextGenerator::new(10);
        let whole = generator.generate(CHUNK_GRANULE + 64);
        let (start, end) = (CHUNK_GRANULE - 7, CHUNK_GRANULE + 5);
        let part = generator.generate_range(start, end);
        assert_eq!(
            part.as_bytes(),
            &whole.as_bytes()[start * RECORD_LEN..end * RECORD_LEN]
        );
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn from_bytes_rejects_misaligned_buffer() {
        let _ = RecordSet::from_bytes(vec![0u8; 150]);
    }

    #[test]
    fn descriptor_reflects_format() {
        let d = TextGenerator::descriptor(100 * RECORD_LEN as u64);
        assert_eq!(d.class, DataClass::Text);
        assert_eq!(d.element_count(), 100);
    }
}
