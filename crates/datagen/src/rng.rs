//! Deterministic random-number plumbing shared by all generators.
//!
//! Everything in this workspace is seeded explicitly so that experiment
//! results are reproducible bit-for-bit.  Generators should never reach for
//! entropy-based constructors; they take a `u64` seed and derive their
//! stream from it through [`seeded_rng`] or [`derive_seed`].

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// ```
/// use dmpb_datagen::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// This lets a data set split its generation across threads or chunks while
/// remaining deterministic and independent of the chunk count: chunk `i`
/// always receives the same stream regardless of how many chunks exist.
///
/// The mixing function is the 64-bit finaliser of SplitMix64, which is
/// sufficient to decorrelate consecutive indices.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let xs: Vec<u32> = seeded_rng(123)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        let ys: Vec<u32> = seeded_rng(123)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let x: u64 = seeded_rng(1).gen();
        let y: u64 = seeded_rng(2).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let a = derive_seed(99, 0);
        let b = derive_seed(99, 1);
        let c = derive_seed(99, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_is_stable() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }
}
