//! Synthetic image tensor generation (AlexNet / Inception-V3 input).
//!
//! The paper drives TensorFlow AlexNet with CIFAR-10 (32x32x3 images,
//! batch size 128) and Inception-V3 with ILSVRC2012 (resized to 299x299x3,
//! batch size 32).  Those data sets are not redistributable here, so this
//! module generates tensors with the same shapes, layouts ("NCHW"/"NHWC",
//! the TensorFlow storage formats the paper calls out) and value range,
//! which is what determines the compute and memory behaviour of the
//! convolutional motifs.

use rand::Rng;

use crate::descriptor::{DataClass, DataDescriptor, Distribution};
use crate::rng::{derive_seed, seeded_rng};

/// Tensor memory layout, matching TensorFlow's data-format strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorLayout {
    /// Batch, channels, height, width.
    Nchw,
    /// Batch, height, width, channels.
    Nhwc,
}

impl TensorLayout {
    /// The TensorFlow name of the layout.
    pub fn name(&self) -> &'static str {
        match self {
            TensorLayout::Nchw => "NCHW",
            TensorLayout::Nhwc => "NHWC",
        }
    }
}

/// Shape of a 4-D image batch tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Batch size (N).
    pub batch: usize,
    /// Number of channels (C).
    pub channels: usize,
    /// Height (H).
    pub height: usize,
    /// Width (W).
    pub width: usize,
}

impl TensorShape {
    /// Creates a shape.
    pub fn new(batch: usize, channels: usize, height: usize, width: usize) -> Self {
        Self {
            batch,
            channels,
            height,
            width,
        }
    }

    /// CIFAR-10 batch shape used by the AlexNet workload (batch 128).
    pub fn cifar10(batch: usize) -> Self {
        Self::new(batch, 3, 32, 32)
    }

    /// ILSVRC2012 batch shape as consumed by Inception-V3 (299x299).
    pub fn ilsvrc2012(batch: usize) -> Self {
        Self::new(batch, 3, 299, 299)
    }

    /// ImageNet shape as consumed by the original AlexNet (224x224).
    pub fn imagenet224(batch: usize) -> Self {
        Self::new(batch, 3, 224, 224)
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.batch * self.channels * self.height * self.width
    }

    /// Elements per single image (C*H*W).
    pub fn elements_per_image(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// A 4-D `f32` tensor with an explicit layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageTensor {
    shape: TensorShape,
    layout: TensorLayout,
    data: Vec<f32>,
}

impl ImageTensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: TensorShape, layout: TensorLayout) -> Self {
        Self {
            shape,
            layout,
            data: vec![0.0; shape.num_elements()],
        }
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// Memory layout of the tensor.
    pub fn layout(&self) -> TensorLayout {
        self.layout
    }

    /// Flat backing data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat backing data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Linear index of element `(n, c, h, w)` under the tensor's layout.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        let s = self.shape;
        assert!(
            n < s.batch && c < s.channels && h < s.height && w < s.width,
            "index out of range"
        );
        match self.layout {
            TensorLayout::Nchw => ((n * s.channels + c) * s.height + h) * s.width + w,
            TensorLayout::Nhwc => ((n * s.height + h) * s.width + w) * s.channels + c,
        }
    }

    /// Element `(n, c, h, w)`.
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.index(n, c, h, w)]
    }

    /// Sets element `(n, c, h, w)`.
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Converts the tensor to the other layout, copying the data.
    pub fn to_layout(&self, layout: TensorLayout) -> ImageTensor {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = ImageTensor::zeros(self.shape, layout);
        let s = self.shape;
        for n in 0..s.batch {
            for c in 0..s.channels {
                for h in 0..s.height {
                    for w in 0..s.width {
                        out.set(n, c, h, w, self.get(n, c, h, w));
                    }
                }
            }
        }
        out
    }
}

/// Seeded generator of normalised image batches.
#[derive(Debug, Clone)]
pub struct ImageGenerator {
    seed: u64,
}

impl ImageGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates one batch with values in `[0, 1)` (normalised pixels).
    pub fn generate(&self, shape: TensorShape, layout: TensorLayout) -> ImageTensor {
        self.generate_image_range(shape, layout, 0, shape.batch)
    }

    /// Generates images `[start, end)` of the logical batch as a tensor of
    /// batch size `end - start` (image `n` of the output is image
    /// `start + n` of the logical data set).
    ///
    /// Every image's RNG stream is derived from its global index alone, so
    /// any chunking of `[0, batch)` concatenates (along N) to exactly the
    /// tensor of [`generate`](Self::generate).
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn generate_image_range(
        &self,
        shape: TensorShape,
        layout: TensorLayout,
        start: usize,
        end: usize,
    ) -> ImageTensor {
        assert!(start <= end, "invalid image range {start}..{end}");
        let chunk_shape = TensorShape::new(end - start, shape.channels, shape.height, shape.width);
        let mut tensor = ImageTensor::zeros(chunk_shape, layout);
        for n in 0..chunk_shape.batch {
            let mut rng = seeded_rng(derive_seed(self.seed, (start + n) as u64));
            for c in 0..shape.channels {
                for h in 0..shape.height {
                    for w in 0..shape.width {
                        tensor.set(n, c, h, w, rng.gen::<f32>());
                    }
                }
            }
        }
        tensor
    }

    /// Descriptor for a data set of `num_images` images of the given shape
    /// (4 bytes per element once decoded to `f32`).
    pub fn descriptor(shape: TensorShape, num_images: u64) -> DataDescriptor {
        let per_image = (shape.elements_per_image() * std::mem::size_of::<f32>()) as u64;
        DataDescriptor::new(
            DataClass::Image,
            per_image * num_images,
            per_image,
            0.0,
            Distribution::Uniform,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_datasets() {
        let c = TensorShape::cifar10(128);
        assert_eq!((c.channels, c.height, c.width), (3, 32, 32));
        let i = TensorShape::ilsvrc2012(32);
        assert_eq!((i.channels, i.height, i.width), (3, 299, 299));
    }

    #[test]
    fn nchw_and_nhwc_indexing_agree_on_values() {
        let gen = ImageGenerator::new(8);
        let t = gen.generate(TensorShape::new(2, 3, 4, 5), TensorLayout::Nchw);
        let u = t.to_layout(TensorLayout::Nhwc);
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        assert_eq!(t.get(n, c, h, w), u.get(n, c, h, w));
                    }
                }
            }
        }
        assert_ne!(
            t.as_slice(),
            u.as_slice(),
            "layouts should differ in memory order"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = ImageGenerator::new(9);
        let shape = TensorShape::cifar10(2);
        assert_eq!(
            gen.generate(shape, TensorLayout::Nchw),
            gen.generate(shape, TensorLayout::Nchw)
        );
    }

    #[test]
    fn chunked_batches_concatenate_to_monolithic_tensor() {
        let gen = ImageGenerator::new(11);
        let shape = TensorShape::new(6, 2, 4, 4);
        let whole = gen.generate(shape, TensorLayout::Nchw);
        for chunk in [1, 2, 4, 6] {
            let mut data = Vec::new();
            let mut start = 0;
            while start < shape.batch {
                let end = (start + chunk).min(shape.batch);
                let part = gen.generate_image_range(shape, TensorLayout::Nchw, start, end);
                data.extend_from_slice(part.as_slice());
                start = end;
            }
            assert_eq!(data, whole.as_slice(), "chunk={chunk}");
        }
    }

    #[test]
    fn values_are_normalised() {
        let gen = ImageGenerator::new(10);
        let t = gen.generate(TensorShape::cifar10(1), TensorLayout::Nhwc);
        assert!(t.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn index_is_bijective() {
        let t = ImageTensor::zeros(TensorShape::new(2, 2, 3, 3), TensorLayout::Nchw);
        let mut seen = std::collections::HashSet::new();
        for n in 0..2 {
            for c in 0..2 {
                for h in 0..3 {
                    for w in 0..3 {
                        assert!(seen.insert(t.index(n, c, h, w)));
                    }
                }
            }
        }
        assert_eq!(seen.len(), t.shape().num_elements());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_rejects_out_of_range() {
        let t = ImageTensor::zeros(TensorShape::new(1, 1, 2, 2), TensorLayout::Nchw);
        let _ = t.index(0, 0, 2, 0);
    }

    #[test]
    fn descriptor_counts_images() {
        let d = ImageGenerator::descriptor(TensorShape::cifar10(1), 50_000);
        assert_eq!(d.class, DataClass::Image);
        assert_eq!(d.element_count(), 50_000);
    }
}
