//! Compact descriptions of generated data sets.
//!
//! The motif cost models and the workload models need to know *what kind*
//! of data a kernel operates on (class, volume, element size, sparsity,
//! distribution) without carrying the data itself around — the original
//! workloads process 100 GB inputs that are modelled, not materialised.
//! [`DataDescriptor`] is that summary.  Generators in this crate produce
//! descriptors alongside the concrete data so the two never diverge.

/// Broad class of a data set, mirroring the "data types" axis of the paper
/// (text, graph, matrix/vector, image).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// Unstructured byte records (gensort-style text).
    Text,
    /// Numeric feature vectors (K-means input).
    Vector,
    /// Graph data in adjacency form (PageRank input).
    Graph,
    /// Dense or sparse matrices.
    Matrix,
    /// Image tensors (AlexNet / Inception-V3 input).
    Image,
}

impl DataClass {
    /// All data classes, in a stable order.
    pub const ALL: [DataClass; 5] = [
        DataClass::Text,
        DataClass::Vector,
        DataClass::Graph,
        DataClass::Matrix,
        DataClass::Image,
    ];

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DataClass::Text => "text",
            DataClass::Vector => "vector",
            DataClass::Graph => "graph",
            DataClass::Matrix => "matrix",
            DataClass::Image => "image",
        }
    }
}

impl std::fmt::Display for DataClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistical distribution of element values or of structural properties
/// (e.g. graph degree distribution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniformly random values.
    Uniform,
    /// Gaussian values with the given mean and standard deviation.
    Gaussian {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation of the distribution.
        std_dev: f64,
    },
    /// Power-law / zipf distribution with the given exponent.
    PowerLaw {
        /// Zipf exponent (larger = more skewed).
        exponent: f64,
    },
}

impl Distribution {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Gaussian { .. } => "gaussian",
            Distribution::PowerLaw { .. } => "power-law",
        }
    }
}

/// Summary of a (possibly only modelled) data set.
///
/// `total_bytes` is the logical volume the original workload would process
/// (e.g. 100 GB for Hadoop TeraSort); `element_bytes` is the size of one
/// logical element (one record, one vector, one edge, one image);
/// `sparsity` is the fraction of zero-valued elements (0.0 for dense data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataDescriptor {
    /// Broad class of the data.
    pub class: DataClass,
    /// Total logical volume in bytes.
    pub total_bytes: u64,
    /// Size of one logical element in bytes.
    pub element_bytes: u64,
    /// Fraction of zero-valued elements in `[0, 1]`.
    pub sparsity: f64,
    /// Value / structure distribution.
    pub distribution: Distribution,
}

impl DataDescriptor {
    /// Creates a descriptor, validating its fields.
    ///
    /// # Panics
    ///
    /// Panics if `element_bytes` is zero or `sparsity` is outside `[0, 1]`.
    pub fn new(
        class: DataClass,
        total_bytes: u64,
        element_bytes: u64,
        sparsity: f64,
        distribution: Distribution,
    ) -> Self {
        assert!(element_bytes > 0, "element_bytes must be positive");
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity must be within [0, 1], got {sparsity}"
        );
        Self {
            class,
            total_bytes,
            element_bytes,
            sparsity,
            distribution,
        }
    }

    /// Number of logical elements (rounded down, at least one when any
    /// bytes are present).
    pub fn element_count(&self) -> u64 {
        if self.total_bytes == 0 {
            0
        } else {
            (self.total_bytes / self.element_bytes).max(1)
        }
    }

    /// Number of non-zero elements implied by the sparsity.
    pub fn nonzero_elements(&self) -> u64 {
        let nz = self.element_count() as f64 * (1.0 - self.sparsity);
        nz.round() as u64
    }

    /// Returns a copy scaled to a new total volume, keeping every other
    /// property.  This is how the proxy generator scales a 100 GB input
    /// down to the proxy's data size (the `dataSize` parameter of Table I).
    pub fn scaled_to(&self, total_bytes: u64) -> Self {
        Self {
            total_bytes,
            ..*self
        }
    }

    /// Returns a copy with a different sparsity (used by the Fig. 7/8
    /// sparse-vs-dense experiments).
    pub fn with_sparsity(&self, sparsity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity must be within [0, 1], got {sparsity}"
        );
        Self { sparsity, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor() -> DataDescriptor {
        DataDescriptor::new(
            DataClass::Vector,
            1_000_000,
            400,
            0.9,
            Distribution::Gaussian {
                mean: 0.0,
                std_dev: 1.0,
            },
        )
    }

    #[test]
    fn element_count_divides_volume() {
        assert_eq!(descriptor().element_count(), 2_500);
    }

    #[test]
    fn nonzero_elements_follow_sparsity() {
        assert_eq!(descriptor().nonzero_elements(), 250);
    }

    #[test]
    fn scaled_to_changes_only_volume() {
        let d = descriptor().scaled_to(10_000);
        assert_eq!(d.total_bytes, 10_000);
        assert_eq!(d.element_bytes, 400);
        assert_eq!(d.sparsity, 0.9);
    }

    #[test]
    fn with_sparsity_changes_only_sparsity() {
        let d = descriptor().with_sparsity(0.0);
        assert_eq!(d.sparsity, 0.0);
        assert_eq!(d.total_bytes, 1_000_000);
    }

    #[test]
    fn zero_volume_has_no_elements() {
        let d = descriptor().scaled_to(0);
        assert_eq!(d.element_count(), 0);
        assert_eq!(d.nonzero_elements(), 0);
    }

    #[test]
    #[should_panic(expected = "element_bytes")]
    fn rejects_zero_element_size() {
        let _ = DataDescriptor::new(DataClass::Text, 100, 0, 0.0, Distribution::Uniform);
    }

    #[test]
    fn class_names_are_unique() {
        let mut names: Vec<&str> = DataClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DataClass::ALL.len());
    }
}
