//! Chunked (streaming) generation plumbing shared by every generator.
//!
//! Production-scale cells run over 10^8+ elements; materialising such a
//! data set whole would pin gigabytes of RSS.  Instead, every generator in
//! this crate addresses its logical data set in fixed **granules** of
//! [`CHUNK_GRANULE`] elements: granule `g` of a data set seeded with `s`
//! is always generated from the derived stream
//! [`granule_seed`]`(s, g)` — regardless of how much of the data set is
//! materialised at once, by whom, or in which order.  That single property
//! gives the whole stack its streaming invariant:
//!
//! * **byte identity** — generating a data set in one call, in arbitrary
//!   granule-aligned chunks, or granule by granule on different worker
//!   threads produces the same bytes once concatenated, because each
//!   granule's RNG stream depends only on `(seed, granule index)`;
//! * **constant peak RSS** — a consumer holds at most one chunk of
//!   storage per in-flight task, never the full data set;
//! * **chunk-count independence** — a 10^8-element cell split into
//!   1 chunk, 25 chunks or 25,000 chunks is the *same* logical data set.
//!
//! Chunks handed to the executor are granule-aligned:
//! [`align_chunk_elements`] rounds a requested chunk size up to a whole
//! number of granules, and [`chunk_ranges`] splits `[0, total)` at
//! granule multiples (only the final chunk may be partial).  Kernel-side
//! work units mirror the same granule grid (see `dmpb_motifs`), which is
//! what keeps per-granule kernel outcomes — and therefore execution
//! digests — identical across every tested chunk size.

use crate::rng::derive_seed;

/// The fixed granule size, in elements, shared by every generator and by
/// the motif kernels' chunk-local work units.
///
/// 4096 is large enough that per-granule seeding and dispatch amortise
/// (a text granule is 400 KiB of records) and that granule-local inner
/// loops vectorise, yet small enough that tens of thousands of granules
/// exist at 10^8 elements and a single granule's scratch fits in cache.
pub const CHUNK_GRANULE: usize = 4096;

/// The derived RNG seed of granule `granule` of a data set seeded with
/// `seed` (an alias of [`derive_seed`] naming the streaming convention).
pub fn granule_seed(seed: u64, granule: u64) -> u64 {
    derive_seed(seed, granule)
}

/// Number of granules covering `total` elements (0 for an empty set).
pub fn granule_count(total: usize) -> usize {
    total.div_ceil(CHUNK_GRANULE)
}

/// The element range `[start, end)` of granule `granule` within a
/// `total`-element data set.  Every granule spans exactly
/// [`CHUNK_GRANULE`] elements except the last, which may be partial.
pub fn granule_range(total: usize, granule: usize) -> (usize, usize) {
    let start = granule * CHUNK_GRANULE;
    (start.min(total), (start + CHUNK_GRANULE).min(total))
}

/// Rounds a requested chunk size up to a whole number of granules
/// (minimum one granule), the alignment the streaming executor requires
/// so that chunk boundaries never split a granule.
pub fn align_chunk_elements(requested: usize) -> usize {
    granule_count(requested.max(1)) * CHUNK_GRANULE
}

/// Iterator over the granule-aligned chunk ranges covering `[0, total)`.
#[derive(Debug, Clone)]
pub struct ChunkRanges {
    total: usize,
    chunk: usize,
    next: usize,
}

impl Iterator for ChunkRanges {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.next >= self.total {
            return None;
        }
        let start = self.next;
        let end = (start + self.chunk).min(self.total);
        self.next = end;
        Some((start, end))
    }
}

/// Splits `[0, total)` into chunks of `chunk_elements` (aligned up via
/// [`align_chunk_elements`]); only the final chunk may be smaller.
pub fn chunk_ranges(total: usize, chunk_elements: usize) -> ChunkRanges {
    ChunkRanges {
        total,
        chunk: align_chunk_elements(chunk_elements),
        next: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_rounds_up_to_whole_granules() {
        assert_eq!(align_chunk_elements(0), CHUNK_GRANULE);
        assert_eq!(align_chunk_elements(1), CHUNK_GRANULE);
        assert_eq!(align_chunk_elements(CHUNK_GRANULE), CHUNK_GRANULE);
        assert_eq!(align_chunk_elements(CHUNK_GRANULE + 1), 2 * CHUNK_GRANULE);
    }

    #[test]
    fn granule_ranges_tile_the_data_set() {
        let total = 3 * CHUNK_GRANULE + 17;
        assert_eq!(granule_count(total), 4);
        let mut covered = 0;
        for g in 0..granule_count(total) {
            let (start, end) = granule_range(total, g);
            assert_eq!(start, covered);
            assert!(end - start <= CHUNK_GRANULE);
            covered = end;
        }
        assert_eq!(covered, total);
        assert_eq!(granule_count(0), 0);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_and_align_to_granules() {
        for requested in [1, 100, CHUNK_GRANULE, 3 * CHUNK_GRANULE - 5] {
            let total = 10 * CHUNK_GRANULE + 123;
            let ranges: Vec<_> = chunk_ranges(total, requested).collect();
            let mut covered = 0;
            for &(start, end) in &ranges {
                assert_eq!(start, covered);
                assert!(start % CHUNK_GRANULE == 0, "chunk start splits a granule");
                assert!(end == total || end % CHUNK_GRANULE == 0);
                covered = end;
            }
            assert_eq!(covered, total);
        }
        assert_eq!(chunk_ranges(0, 64).count(), 0);
    }

    #[test]
    fn granule_seeds_depend_only_on_seed_and_index() {
        assert_eq!(granule_seed(7, 3), granule_seed(7, 3));
        assert_ne!(granule_seed(7, 3), granule_seed(7, 4));
        assert_ne!(granule_seed(7, 3), granule_seed(8, 3));
    }
}
