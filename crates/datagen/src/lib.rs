//! # dmpb-datagen — data generation substrate
//!
//! The paper's central observation is that big data and AI workload
//! behaviour is driven not only by the algorithm but by the **input data**:
//! its type (text / vectors / graph / matrix / image), its size, its
//! distribution and its sparsity.  The original evaluation uses `gensort`
//! for TeraSort text records, BDGS for vectors and graphs, and the
//! CIFAR-10 / ILSVRC2012 image data sets for the AI workloads.  None of
//! those external tools or data sets are available in this reproduction,
//! so this crate provides seeded, deterministic generators that expose the
//! same knobs:
//!
//! * [`text`] — gensort-style 100-byte records (10-byte key + payload);
//! * [`vectors`] — dense and sparse numeric vectors with configurable
//!   sparsity (the Fig. 7 / Fig. 8 sparse-vs-dense experiment);
//! * [`graph`] — power-law and uniform random graphs in CSR form
//!   (PageRank input, BDGS substitute);
//! * [`matrix`] — dense and sparse matrices;
//! * [`image`] — synthetic image tensors with CIFAR-10 / ILSVRC2012 shapes
//!   in `NCHW` or `NHWC` layout (AlexNet / Inception-V3 input);
//! * [`distributions`] — uniform / gaussian / zipf samplers used by all of
//!   the above;
//! * [`chunks`] — the granule grid every generator addresses its data set
//!   on, enabling streaming (chunk-at-a-time) generation that is
//!   byte-identical to the monolithic path;
//! * [`descriptor`] — a compact [`descriptor::DataDescriptor`] summarising
//!   the generated data, consumed by the motif cost models so that the
//!   performance model sees exactly the data the kernels operate on.
//!
//! Every generator takes an explicit seed; the same seed always produces
//! the same bytes, which keeps the whole experiment pipeline reproducible.
//!
//! ```
//! use dmpb_datagen::text::{TextGenerator, RECORD_LEN};
//!
//! let records = TextGenerator::new(42).generate(1_000);
//! assert_eq!(records.len(), 1_000);
//! assert_eq!(records.as_bytes().len(), 1_000 * RECORD_LEN);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chunks;
pub mod descriptor;
pub mod distributions;
pub mod graph;
pub mod image;
pub mod matrix;
pub mod rng;
pub mod text;
pub mod vectors;

pub use chunks::{align_chunk_elements, chunk_ranges, granule_seed, CHUNK_GRANULE};
pub use descriptor::{DataClass, DataDescriptor, Distribution};
pub use rng::seeded_rng;
