//! Value distributions used by the data generators.
//!
//! The paper stresses that proxy benchmarks must preserve the *pattern and
//! distribution* of input data, not just its volume.  The generators in
//! this crate therefore sample from a small set of distributions that cover
//! the data sets used in the evaluation: uniform values (gensort records),
//! gaussian features (K-means vectors), zipf/power-law popularity (graph
//! degrees, word frequencies) and bernoulli masks (vector sparsity).

use rand::Rng;

/// A zipf (power-law) sampler over the integers `0..n`.
///
/// Item `i` is drawn with probability proportional to `1 / (i + 1)^s`.
/// The implementation precomputes the cumulative distribution and samples
/// by binary search, which is exact and fast enough for the data sizes used
/// here (the generators sample at most a few million values).
///
/// ```
/// use dmpb_datagen::distributions::Zipf;
/// use dmpb_datagen::rng::seeded_rng;
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = seeded_rng(1);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a zipf distribution over `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf distribution needs at least one item");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i as f64) + 1.0).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of items in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns true if the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one item index in `0..self.len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A gaussian sampler based on the Box–Muller transform.
///
/// `rand_distr` is not part of the approved dependency set, so the normal
/// distribution is implemented directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// Creates a gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be >= 0"
        );
        Self { mean, std_dev }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: avoid u1 == 0 to keep ln finite.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Bernoulli mask used to generate sparse data: each element is zero with
/// probability `sparsity`.
///
/// A `sparsity` of `0.9` reproduces the paper's "90 % sparse" K-means
/// vectors; `0.0` reproduces the dense configuration of Fig. 7 / Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityMask {
    sparsity: f64,
}

impl SparsityMask {
    /// Creates a mask that zeroes elements with probability `sparsity`.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]`.
    pub fn new(sparsity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity must be within [0, 1], got {sparsity}"
        );
        Self { sparsity }
    }

    /// The probability that an element is zeroed.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }

    /// Returns true if the next element should be kept (non-zero).
    pub fn keep<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.sparsity <= 0.0 {
            true
        } else if self.sparsity >= 1.0 {
            false
        } else {
            rng.gen::<f64>() >= self.sparsity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn zipf_samples_within_support() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = seeded_rng(5);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_is_skewed_towards_small_indices() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = seeded_rng(6);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The first 10 of 1000 items should receive far more than their
        // uniform share (1%) of samples.
        assert!(head as f64 / n as f64 > 0.3, "head share too small: {head}");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zipf_rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn gaussian_mean_and_spread() {
        let g = Gaussian::new(10.0, 2.0);
        let mut rng = seeded_rng(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn gaussian_zero_std_is_constant() {
        let g = Gaussian::new(3.0, 0.0);
        let mut rng = seeded_rng(8);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn sparsity_mask_ratio_matches() {
        let mask = SparsityMask::new(0.9);
        let mut rng = seeded_rng(9);
        let n = 100_000;
        let kept = (0..n).filter(|_| mask.keep(&mut rng)).count();
        let ratio = kept as f64 / n as f64;
        assert!((ratio - 0.1).abs() < 0.01, "kept ratio {ratio}");
    }

    #[test]
    fn sparsity_extremes() {
        let mut rng = seeded_rng(10);
        assert!(SparsityMask::new(0.0).keep(&mut rng));
        assert!(!SparsityMask::new(1.0).keep(&mut rng));
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn sparsity_rejects_out_of_range() {
        let _ = SparsityMask::new(1.5);
    }
}
