//! Peak-RSS pin for streamed large cells (PR 8).
//!
//! Lives in its own integration-test binary so no sibling test inflates
//! the process's `VmHWM` high-water mark before the measurement: the
//! assertion reads `/proc/self/status`, which reports the peak over the
//! *whole* process lifetime.
//!
//! The cell size scales with the build profile — debug kernels are an
//! order of magnitude slower, so tier-1 (`cargo test`) streams 10^6
//! elements while the release CI `scaling-smoke` job streams 10^7 — but
//! the assertion is the same: a streaming execution's peak RSS is set by
//! the chunk budget (fan-out × per-granule scratch), not by the cell's
//! element count, so a bounded ceiling holds at any scale.

#![cfg(target_os = "linux")]

use dmpb_core::runner::SuiteRunner;
use dmpb_workloads::{ClusterConfig, WorkloadKind};

/// The process's peak resident set size in kilobytes, from
/// `/proc/self/status` (`VmHWM` is maintained by the kernel and never
/// decreases).
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix("VmHWM:")?;
            rest.trim().strip_suffix("kB")?.trim().parse::<u64>().ok()
        })
        .expect("VmHWM line in /proc/self/status")
}

#[test]
fn streamed_large_cell_peak_rss_is_bounded_by_the_chunk_budget() {
    const ELEMENTS: usize = if cfg!(debug_assertions) {
        1_000_000
    } else {
        10_000_000
    };
    // Generous versus the chunk budget, tiny versus the data: a
    // materialised 10^7-record text dataset alone would be ~1 GB per
    // DAG edge.
    const CEILING_MB: u64 = 384;

    let runner = SuiteRunner::new(ClusterConfig::five_node_westmere())
        .with_intra_parallel(4)
        .with_chunk_elements(Some(1 << 20));
    let run = runner.run_cell(WorkloadKind::TeraSort, ELEMENTS, 42);
    assert!(run.execution.kernels_run > 0);
    assert_ne!(run.execution.checksum, 0, "execution must have done work");

    let hwm_kb = vm_hwm_kb();
    assert!(
        hwm_kb < CEILING_MB * 1024,
        "peak RSS {hwm_kb} kB exceeds the {CEILING_MB} MB streaming ceiling \
         for a {ELEMENTS}-element cell"
    );
}
