//! Streaming-equivalence pins for the chunked data plane (PR 8).
//!
//! The whole streaming design rests on one invariant: executing a proxy
//! DAG in granule-aligned chunks — any chunk size, any worker count — is
//! *invisible* in the results.  Checksums, per-edge element counts and
//! therefore every report digest must be byte-identical to monolithic
//! execution.  These tests pin that invariant end to end, over the real
//! tuned proxies of all eight workloads (not synthetic DAGs), both on a
//! deterministic grid and under a property-based sweep of random chunk
//! sizes.

use dmpb_core::dag::ProxyDag;
use dmpb_core::{DagExecutor, ProxyGenerator};
use dmpb_workloads::{ClusterConfig, WorkloadKind};

/// One tuned proxy DAG per suite workload, generated once per process.
fn tuned_dags() -> &'static [(WorkloadKind, ProxyDag)] {
    use std::sync::OnceLock;
    static DAGS: OnceLock<Vec<(WorkloadKind, ProxyDag)>> = OnceLock::new();
    DAGS.get_or_init(|| {
        let generator = ProxyGenerator::new(ClusterConfig::five_node_westmere());
        WorkloadKind::ALL
            .iter()
            .map(|&kind| (kind, generator.generate_kind(kind).proxy.dag()))
            .collect()
    })
}

const ELEMENTS: usize = 10_000;
const SEED: u64 = 0x00D4_17A4_0F1F;

/// The deterministic grid: every workload, chunk sizes from one granule
/// up to chunk > n (a single chunk), serial and 8-way parallel.
#[test]
fn chunked_execution_is_digest_identical_for_all_eight_workloads() {
    for (kind, dag) in tuned_dags() {
        let monolithic = DagExecutor::new().execute(dag, ELEMENTS, SEED);
        for chunk in [4096, 2 * 4096, 3 * 4096 + 17, ELEMENTS + 1] {
            for workers in [1usize, 8] {
                let streamed = DagExecutor::new()
                    .with_max_parallel(workers)
                    .with_chunk_elements(Some(chunk))
                    .execute(dag, ELEMENTS, SEED);
                assert_eq!(
                    streamed.checksum, monolithic.checksum,
                    "{kind}: checksum drifted (chunk={chunk}, workers={workers})"
                );
                assert_eq!(
                    streamed.total_elements(),
                    monolithic.total_elements(),
                    "{kind}: element accounting drifted (chunk={chunk}, workers={workers})"
                );
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

    /// Property pin: a random workload at a random cell size, streamed
    /// with a random (pre-alignment) chunk size on 1 or 8 workers, is
    /// checksum-identical to its monolithic execution.
    #[test]
    fn random_chunk_sizes_never_change_the_checksum(
        workload in 0usize..WorkloadKind::ALL.len(),
        elements in 100usize..30_000,
        chunk in 1usize..40_000,
        eight_way in 0usize..2,
        seed in 0u64..100_000,
    ) {
        let (kind, dag) = &tuned_dags()[workload];
        let monolithic = DagExecutor::new().execute(dag, elements, seed);
        let streamed = DagExecutor::new()
            .with_max_parallel(1 + 7 * eight_way)
            .with_chunk_elements(Some(chunk))
            .execute(dag, elements, seed);
        proptest::prop_assert_eq!(
            streamed.checksum,
            monolithic.checksum,
            "{}: chunk={} elements={} workers={}",
            kind, chunk, elements, 1 + 7 * eight_way
        );
        proptest::prop_assert_eq!(streamed.total_elements(), monolithic.total_elements());
    }
}
