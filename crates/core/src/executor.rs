//! Barrier-free, work-stealing execution of a proxy DAG's real motif
//! kernels.
//!
//! [`DagExecutor`] runs a [`ProxyDag`] with **dependency-counting
//! edge-level readiness** ([`crate::dag::EdgeReadiness`]): every edge
//! carries a countdown of the predecessors that must finish before it may
//! run, and the worker that completes an edge's last predecessor releases
//! it immediately — onto the persistent work-stealing [`WorkerPool`],
//! not onto a freshly spawned thread.  Compared with the PR 3 stage-barrier schedule this
//! removes two costs at once: no stage stalls on its slowest branch (a
//! TeraSort shuffle edge no longer waits for an unrelated sampler branch),
//! and steady-state execution performs **zero thread spawns** (workers are
//! created once per pool and reused across every proxy of a suite).
//!
//! The stage-barrier schedule survives as
//! [`SchedulePolicy::StageBarrier`], so benches can measure the win and
//! property tests can cross-check the two schedulers edge for edge.
//!
//! # Profiling and superkernel fusion (PR 7)
//!
//! The dispatch boundary is instrumented for the global
//! [`KernelProfiler`]: when sampling is enabled (one relaxed load per
//! execution when it is not), every kernel run records its kind, element
//! count and wall time.  Profiles collected this way drive two
//! optimisations applied right here:
//!
//! * **superkernel fusion** — adjacent edge pairs with a registered
//!   [`FusedKernel`] (the profiled hottest adjacent pairs across the
//!   eight workloads) execute as one task when the second edge's source
//!   node has in-degree 1, eliding a spawn/countdown per pair and, when
//!   the pair's arguments coincide, sharing generated input.  The
//!   superkernel contract pins checksum identity with the unfused pair,
//!   so digests are byte-identical with fusion on or off;
//! * **specialised dispatch** — kernel objects are resolved once per
//!   execution into a flat vector instead of per-edge registry lookups.
//!
//! Fusion is suppressed while profiling (exact per-kind attribution) and
//! under the stage-barrier oracle, keeping both as independent checks.
//!
//! # Streaming (PR 8)
//!
//! With [`DagExecutor::with_chunk_elements`] set, every edge executes as
//! a generate→execute→reduce **stream** of granule-aligned chunks with at
//! most `max_parallel` chunks in flight, bounding peak RSS by the chunk
//! budget instead of the edge's total element count — how 10^8-element
//! cells run in constant memory.  The chunk reduce is an exactly
//! associative monoid ([`ChunkState`]), so streamed digests equal
//! monolithic digests at every chunk size and worker count by
//! construction.
//!
//! # Determinism
//!
//! The executor's output is byte-identical across worker counts, policies
//! and scheduling orders:
//!
//! * every edge's kernel seed is **derived** from the execution seed and
//!   the edge's *topological index* via [`derive_seed`] — never from the
//!   worker that happens to run it;
//! * kernel scratch buffers come from a shared, zero-filling, sharded
//!   [`BufferPool`], so recycled storage cannot leak state into checksums;
//! * per-edge checksums are folded in topological-index order after the
//!   whole DAG completes.
//!
//! This is what lets the suite runner expose intra-proxy parallelism as a
//! pure performance axis: `with_max_parallel(1)` and `with_max_parallel(8)`
//! produce the same digest.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use dmpb_datagen::chunks::align_chunk_elements;
use dmpb_datagen::rng::derive_seed;
use dmpb_motifs::workers::{default_parallel_ceiling, Scope, WorkerPool};
use dmpb_motifs::{
    BufferPool, ChunkState, FusedKernel, KernelProfiler, MotifKernel, MotifKind, MotifRegistry,
};

use crate::dag::{DagSchedule, EdgeReadiness, ProxyDag};

/// A planned fusion: edge `a` (the index into the plan) executes the
/// registered superkernel covering itself and edge `fused_next[a].0`.
type FusionPlan = Vec<Option<(usize, &'static dyn FusedKernel)>>;

/// Result of one edge's kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRun {
    /// The motif that ran.
    pub motif: MotifKind,
    /// Elements the kernel processed.
    pub elements: usize,
    /// Seed the kernel was driven by.
    pub seed: u64,
    /// The kernel's output checksum.
    pub checksum: u64,
}

/// The structured result of executing one proxy DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagExecution {
    /// Per-edge results in topological-index order.
    pub edge_runs: Vec<EdgeRun>,
    /// Number of stages the depth schedule had (reported for analysis;
    /// the work-stealing policy does not synchronise on them).
    pub stages: usize,
    /// Widest stage (edges that were eligible to run concurrently).
    pub max_stage_width: usize,
    /// Folded checksum over all edge checksums (topological order).
    pub checksum: u64,
}

impl DagExecution {
    /// Number of motif kernels executed.
    pub fn kernels_run(&self) -> usize {
        self.edge_runs.len()
    }

    /// Total elements processed across all edges.
    pub fn total_elements(&self) -> usize {
        self.edge_runs.iter().map(|r| r.elements).sum()
    }
}

/// How a [`DagExecutor`] schedules the independent branches of a DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// The PR 3 scheduler: stages execute in depth order with a barrier
    /// between them, each stage's branches on freshly spawned scoped
    /// threads.  Kept for A/B benchmarking and as a differential-testing
    /// oracle.
    StageBarrier,
    /// Dependency-counting edge-level readiness on the persistent
    /// work-stealing pool: an edge runs the instant its predecessor
    /// countdown hits zero, and no threads are spawned in steady state.
    #[default]
    WorkStealing,
}

/// Deterministic executor for proxy DAGs (see the
/// [module documentation](self)).
#[derive(Debug)]
pub struct DagExecutor {
    max_parallel: usize,
    ceiling: usize,
    policy: SchedulePolicy,
    fusion: bool,
    chunk_elements: Option<usize>,
    pool: BufferPool,
    workers: OnceLock<Arc<WorkerPool>>,
}

impl Default for DagExecutor {
    /// A serial executor (one branch at a time) — the right default when
    /// an outer layer (e.g. the suite runner) already parallelises across
    /// proxies.
    fn default() -> Self {
        Self::new()
    }
}

impl DagExecutor {
    /// A serial executor with a fresh buffer pool.  Serial executors
    /// create no worker threads at all.
    pub fn new() -> Self {
        Self {
            max_parallel: 1,
            ceiling: default_parallel_ceiling(),
            policy: SchedulePolicy::default(),
            fusion: true,
            chunk_elements: None,
            pool: BufferPool::new(),
            workers: OnceLock::new(),
        }
    }

    /// Bounds the number of DAG branches executed concurrently (clamped to
    /// `1..=`[`Self::parallel_ceiling`]).  `1` executes the DAG serially
    /// on the calling thread.  The buffer pool is re-sharded to one shard
    /// per worker plus one for external threads; a worker pool installed
    /// via [`Self::with_worker_pool`] is preserved.
    pub fn with_max_parallel(mut self, workers: usize) -> Self {
        self.max_parallel = workers.clamp(1, self.ceiling);
        let shards = match self.workers.get() {
            Some(pool) => pool.workers() + 1,
            None => self.max_parallel + 1,
        };
        self.pool = BufferPool::with_shards(shards);
        self
    }

    /// Overrides the clamp ceiling applied by [`Self::with_max_parallel`]
    /// (by default derived from the hardware via
    /// [`default_parallel_ceiling`]), re-clamping the current setting.
    pub fn with_parallel_ceiling(mut self, ceiling: usize) -> Self {
        self.ceiling = ceiling.max(1);
        self.max_parallel = self.max_parallel.min(self.ceiling);
        self
    }

    /// Selects the scheduling policy (work-stealing by default).
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables superkernel fusion (on by default).
    ///
    /// When on, adjacent edge pairs with a registered
    /// [`FusedKernel`] — where the second edge's source node has
    /// in-degree 1, so the pair forms a private chain — execute as one
    /// task.  Fusion is checksum-transparent (the superkernel contract
    /// pins digest identity) and is automatically suppressed while
    /// kernel profiling is enabled so per-kind attribution stays exact,
    /// and under [`SchedulePolicy::StageBarrier`] so the barrier
    /// scheduler remains an independent differential oracle.
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Enables (`Some`) or disables (`None`, the default) streamed edge
    /// execution.
    ///
    /// When set, every edge runs generate→execute→reduce per chunk of at
    /// most `chunk_elements` elements (rounded up to a whole number of
    /// granules via [`align_chunk_elements`]) instead of materialising
    /// its whole input at once: chunks are pulled off a shared cursor by
    /// at most [`Self::max_parallel`] in-flight tasks on the worker pool,
    /// so peak RSS is bounded by `in-flight tasks x chunk scratch`
    /// regardless of the edge's total element count.  Streaming is
    /// digest-identical to monolithic execution by construction (the
    /// chunk reduce is an exactly associative monoid; see
    /// [`ChunkState`]), making `chunk_elements` a pure performance/RSS
    /// knob.  Superkernel fusion is suppressed while streaming — fused
    /// pairs are digest-invisible anyway, and chunk scheduling replaces
    /// the spawn elision they provide.
    pub fn with_chunk_elements(mut self, chunk_elements: Option<usize>) -> Self {
        self.chunk_elements = chunk_elements.map(align_chunk_elements);
        self
    }

    /// The configured streaming chunk size, if streaming is enabled
    /// (normalised to a granule multiple).
    pub fn chunk_elements(&self) -> Option<usize> {
        self.chunk_elements
    }

    /// Installs a shared persistent worker pool instead of the lazily
    /// created private one — how a suite runner makes all eight proxies
    /// reuse one set of workers.  The buffer pool is re-sharded to match
    /// the installed pool's worker count (the shared pool may be wider
    /// than this executor's own `max_parallel`, e.g. when the suite
    /// runner also fans out across workloads on it).
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = BufferPool::with_shards(pool.workers() + 1);
        let slot = OnceLock::new();
        let _ = slot.set(pool);
        self.workers = slot;
        self
    }

    /// The configured concurrency bound.
    pub fn max_parallel(&self) -> usize {
        self.max_parallel
    }

    /// The ceiling [`Self::with_max_parallel`] clamps against.
    pub fn parallel_ceiling(&self) -> usize {
        self.ceiling
    }

    /// The configured scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Whether superkernel fusion is enabled (see [`Self::with_fusion`]).
    pub fn fusion(&self) -> bool {
        self.fusion
    }

    /// Number of superkernel fusions the planner would apply to `dag` —
    /// a static property of the DAG shape and the registered
    /// [`FusedKernel`]s, independent of this executor's runtime fusion
    /// gating (policy, profiling state, worker count).
    pub fn planned_fusions(&self, dag: &ProxyDag) -> usize {
        let schedule = dag.schedule();
        let readiness = schedule.readiness();
        Self::fusion_plan(&schedule, &readiness, MotifRegistry::global())
            .0
            .iter()
            .filter(|fused| fused.is_some())
            .count()
    }

    /// Pairs each fusable edge with its registered superkernel.
    ///
    /// Edge `a` fuses its successor edge `b` when `b`'s source node has
    /// in-degree 1 (so `a` is its only predecessor and completing the
    /// pair atomically cannot starve a sibling), a [`FusedKernel`] is
    /// registered for `(a.motif, b.motif)`, and neither edge already
    /// participates in another fusion (no chains — a superkernel covers
    /// exactly two edges).
    fn fusion_plan(
        schedule: &DagSchedule,
        readiness: &EdgeReadiness,
        registry: &MotifRegistry,
    ) -> (FusionPlan, Vec<bool>) {
        let mut fused_next: FusionPlan = vec![None; schedule.edges.len()];
        let mut fused_into = vec![false; schedule.edges.len()];
        for a in 0..schedule.edges.len() {
            if fused_into[a] {
                continue;
            }
            for &b in &readiness.successors[a] {
                if readiness.pending[b] != 1 || fused_into[b] {
                    continue;
                }
                if let Some(kernel) =
                    registry.fused(schedule.edges[a].motif, schedule.edges[b].motif)
                {
                    fused_next[a] = Some((b, kernel));
                    fused_into[b] = true;
                    break;
                }
            }
        }
        (fused_next, fused_into)
    }

    /// The shared intermediate-buffer pool kernels lease scratch storage
    /// from.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The persistent worker pool, created on first parallel use (sized
    /// `max_parallel - 1` because the executing thread participates)
    /// unless one was installed via [`Self::with_worker_pool`].
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        self.workers
            .get_or_init(|| Arc::new(WorkerPool::new(self.max_parallel.saturating_sub(1))))
    }

    /// Executes every motif edge of `dag` on generated sample data.
    ///
    /// `elements` bounds the per-kernel input size (scaled by each edge's
    /// weight, with a floor of 16 that never exceeds the requested
    /// `elements`, so tiny cells do not over-report); `seed` drives the
    /// per-edge derived kernel seeds.  Deterministic in `(dag, elements,
    /// seed)` — see the [module documentation](self).
    pub fn execute(&self, dag: &ProxyDag, elements: usize, seed: u64) -> DagExecution {
        // One schedule derivation: the stage indices and the edge vector
        // come from the same `DagSchedule`, so they cannot drift apart.
        let schedule = dag.schedule();
        let registry = MotifRegistry::global();

        // Pre-compute every edge's work item; indices are topological.
        // The floor keeps every kernel's sample meaningful, but is capped
        // at the requested cell size so a tiny-element cell's
        // `total_elements` never exceeds `edges x requested`.
        let work: Vec<(MotifKind, usize, u64)> = schedule
            .edges
            .iter()
            .enumerate()
            .map(|(index, edge)| {
                let n = ((elements as f64 * edge.weight).ceil() as usize)
                    .max(16)
                    .min(elements.max(1));
                (edge.motif, n, derive_seed(seed, index as u64))
            })
            .collect();

        // Specialised dispatch: resolve every edge's kernel object once,
        // outside the hot loop, instead of indexing the registry per run.
        let kernels: Vec<&'static dyn MotifKernel> = work
            .iter()
            .map(|&(motif, _, _)| registry.kernel(motif))
            .collect();

        // One relaxed load decides the whole execution: when profiling is
        // off the hot path carries no timestamping at all, and when it is
        // on fusion is suppressed so every kernel is attributed to its
        // own `MotifKind`.
        let profiler = KernelProfiler::global();
        let profiling = profiler.enabled();

        let workers = self.max_parallel.min(work.len().max(1));
        let readiness = schedule.readiness();
        let fusing = self.fusion
            && !profiling
            && self.chunk_elements.is_none()
            && (workers <= 1 || self.policy == SchedulePolicy::WorkStealing);
        let (fused_next, fused_into) = if fusing {
            Self::fusion_plan(&schedule, &readiness, registry)
        } else {
            (vec![None; work.len()], vec![false; work.len()])
        };

        let mut checksums: Vec<OnceLock<u64>> = Vec::new();
        checksums.resize_with(work.len(), OnceLock::new);
        let run_edge = |index: usize| {
            let (motif, n, edge_seed) = work[index];
            if let Some((next, fused)) = fused_next[index] {
                let (_, n_next, seed_next) = work[next];
                let (first, second) =
                    fused.execute((n, edge_seed), (n_next, seed_next), &self.pool);
                checksums[index].set(first).expect("edge executed twice");
                checksums[next].set(second).expect("edge executed twice");
            } else if let Some(chunk) = self.chunk_elements {
                let checksum = self.execute_edge_streamed(
                    kernels[index],
                    motif,
                    n,
                    edge_seed,
                    chunk,
                    profiling,
                );
                checksums[index].set(checksum).expect("edge executed twice");
            } else if profiling {
                let start = Instant::now();
                let checksum = kernels[index].execute(n, edge_seed, &self.pool);
                profiler.record(motif, n, start.elapsed());
                checksums[index].set(checksum).expect("edge executed twice");
            } else {
                let checksum = kernels[index].execute(n, edge_seed, &self.pool);
                checksums[index].set(checksum).expect("edge executed twice");
            }
        };

        if workers <= 1 {
            // Topological index order is a valid serial execution order:
            // every edge into a node sorts before every edge out of it.
            // Fused tails already ran inside their head's superkernel.
            (0..work.len())
                .filter(|&index| !fused_into[index])
                .for_each(&run_edge);
        } else {
            match self.policy {
                SchedulePolicy::StageBarrier => {
                    for stage in &schedule.stages {
                        let stage_workers = workers.min(stage.len());
                        if stage_workers <= 1 {
                            stage.iter().for_each(|&index| run_edge(index));
                        } else {
                            let run_edge = &run_edge;
                            std::thread::scope(|scope| {
                                for chunk in stage.chunks(stage.len().div_ceil(stage_workers)) {
                                    scope.spawn(move || chunk.iter().for_each(|&i| run_edge(i)));
                                }
                            });
                        }
                    }
                }
                SchedulePolicy::WorkStealing => {
                    let pending: Vec<AtomicUsize> = readiness
                        .pending
                        .iter()
                        .map(|&count| AtomicUsize::new(count))
                        .collect();
                    let tasks = EdgeTasks {
                        run_edge: &run_edge,
                        pending: &pending,
                        successors: &readiness.successors,
                        fused_next: &fused_next,
                    };
                    self.worker_pool().scope(|scope| {
                        for &index in &readiness.initial {
                            let tasks = &tasks;
                            scope.spawn(move |s| tasks.run(index, s));
                        }
                    });
                }
            }
        }

        let edge_runs: Vec<EdgeRun> = work
            .iter()
            .zip(&checksums)
            .map(|(&(motif, elements, seed), checksum)| EdgeRun {
                motif,
                elements,
                seed,
                checksum: *checksum.get().expect("every edge ran"),
            })
            .collect();

        // Fold in topological-index order, independent of execution order.
        let checksum = edge_runs.iter().enumerate().fold(0u64, |acc, (i, run)| {
            acc ^ run.checksum.rotate_left(i as u32)
        });

        DagExecution {
            stages: schedule.stages.len(),
            max_stage_width: schedule.stages.iter().map(Vec::len).max().unwrap_or(0),
            edge_runs,
            checksum,
        }
    }

    /// Runs one edge's kernel as a generate→execute→reduce stream of
    /// `chunk`-element chunks (the tentpole streaming path).
    ///
    /// At most [`Self::max_parallel`] chunk tasks are in flight at once:
    /// each pulls the next chunk index off a shared cursor, executes it
    /// chunk-locally (one chunk of generated input + scratch live per
    /// task) and folds the resulting [`ChunkState`] into a task-local
    /// accumulator, so peak RSS is bounded by the chunk budget — never by
    /// `n`.  Task-local states merge into the edge digest through the
    /// associative reduce, which makes the result independent of chunk
    /// size, task count and completion order.  When profiling, each chunk
    /// records its own sample (one `Instant` pair per chunk — the ≤2 %
    /// overhead bound holds because a chunk is thousands of elements of
    /// kernel work).
    fn execute_edge_streamed(
        &self,
        kernel: &'static dyn MotifKernel,
        motif: MotifKind,
        n: usize,
        seed: u64,
        chunk: usize,
        profiling: bool,
    ) -> u64 {
        let run_chunk = |start: usize| {
            let end = (start + chunk).min(n);
            if profiling {
                let t = Instant::now();
                let state = kernel.execute_chunk(start, end, n, seed, &self.pool);
                KernelProfiler::global().record(motif, end - start, t.elapsed());
                state
            } else {
                kernel.execute_chunk(start, end, n, seed, &self.pool)
            }
        };

        let num_chunks = n.div_ceil(chunk.max(1));
        let fan_out = self.max_parallel.min(num_chunks.max(1));
        if fan_out <= 1 {
            let mut state = ChunkState::IDENTITY;
            let mut start = 0;
            while start < n {
                state.merge(&run_chunk(start));
                start = (start + chunk).min(n);
            }
            return state.finalize(motif);
        }

        let cursor = AtomicUsize::new(0);
        let merged = Mutex::new(ChunkState::IDENTITY);
        self.worker_pool().scope(|scope| {
            for _ in 0..fan_out {
                let (cursor, merged, run_chunk) = (&cursor, &merged, &run_chunk);
                scope.spawn(move |_| {
                    let mut local = ChunkState::IDENTITY;
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= num_chunks {
                            break;
                        }
                        local.merge(&run_chunk(index * chunk));
                    }
                    merged
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .merge(&local);
                });
            }
        });
        let state = merged
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.finalize(motif)
    }
}

/// The dependency-counting work item: runs one edge, then decrements every
/// successor's countdown and spawns the ones that hit zero — from the
/// worker that released them, so a freed branch continues on a warm
/// thread without any barrier.
struct EdgeTasks<'a, F: Fn(usize) + Sync> {
    run_edge: &'a F,
    pending: &'a [AtomicUsize],
    successors: &'a [Vec<usize>],
    fused_next: &'a [Option<(usize, &'static dyn FusedKernel)>],
}

impl<F: Fn(usize) + Sync> EdgeTasks<'_, F> {
    fn run<'scope>(&'scope self, index: usize, scope: &Scope<'scope>) {
        (self.run_edge)(index);
        self.propagate(index, scope);
    }

    /// Releases `index`'s successors.  A fused successor already executed
    /// inside `index`'s superkernel, so instead of decrementing its
    /// countdown and spawning it we recursively propagate *its*
    /// completion — the fusion elides one task spawn per pair.
    fn propagate<'scope>(&'scope self, index: usize, scope: &Scope<'scope>) {
        let fused_tail = self.fused_next[index].map(|(next, _)| next);
        for &next in &self.successors[index] {
            if Some(next) == fused_tail {
                self.propagate(next, scope);
            } else if self.pending[next].fetch_sub(1, Ordering::AcqRel) == 1 {
                scope.spawn(move |s| self.run(next, s));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::{DataClass, DataDescriptor, Distribution};
    use dmpb_motifs::workers::hardware_parallelism;

    fn descriptor() -> DataDescriptor {
        DataDescriptor::new(DataClass::Text, 1 << 20, 100, 0.0, Distribution::Uniform)
    }

    fn diamond() -> ProxyDag {
        let mut dag = ProxyDag::new();
        let input = dag.add_node("input", descriptor());
        let left = dag.add_node("left", descriptor());
        let right = dag.add_node("right", descriptor());
        let out = dag.add_node("out", descriptor());
        dag.add_edge(input, left, MotifKind::QuickSort, 0.4);
        dag.add_edge(input, right, MotifKind::RandomSampling, 0.1);
        dag.add_edge(left, out, MotifKind::MergeSort, 0.3);
        dag.add_edge(right, out, MotifKind::CountStatistics, 0.2);
        dag
    }

    #[test]
    fn execution_covers_every_edge_and_reports_the_schedule() {
        let run = DagExecutor::new().execute(&diamond(), 512, 7);
        assert_eq!(run.kernels_run(), 4);
        assert_eq!(run.stages, 2);
        assert_eq!(run.max_stage_width, 2);
        assert!(run.edge_runs.iter().all(|r| r.elements >= 16));
        assert_eq!(
            run.total_elements(),
            run.edge_runs.iter().map(|r| r.elements).sum::<usize>()
        );
    }

    /// The satellite clamp fix: the 16-element kernel floor must never
    /// lift a tiny cell's per-edge element count above what was
    /// requested, so `total_elements` stays bounded by
    /// `edges x requested`.
    #[test]
    fn tiny_cells_do_not_over_report_elements() {
        for requested in [1usize, 2, 4, 15] {
            let run = DagExecutor::new().execute(&diamond(), requested, 7);
            for r in &run.edge_runs {
                assert!(
                    r.elements <= requested,
                    "edge reports {} elements for a {requested}-element cell",
                    r.elements
                );
                assert!(r.elements >= 1, "edges still run at least one element");
            }
            assert!(run.total_elements() <= requested * run.kernels_run());
        }
        // Normal cells keep the 16-element floor on low-weight edges.
        let run = DagExecutor::new().execute(&diamond(), 512, 7);
        assert!(run.edge_runs.iter().all(|r| r.elements >= 16));
    }

    #[test]
    fn streamed_execution_is_digest_identical_to_monolithic() {
        let dag = diamond();
        let monolithic = DagExecutor::new().execute(&dag, 10_000, 42);
        for chunk in [1, 4096, 3 * 4096, 1 << 20] {
            for workers in [1, 8] {
                let streamed = DagExecutor::new()
                    .with_max_parallel(workers)
                    .with_chunk_elements(Some(chunk))
                    .execute(&dag, 10_000, 42);
                assert_eq!(
                    streamed, monolithic,
                    "streaming must be invisible (chunk={chunk}, workers={workers})"
                );
            }
        }
    }

    #[test]
    fn chunk_elements_is_normalised_to_granule_multiples() {
        let executor = DagExecutor::new().with_chunk_elements(Some(1));
        assert_eq!(executor.chunk_elements(), Some(4096));
        let executor = DagExecutor::new().with_chunk_elements(Some(5000));
        assert_eq!(executor.chunk_elements(), Some(8192));
        assert_eq!(DagExecutor::new().chunk_elements(), None);
        assert_eq!(
            DagExecutor::new()
                .with_chunk_elements(Some(4096))
                .with_chunk_elements(None)
                .chunk_elements(),
            None
        );
    }

    #[test]
    fn checksum_is_identical_across_worker_counts_and_repeats() {
        let dag = diamond();
        let serial = DagExecutor::new();
        let parallel = DagExecutor::new().with_max_parallel(8);
        let a = serial.execute(&dag, 2_000, 42);
        let b = parallel.execute(&dag, 2_000, 42);
        let c = parallel.execute(&dag, 2_000, 42);
        assert_eq!(a, b, "parallelism must not change the execution");
        assert_eq!(b, c, "repeated runs must be identical");
    }

    #[test]
    fn both_policies_produce_identical_executions() {
        let dag = diamond();
        let stealing = DagExecutor::new().with_max_parallel(8);
        let barrier = DagExecutor::new()
            .with_policy(SchedulePolicy::StageBarrier)
            .with_max_parallel(8);
        assert_eq!(stealing.policy(), SchedulePolicy::WorkStealing);
        assert_eq!(barrier.policy(), SchedulePolicy::StageBarrier);
        assert_eq!(
            stealing.execute(&dag, 2_000, 42),
            barrier.execute(&dag, 2_000, 42),
            "scheduling policy must be a pure performance axis"
        );
    }

    #[test]
    fn the_diamond_plans_one_quick_merge_fusion() {
        // input -QuickSort-> left -MergeSort-> out is a private chain
        // (`left` has in-degree 1) with a registered superkernel; the
        // sampler/statistics branch has none.
        let executor = DagExecutor::new();
        assert!(executor.fusion(), "fusion is on by default");
        assert_eq!(executor.planned_fusions(&diamond()), 1);
    }

    #[test]
    fn fused_execution_matches_unfused_serial_and_both_parallel_policies() {
        let dag = diamond();
        let fused_serial = DagExecutor::new().execute(&dag, 2_000, 42);
        let unfused_serial = DagExecutor::new()
            .with_fusion(false)
            .execute(&dag, 2_000, 42);
        let fused_stealing = DagExecutor::new()
            .with_max_parallel(8)
            .execute(&dag, 2_000, 42);
        let barrier = DagExecutor::new()
            .with_policy(SchedulePolicy::StageBarrier)
            .with_max_parallel(8)
            .execute(&dag, 2_000, 42);
        assert_eq!(fused_serial, unfused_serial, "fusion must be invisible");
        assert_eq!(fused_serial, fused_stealing);
        assert_eq!(fused_serial, barrier, "the barrier oracle never fuses");
    }

    #[test]
    fn profiling_does_not_change_the_execution() {
        // Uses the process-global profiler: other tests in this binary
        // may observe profiling as enabled for a moment, which is safe —
        // profiled runs only add timestamping and suppress fusion, both
        // of which the equality gates here and above prove invisible.
        let dag = diamond();
        let executor = DagExecutor::new().with_max_parallel(8);
        let baseline = executor.execute(&dag, 2_000, 42);
        let profiler = KernelProfiler::global();
        let was_enabled = profiler.set_enabled(true);
        let profiled = executor.execute(&dag, 2_000, 42);
        profiler.set_enabled(was_enabled);
        assert_eq!(baseline, profiled, "profiling must be a pure observer");
    }

    #[test]
    fn edge_seeds_are_derived_from_the_topological_index() {
        let run = DagExecutor::new().execute(&diamond(), 256, 5);
        let seeds: Vec<u64> = run.edge_runs.iter().map(|r| r.seed).collect();
        let expected: Vec<u64> = (0..4).map(|i| derive_seed(5, i)).collect();
        assert_eq!(seeds, expected);
    }

    #[test]
    fn different_seeds_change_the_checksum() {
        let dag = diamond();
        let executor = DagExecutor::new();
        assert_ne!(
            executor.execute(&dag, 512, 1).checksum,
            executor.execute(&dag, 512, 2).checksum
        );
    }

    #[test]
    fn pool_is_reused_across_executions() {
        let executor = DagExecutor::new();
        let dag = diamond();
        executor.execute(&dag, 512, 1);
        let before = executor.pool().stats();
        executor.execute(&dag, 512, 1);
        let after = executor.pool().stats();
        assert!(
            after.reused > before.reused,
            "second execution must recycle the first one's buffers"
        );
    }

    #[test]
    fn repeated_parallel_executions_spawn_no_new_threads() {
        let executor = DagExecutor::new().with_max_parallel(4);
        let dag = diamond();
        executor.execute(&dag, 512, 1);
        let pool = Arc::clone(executor.worker_pool());
        assert_eq!(pool.workers(), 3, "caller participates: n - 1 workers");
        for _ in 0..5 {
            executor.execute(&dag, 512, 1);
        }
        assert!(Arc::ptr_eq(&pool, executor.worker_pool()));
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn a_shared_worker_pool_is_adopted_regardless_of_builder_order() {
        let shared = Arc::new(WorkerPool::new(2));
        let executor = DagExecutor::new()
            .with_worker_pool(Arc::clone(&shared))
            .with_parallel_ceiling(16)
            .with_max_parallel(8);
        // Later builder calls must not drop the installed pool, and the
        // buffer pool stays sharded for the installed pool's workers.
        assert!(Arc::ptr_eq(&shared, executor.worker_pool()));
        assert_eq!(executor.pool().shards(), shared.workers() + 1);
    }

    #[test]
    fn max_parallel_is_clamped_to_the_derived_ceiling() {
        assert_eq!(DagExecutor::new().with_max_parallel(0).max_parallel(), 1);
        assert_eq!(
            DagExecutor::new()
                .with_max_parallel(usize::MAX)
                .max_parallel(),
            default_parallel_ceiling()
        );
        assert_eq!(
            DagExecutor::new().parallel_ceiling(),
            default_parallel_ceiling()
        );
        assert!(default_parallel_ceiling() >= hardware_parallelism());
        assert!(
            default_parallel_ceiling() >= 8,
            "the 8-worker determinism gates must stay meaningful"
        );
    }

    #[test]
    fn explicit_ceiling_overrides_the_derived_default() {
        let executor = DagExecutor::new()
            .with_parallel_ceiling(3)
            .with_max_parallel(100);
        assert_eq!(executor.max_parallel(), 3);
        // Applying the ceiling after the request re-clamps it.
        let reclamped = DagExecutor::new()
            .with_max_parallel(8)
            .with_parallel_ceiling(2);
        assert_eq!(reclamped.max_parallel(), 2);
        assert_eq!(reclamped.parallel_ceiling(), 2);
        // A zero ceiling is lifted to the serial minimum.
        assert_eq!(
            DagExecutor::new()
                .with_parallel_ceiling(0)
                .parallel_ceiling(),
            1
        );
    }
}
