//! Stage-parallel execution of a proxy DAG's real motif kernels.
//!
//! [`DagExecutor`] walks a [`ProxyDag`] stage by stage (see
//! [`ProxyDag::stages`]): a stage holds all edges whose source data set is
//! fully produced, so the edges of one stage are mutually independent and
//! can run concurrently.  Independent branches — TensorFlow Inception's
//! parallel towers, Spark wide-dependency fan-outs — therefore execute in
//! parallel on scoped worker threads, bounded by
//! [`DagExecutor::with_max_parallel`].
//!
//! # Determinism
//!
//! The executor's output is byte-identical across thread counts and
//! scheduling orders:
//!
//! * every edge's kernel seed is **derived** from the execution seed and
//!   the edge's *topological index* via [`derive_seed`] — never from the
//!   thread that happens to run it;
//! * kernel scratch buffers come from a shared, zero-filling
//!   [`BufferPool`], so recycled storage cannot leak state into checksums;
//! * per-edge checksums are folded in topological-index order after all
//!   stages complete.
//!
//! This is what lets the suite runner expose intra-proxy parallelism as a
//! pure performance axis: `with_max_parallel(1)` and `with_max_parallel(8)`
//! produce the same digest.

use std::sync::OnceLock;

use dmpb_datagen::rng::derive_seed;
use dmpb_motifs::{BufferPool, MotifKind, MotifRegistry};

use crate::dag::ProxyDag;

/// Result of one edge's kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRun {
    /// The motif that ran.
    pub motif: MotifKind,
    /// Elements the kernel processed.
    pub elements: usize,
    /// Seed the kernel was driven by.
    pub seed: u64,
    /// The kernel's output checksum.
    pub checksum: u64,
}

/// The structured result of executing one proxy DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagExecution {
    /// Per-edge results in topological-index order.
    pub edge_runs: Vec<EdgeRun>,
    /// Number of stages the schedule had.
    pub stages: usize,
    /// Widest stage (edges that were eligible to run concurrently).
    pub max_stage_width: usize,
    /// Folded checksum over all edge checksums (topological order).
    pub checksum: u64,
}

impl DagExecution {
    /// Number of motif kernels executed.
    pub fn kernels_run(&self) -> usize {
        self.edge_runs.len()
    }
}

/// Stage-parallel, deterministic executor for proxy DAGs (see the
/// [module documentation](self)).
#[derive(Debug)]
pub struct DagExecutor {
    max_parallel: usize,
    pool: BufferPool,
}

impl Default for DagExecutor {
    /// A serial executor (one branch at a time) — the right default when
    /// an outer layer (e.g. the suite runner) already parallelises across
    /// proxies.
    fn default() -> Self {
        Self::new()
    }
}

impl DagExecutor {
    /// A serial executor with a fresh buffer pool.
    pub fn new() -> Self {
        Self {
            max_parallel: 1,
            pool: BufferPool::new(),
        }
    }

    /// Bounds the number of DAG branches executed concurrently within one
    /// stage (clamped to `1..=64`).  `1` executes stages serially.
    pub fn with_max_parallel(mut self, workers: usize) -> Self {
        self.max_parallel = workers.clamp(1, 64);
        self
    }

    /// The configured concurrency bound.
    pub fn max_parallel(&self) -> usize {
        self.max_parallel
    }

    /// The shared intermediate-buffer pool kernels lease scratch storage
    /// from.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Executes every motif edge of `dag` on generated sample data.
    ///
    /// `elements` bounds the per-kernel input size (scaled by each edge's
    /// weight, with a floor of 16); `seed` drives the per-edge derived
    /// kernel seeds.  Deterministic in `(dag, elements, seed)` — see the
    /// [module documentation](self).
    pub fn execute(&self, dag: &ProxyDag, elements: usize, seed: u64) -> DagExecution {
        // One schedule derivation: the stage indices and the edge vector
        // come from the same `DagSchedule`, so they cannot drift apart.
        let crate::dag::DagSchedule { edges, stages } = dag.schedule();
        let registry = MotifRegistry::global();

        // Pre-compute every edge's work item; indices are topological.
        let work: Vec<(MotifKind, usize, u64)> = edges
            .iter()
            .enumerate()
            .map(|(index, edge)| {
                let n = ((elements as f64 * edge.weight).ceil() as usize).max(16);
                (edge.motif, n, derive_seed(seed, index as u64))
            })
            .collect();

        let mut checksums: Vec<OnceLock<u64>> = Vec::new();
        checksums.resize_with(edges.len(), OnceLock::new);
        let run_edge = |index: usize| {
            let (motif, n, edge_seed) = work[index];
            let checksum = registry.kernel(motif).execute(n, edge_seed, &self.pool);
            checksums[index].set(checksum).expect("edge executed twice");
        };

        let max_stage_width = stages.iter().map(Vec::len).max().unwrap_or(0);
        for stage in &stages {
            let workers = self.max_parallel.min(stage.len());
            if workers <= 1 {
                stage.iter().for_each(|&index| run_edge(index));
            } else {
                // Independent branches of this stage on scoped threads.
                let run_edge = &run_edge;
                std::thread::scope(|scope| {
                    for chunk in stage.chunks(stage.len().div_ceil(workers)) {
                        scope.spawn(move || chunk.iter().for_each(|&index| run_edge(index)));
                    }
                });
            }
        }

        let edge_runs: Vec<EdgeRun> = work
            .iter()
            .zip(&checksums)
            .map(|(&(motif, elements, seed), checksum)| EdgeRun {
                motif,
                elements,
                seed,
                checksum: *checksum.get().expect("every edge ran"),
            })
            .collect();

        // Fold in topological-index order, independent of execution order.
        let checksum = edge_runs.iter().enumerate().fold(0u64, |acc, (i, run)| {
            acc ^ run.checksum.rotate_left(i as u32)
        });

        DagExecution {
            stages: stages.len(),
            max_stage_width,
            edge_runs,
            checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::{DataClass, DataDescriptor, Distribution};

    fn descriptor() -> DataDescriptor {
        DataDescriptor::new(DataClass::Text, 1 << 20, 100, 0.0, Distribution::Uniform)
    }

    fn diamond() -> ProxyDag {
        let mut dag = ProxyDag::new();
        let input = dag.add_node("input", descriptor());
        let left = dag.add_node("left", descriptor());
        let right = dag.add_node("right", descriptor());
        let out = dag.add_node("out", descriptor());
        dag.add_edge(input, left, MotifKind::QuickSort, 0.4);
        dag.add_edge(input, right, MotifKind::RandomSampling, 0.1);
        dag.add_edge(left, out, MotifKind::MergeSort, 0.3);
        dag.add_edge(right, out, MotifKind::CountStatistics, 0.2);
        dag
    }

    #[test]
    fn execution_covers_every_edge_and_reports_the_schedule() {
        let run = DagExecutor::new().execute(&diamond(), 512, 7);
        assert_eq!(run.kernels_run(), 4);
        assert_eq!(run.stages, 2);
        assert_eq!(run.max_stage_width, 2);
        assert!(run.edge_runs.iter().all(|r| r.elements >= 16));
    }

    #[test]
    fn checksum_is_identical_across_worker_counts_and_repeats() {
        let dag = diamond();
        let serial = DagExecutor::new();
        let parallel = DagExecutor::new().with_max_parallel(8);
        let a = serial.execute(&dag, 2_000, 42);
        let b = parallel.execute(&dag, 2_000, 42);
        let c = parallel.execute(&dag, 2_000, 42);
        assert_eq!(a, b, "parallelism must not change the execution");
        assert_eq!(b, c, "repeated runs must be identical");
    }

    #[test]
    fn edge_seeds_are_derived_from_the_topological_index() {
        let run = DagExecutor::new().execute(&diamond(), 256, 5);
        let seeds: Vec<u64> = run.edge_runs.iter().map(|r| r.seed).collect();
        let expected: Vec<u64> = (0..4).map(|i| derive_seed(5, i)).collect();
        assert_eq!(seeds, expected);
    }

    #[test]
    fn different_seeds_change_the_checksum() {
        let dag = diamond();
        let executor = DagExecutor::new();
        assert_ne!(
            executor.execute(&dag, 512, 1).checksum,
            executor.execute(&dag, 512, 2).checksum
        );
    }

    #[test]
    fn pool_is_reused_across_executions() {
        let executor = DagExecutor::new();
        let dag = diamond();
        executor.execute(&dag, 512, 1);
        let before = executor.pool().stats();
        executor.execute(&dag, 512, 1);
        let after = executor.pool().stats();
        assert!(
            after.reused > before.reused,
            "second execution must recycle the first one's buffers"
        );
    }

    #[test]
    fn max_parallel_is_clamped() {
        assert_eq!(DagExecutor::new().with_max_parallel(0).max_parallel(), 1);
        assert_eq!(
            DagExecutor::new().with_max_parallel(1_000).max_parallel(),
            64
        );
    }
}
