//! The DAG structure of a proxy benchmark.
//!
//! The paper represents a proxy benchmark as a directed acyclic graph whose
//! nodes are original or intermediate data sets and whose edges are data
//! motifs transforming one data set into the next, each with a weight.
//!
//! The graph accepts **arbitrary acyclic topologies** — forks (one data
//! set feeding several motifs), joins (several motifs producing one data
//! set) and diamonds — not just forward chains.  Acyclicity is enforced at
//! [`ProxyDag::add_edge`] time by a reachability check, and scheduling
//! questions (topological order, parallel stages) are answered by Kahn's
//! algorithm with a deterministic smallest-id tie-break, so every derived
//! order is stable run to run.

use dmpb_datagen::DataDescriptor;
use dmpb_motifs::MotifKind;

/// Identifier of a data node within a proxy DAG.
pub type NodeId = usize;

/// A data node: an original or intermediate data set.
#[derive(Debug, Clone, PartialEq)]
pub struct DataNode {
    /// Human-readable label, e.g. `"input"` or `"sorted-runs"`.
    pub label: String,
    /// Descriptor of the data at this node.
    pub descriptor: DataDescriptor,
}

/// An edge: one data motif applied to the data at `from`, producing the
/// data at `to`, contributing `weight` of the proxy's work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifEdge {
    /// Source data node.
    pub from: NodeId,
    /// Destination data node.
    pub to: NodeId,
    /// The motif implementation on this edge.
    pub motif: MotifKind,
    /// Relative weight (execution ratio) of this edge.
    pub weight: f64,
}

/// A DAG of data motifs over named data nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProxyDag {
    nodes: Vec<DataNode>,
    edges: Vec<MotifEdge>,
}

/// A computed execution schedule: the edges in deterministic topological
/// order *and* the stage partition over those same indices, derived
/// together by [`ProxyDag::schedule`] so the two views can never drift
/// apart.
#[derive(Debug, Clone, PartialEq)]
pub struct DagSchedule {
    /// Edges in deterministic topological order.
    pub edges: Vec<MotifEdge>,
    /// `stages[k]` holds the indices into [`DagSchedule::edges`] of the
    /// edges whose source node sits at depth `k`.  All edges of one stage
    /// are mutually independent (their inputs were fully produced by
    /// earlier stages), so they may execute concurrently; stages execute
    /// in order.
    pub stages: Vec<Vec<usize>>,
}

/// The barrier-free readiness view of a [`DagSchedule`]: per-edge
/// predecessor countdowns plus successor lists, the inputs of the
/// dependency-counting executor.
///
/// An edge is runnable the instant every edge *into its source node* has
/// completed — not when the whole previous stage has (the stage view
/// over-synchronises: a slow branch in stage `k` has no bearing on a
/// stage-`k+1` edge hanging off a different, already finished branch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeReadiness {
    /// `pending[i]` = number of edges that must complete before edge `i`
    /// may run (the in-degree of edge `i`'s source node).
    pub pending: Vec<usize>,
    /// `successors[i]` = indices of the edges leaving edge `i`'s target
    /// node; each gets its countdown decremented when edge `i` completes.
    pub successors: Vec<Vec<usize>>,
    /// Edges with no predecessors (countdown already zero), runnable
    /// immediately.
    pub initial: Vec<usize>,
}

impl DagSchedule {
    /// Derives the dependency-counting readiness structure over this
    /// schedule's edge indices (see [`EdgeReadiness`]).
    pub fn readiness(&self) -> EdgeReadiness {
        let num_nodes = self
            .edges
            .iter()
            .map(|e| e.from.max(e.to) + 1)
            .max()
            .unwrap_or(0);
        let mut in_degree = vec![0usize; num_nodes];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        for (index, edge) in self.edges.iter().enumerate() {
            in_degree[edge.to] += 1;
            out_edges[edge.from].push(index);
        }
        let pending: Vec<usize> = self.edges.iter().map(|e| in_degree[e.from]).collect();
        let successors: Vec<Vec<usize>> =
            self.edges.iter().map(|e| out_edges[e.to].clone()).collect();
        let initial = (0..self.edges.len()).filter(|&i| pending[i] == 0).collect();
        EdgeReadiness {
            pending,
            successors,
            initial,
        }
    }
}

impl ProxyDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a data node and returns its id.
    pub fn add_node<S: Into<String>>(&mut self, label: S, descriptor: DataDescriptor) -> NodeId {
        self.nodes.push(DataNode {
            label: label.into(),
            descriptor,
        });
        self.nodes.len() - 1
    }

    /// Adds a motif edge.  Any forward-reachable topology is accepted —
    /// edges may fork, join, and point "backwards" in node-id order, as
    /// long as the graph stays acyclic.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint does not exist, if the edge would close a
    /// cycle (including self-loops), or if the weight is not a positive
    /// finite number.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, motif: MotifKind, weight: f64) {
        assert!(from < self.nodes.len(), "unknown source node {from}");
        assert!(to < self.nodes.len(), "unknown target node {to}");
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        assert!(
            from != to,
            "edge {} --[{motif}]--> {} is a self-loop, which would create a cycle",
            self.nodes[from].label,
            self.nodes[to].label
        );
        assert!(
            !self.is_reachable(to, from),
            "edge {} --[{motif}]--> {} would create a cycle: {} is already reachable from {}",
            self.nodes[from].label,
            self.nodes[to].label,
            self.nodes[from].label,
            self.nodes[to].label
        );
        self.edges.push(MotifEdge {
            from,
            to,
            motif,
            weight,
        });
    }

    /// Whether `target` can be reached from `start` along existing edges.
    fn is_reachable(&self, start: NodeId, target: NodeId) -> bool {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if node == target {
                return true;
            }
            if std::mem::replace(&mut visited[node], true) {
                continue;
            }
            stack.extend(self.edges.iter().filter(|e| e.from == node).map(|e| e.to));
        }
        false
    }

    /// The data nodes.
    pub fn nodes(&self) -> &[DataNode] {
        &self.nodes
    }

    /// The motif edges.
    pub fn edges(&self) -> &[MotifEdge] {
        &self.edges
    }

    /// Number of motif edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edges with their weights renormalised to sum to one.
    pub fn normalized_edges(&self) -> Vec<MotifEdge> {
        let total: f64 = self.edges.iter().map(|e| e.weight).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        self.edges
            .iter()
            .map(|e| MotifEdge {
                weight: e.weight / total,
                ..*e
            })
            .collect()
    }

    /// Node ids in topological order ([`dmpb_motifs::topology`]'s shared
    /// Kahn implementation; among ready nodes the smallest id is taken
    /// first, so the order is deterministic).
    pub fn topological_order(&self) -> Vec<NodeId> {
        let pairs: Vec<(usize, usize)> = self.edges.iter().map(|e| (e.from, e.to)).collect();
        let order = dmpb_motifs::topology::topological_order(self.nodes.len(), &pairs);
        assert!(
            order.len() == self.nodes.len(),
            "proxy DAG contains a cycle"
        );
        order
    }

    /// Edges in a deterministic topological (execution) order: sorted by
    /// the topological position of their source, then of their target,
    /// then insertion order.  (The topologically indexed view of
    /// [`ProxyDag::schedule`].)
    pub fn topological_edges(&self) -> Vec<MotifEdge> {
        self.schedule().edges
    }

    /// Depth of every node: 0 for sources, otherwise one more than the
    /// deepest predecessor.  Edges scheduled at the depth of their source
    /// form the executor's parallel stages.
    pub fn node_depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.nodes.len()];
        for &node in &self.topological_order() {
            for edge in self.edges.iter().filter(|e| e.to == node) {
                depth[node] = depth[node].max(depth[edge.from] + 1);
            }
        }
        depth
    }

    /// Computes the execution schedule: the topologically ordered edges
    /// and the stage partition over those indices, in one derivation (see
    /// [`DagSchedule`]).
    pub fn schedule(&self) -> DagSchedule {
        let order = self.topological_order();
        let mut position = vec![0usize; self.nodes.len()];
        for (pos, &node) in order.iter().enumerate() {
            position[node] = pos;
        }
        let mut indexed: Vec<(usize, &MotifEdge)> = self.edges.iter().enumerate().collect();
        indexed.sort_by_key(|(i, e)| (position[e.from], position[e.to], *i));
        let edges: Vec<MotifEdge> = indexed.into_iter().map(|(_, e)| *e).collect();

        let depth = self.node_depths();
        let num_stages = edges.iter().map(|e| depth[e.from] + 1).max().unwrap_or(0);
        let mut stages = vec![Vec::new(); num_stages];
        for (index, edge) in edges.iter().enumerate() {
            stages[depth[edge.from]].push(index);
        }
        DagSchedule { edges, stages }
    }

    /// The stage partition of [`ProxyDag::schedule`].
    pub fn stages(&self) -> Vec<Vec<usize>> {
        self.schedule().stages
    }

    /// Largest number of edges leaving one node (≥ 2 means a fork).
    pub fn max_out_degree(&self) -> usize {
        self.degree(|e| e.from)
    }

    /// Largest number of edges entering one node (≥ 2 means a join).
    pub fn max_in_degree(&self) -> usize {
        self.degree(|e| e.to)
    }

    fn degree(&self, end: impl Fn(&MotifEdge) -> NodeId) -> usize {
        let mut counts = vec![0usize; self.nodes.len()];
        for edge in &self.edges {
            counts[end(edge)] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }

    /// Whether the DAG genuinely forks or joins anywhere (false for a
    /// straight chain).
    pub fn is_branching(&self) -> bool {
        self.max_out_degree() >= 2 || self.max_in_degree() >= 2
    }

    /// Renders the DAG as a small text description for reports.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for edge in self.topological_edges() {
            out.push_str(&format!(
                "{} --[{} w={:.2}]--> {}\n",
                self.nodes[edge.from].label, edge.motif, edge.weight, self.nodes[edge.to].label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::{DataClass, Distribution};

    fn descriptor() -> DataDescriptor {
        DataDescriptor::new(DataClass::Text, 1 << 20, 100, 0.0, Distribution::Uniform)
    }

    fn sample_dag() -> ProxyDag {
        let mut dag = ProxyDag::new();
        let input = dag.add_node("input", descriptor());
        let sampled = dag.add_node("sampled", descriptor().scaled_to(1 << 16));
        let sorted = dag.add_node("sorted", descriptor());
        dag.add_edge(input, sampled, MotifKind::RandomSampling, 0.1);
        dag.add_edge(input, sorted, MotifKind::QuickSort, 0.7);
        dag.add_edge(sampled, sorted, MotifKind::GraphConstruct, 0.2);
        dag
    }

    /// input forks to left/right which join at out: the canonical diamond.
    fn diamond_dag() -> ProxyDag {
        let mut dag = ProxyDag::new();
        let input = dag.add_node("input", descriptor());
        let left = dag.add_node("left", descriptor());
        let right = dag.add_node("right", descriptor());
        let out = dag.add_node("out", descriptor());
        dag.add_edge(input, left, MotifKind::QuickSort, 0.4);
        dag.add_edge(input, right, MotifKind::RandomSampling, 0.1);
        dag.add_edge(left, out, MotifKind::MergeSort, 0.3);
        dag.add_edge(right, out, MotifKind::GraphConstruct, 0.2);
        dag
    }

    #[test]
    fn dag_construction_and_accessors() {
        let dag = sample_dag();
        assert_eq!(dag.nodes().len(), 3);
        assert_eq!(dag.num_edges(), 3);
        assert!(dag.describe().contains("quick-sort"));
    }

    #[test]
    fn normalized_edge_weights_sum_to_one() {
        let dag = sample_dag();
        let total: f64 = dag.normalized_edges().iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn topological_order_follows_node_ids() {
        let dag = sample_dag();
        let edges = dag.topological_edges();
        assert!(edges.windows(2).all(|w| w[0].from <= w[1].from));
        assert_eq!(dag.topological_order(), vec![0, 1, 2]);
    }

    #[test]
    fn diamond_topology_is_accepted_and_staged() {
        let dag = diamond_dag();
        assert!(dag.is_branching());
        assert_eq!(dag.max_out_degree(), 2, "input forks");
        assert_eq!(dag.max_in_degree(), 2, "out joins");
        let stages = dag.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].len(), 2, "both fork edges run in stage 0");
        assert_eq!(stages[1].len(), 2, "both join edges run in stage 1");
        assert_eq!(dag.node_depths(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn diamond_readiness_counts_predecessors_per_edge() {
        let schedule = diamond_dag().schedule();
        let readiness = schedule.readiness();
        // Fork edges are immediately runnable; each join edge waits for
        // exactly the one edge into its source node.
        assert_eq!(readiness.pending, vec![0, 0, 1, 1]);
        assert_eq!(readiness.initial, vec![0, 1]);
        assert_eq!(readiness.successors, vec![vec![2], vec![3], vec![], vec![]]);
    }

    #[test]
    fn join_edges_wait_for_every_predecessor() {
        // Two parallel edges into one node, one edge out: the out edge's
        // countdown must be 2, decremented once per completing in-edge.
        let mut dag = ProxyDag::new();
        let a = dag.add_node("a", descriptor());
        let b = dag.add_node("b", descriptor());
        let c = dag.add_node("c", descriptor());
        dag.add_edge(a, b, MotifKind::QuickSort, 0.4);
        dag.add_edge(a, b, MotifKind::MergeSort, 0.4);
        dag.add_edge(b, c, MotifKind::MinMax, 0.2);
        let readiness = dag.schedule().readiness();
        assert_eq!(readiness.pending, vec![0, 0, 2]);
        assert_eq!(readiness.successors, vec![vec![2], vec![2], vec![]]);
        assert_eq!(readiness.initial, vec![0, 1]);
    }

    #[test]
    fn empty_schedule_has_empty_readiness() {
        let readiness = ProxyDag::new().schedule().readiness();
        assert!(readiness.pending.is_empty());
        assert!(readiness.successors.is_empty());
        assert!(readiness.initial.is_empty());
    }

    #[test]
    fn fan_out_topology_is_accepted() {
        let mut dag = ProxyDag::new();
        let input = dag.add_node("input", descriptor());
        for i in 0..3 {
            let sink = dag.add_node(format!("sink-{i}"), descriptor());
            dag.add_edge(input, sink, MotifKind::ALL[i], 0.2);
        }
        assert_eq!(dag.max_out_degree(), 3);
        assert_eq!(dag.stages(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn backward_pointing_edges_are_fine_when_acyclic() {
        // Declare nodes "out of order": the edge points from a higher to a
        // lower node id, which the old `from < to` shortcut rejected.
        let mut dag = ProxyDag::new();
        let out = dag.add_node("out", descriptor());
        let input = dag.add_node("input", descriptor());
        dag.add_edge(input, out, MotifKind::QuickSort, 1.0);
        assert_eq!(dag.topological_order(), vec![1, 0]);
        assert_eq!(dag.topological_edges().len(), 1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_closing_edges_are_rejected() {
        let mut dag = sample_dag();
        dag.add_edge(2, 0, MotifKind::MergeSort, 0.5);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn diamond_back_edge_is_rejected() {
        let mut dag = diamond_dag();
        dag.add_edge(3, 1, MotifKind::MinMax, 0.1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_are_rejected() {
        let mut dag = sample_dag();
        dag.add_edge(1, 1, MotifKind::MergeSort, 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn unknown_nodes_are_rejected() {
        let mut dag = sample_dag();
        dag.add_edge(0, 9, MotifKind::MergeSort, 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weights_are_rejected() {
        let mut dag = sample_dag();
        dag.add_edge(0, 1, MotifKind::MergeSort, 0.0);
    }
}
