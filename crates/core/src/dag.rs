//! The DAG-like structure of a proxy benchmark.
//!
//! The paper represents a proxy benchmark as a directed acyclic graph whose
//! nodes are original or intermediate data sets and whose edges are data
//! motifs transforming one data set into the next, each with a weight.

use dmpb_datagen::DataDescriptor;
use dmpb_motifs::MotifKind;

/// Identifier of a data node within a proxy DAG.
pub type NodeId = usize;

/// A data node: an original or intermediate data set.
#[derive(Debug, Clone, PartialEq)]
pub struct DataNode {
    /// Human-readable label, e.g. `"input"` or `"sorted-runs"`.
    pub label: String,
    /// Descriptor of the data at this node.
    pub descriptor: DataDescriptor,
}

/// An edge: one data motif applied to the data at `from`, producing the
/// data at `to`, contributing `weight` of the proxy's work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifEdge {
    /// Source data node.
    pub from: NodeId,
    /// Destination data node.
    pub to: NodeId,
    /// The motif implementation on this edge.
    pub motif: MotifKind,
    /// Relative weight (execution ratio) of this edge.
    pub weight: f64,
}

/// A DAG-like combination of data motifs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProxyDag {
    nodes: Vec<DataNode>,
    edges: Vec<MotifEdge>,
}

impl ProxyDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a data node and returns its id.
    pub fn add_node<S: Into<String>>(&mut self, label: S, descriptor: DataDescriptor) -> NodeId {
        self.nodes.push(DataNode {
            label: label.into(),
            descriptor,
        });
        self.nodes.len() - 1
    }

    /// Adds a motif edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint does not exist, if the edge does not point
    /// forward (which would create a cycle), or if the weight is not a
    /// positive finite number.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, motif: MotifKind, weight: f64) {
        assert!(from < self.nodes.len(), "unknown source node {from}");
        assert!(to < self.nodes.len(), "unknown target node {to}");
        assert!(
            from < to,
            "edges must point forward to keep the graph acyclic"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive"
        );
        self.edges.push(MotifEdge {
            from,
            to,
            motif,
            weight,
        });
    }

    /// The data nodes.
    pub fn nodes(&self) -> &[DataNode] {
        &self.nodes
    }

    /// The motif edges.
    pub fn edges(&self) -> &[MotifEdge] {
        &self.edges
    }

    /// Number of motif edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edges with their weights renormalised to sum to one.
    pub fn normalized_edges(&self) -> Vec<MotifEdge> {
        let total: f64 = self.edges.iter().map(|e| e.weight).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        self.edges
            .iter()
            .map(|e| MotifEdge {
                weight: e.weight / total,
                ..*e
            })
            .collect()
    }

    /// Edges in topological (execution) order.  Because edges always point
    /// forward, sorting by source node id is a valid topological order.
    pub fn topological_edges(&self) -> Vec<MotifEdge> {
        let mut edges = self.edges.clone();
        edges.sort_by_key(|e| (e.from, e.to));
        edges
    }

    /// Renders the DAG as a small text description for reports.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for edge in self.topological_edges() {
            out.push_str(&format!(
                "{} --[{} w={:.2}]--> {}\n",
                self.nodes[edge.from].label, edge.motif, edge.weight, self.nodes[edge.to].label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmpb_datagen::{DataClass, Distribution};

    fn descriptor() -> DataDescriptor {
        DataDescriptor::new(DataClass::Text, 1 << 20, 100, 0.0, Distribution::Uniform)
    }

    fn sample_dag() -> ProxyDag {
        let mut dag = ProxyDag::new();
        let input = dag.add_node("input", descriptor());
        let sampled = dag.add_node("sampled", descriptor().scaled_to(1 << 16));
        let sorted = dag.add_node("sorted", descriptor());
        dag.add_edge(input, sampled, MotifKind::RandomSampling, 0.1);
        dag.add_edge(input, sorted, MotifKind::QuickSort, 0.7);
        dag.add_edge(sampled, sorted, MotifKind::GraphConstruct, 0.2);
        dag
    }

    #[test]
    fn dag_construction_and_accessors() {
        let dag = sample_dag();
        assert_eq!(dag.nodes().len(), 3);
        assert_eq!(dag.num_edges(), 3);
        assert!(dag.describe().contains("quick-sort"));
    }

    #[test]
    fn normalized_edge_weights_sum_to_one() {
        let dag = sample_dag();
        let total: f64 = dag.normalized_edges().iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn topological_order_follows_node_ids() {
        let dag = sample_dag();
        let edges = dag.topological_edges();
        assert!(edges.windows(2).all(|w| w[0].from <= w[1].from));
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_edges_are_rejected() {
        let mut dag = sample_dag();
        dag.add_edge(2, 0, MotifKind::MergeSort, 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn unknown_nodes_are_rejected() {
        let mut dag = sample_dag();
        dag.add_edge(0, 9, MotifKind::MergeSort, 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weights_are_rejected() {
        let mut dag = sample_dag();
        dag.add_edge(0, 1, MotifKind::MergeSort, 0.0);
    }
}
