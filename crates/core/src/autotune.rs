//! The adjusting and feedback stages: decision-tree-guided auto-tuning.
//!
//! The tuner measures the candidate proxy, compares it against the original
//! workload's metric vector (Equation 3), and while any tracked metric
//! deviates by more than the threshold it adjusts one parameter chosen by
//! the decision tree trained on the impact analysis.  A greedy baseline
//! strategy is kept for the ablation study.

use dmpb_metrics::{AccuracyReport, MetricId, MetricVector};
use dmpb_perfmodel::arch::ArchProfile;

use crate::dtree::DecisionTree;
use crate::impact::{analyze, Action, ImpactAnalysis};
use crate::proxy::ProxyBenchmark;

/// Which model drives the adjusting stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunerStrategy {
    /// The paper's approach: a decision tree trained on the impact
    /// analysis chooses the parameter to adjust.
    DecisionTree,
    /// Baseline: greedily pick the parameter with the largest impact on the
    /// worst metric (used by the ablation bench).
    Greedy,
}

/// Auto-tuner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoTuner {
    /// Maximum allowed relative deviation per metric (0.15 in the paper).
    pub deviation_threshold: f64,
    /// Upper bound on adjusting/feedback iterations.
    pub max_iterations: usize,
    /// Adjusting-stage strategy.
    pub strategy: TunerStrategy,
}

impl Default for AutoTuner {
    fn default() -> Self {
        Self {
            deviation_threshold: 0.15,
            max_iterations: 30,
            strategy: TunerStrategy::DecisionTree,
        }
    }
}

/// Result of one tuning run.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// The best proxy found.
    pub proxy: ProxyBenchmark,
    /// Its metric vector.
    pub metrics: MetricVector,
    /// Its accuracy against the target.
    pub accuracy: AccuracyReport,
    /// Whether every tracked metric is within the deviation threshold.
    pub qualified: bool,
    /// Number of adjusting/feedback iterations performed.
    pub iterations: usize,
    /// Average accuracy after each iteration (starting with the initial
    /// proxy), used by the ablation study to compare convergence.
    pub history: Vec<f64>,
}

impl AutoTuner {
    /// A stable fingerprint of the tuner configuration, used by the
    /// [`crate::runner::TuningCache`] to key memoized tuning results: two
    /// tuners with the same threshold, iteration budget and strategy
    /// produce the same fingerprint; any difference changes it.
    pub fn fingerprint(&self) -> u64 {
        crate::fnv::hash_u64s([
            self.deviation_threshold.to_bits(),
            self.max_iterations as u64,
            match self.strategy {
                TunerStrategy::DecisionTree => 1,
                TunerStrategy::Greedy => 2,
            },
        ])
    }

    /// Runs the adjusting / feedback loop for `initial` against the
    /// original workload's `target` metric vector on `arch`.
    pub fn tune(
        &self,
        initial: ProxyBenchmark,
        target: &MetricVector,
        arch: &ArchProfile,
        metrics: &[MetricId],
    ) -> TuningOutcome {
        // --- Impact analysis + decision-tree training --------------------
        let impact = analyze(&initial, arch, metrics);
        let tree = DecisionTree::train(&impact.training_samples(), 6);

        let mut best = initial.clone();
        let mut best_metrics = best.measure(arch);
        let mut best_accuracy = AccuracyReport::compare(target, &best_metrics, metrics);
        let mut history = vec![best_accuracy.average()];
        let mut iterations = 0;

        while iterations < self.max_iterations
            && !best_accuracy.is_qualified(self.deviation_threshold)
        {
            iterations += 1;
            let candidates =
                self.candidate_actions(&impact, &tree, target, &best_metrics, &best_accuracy);

            // Feedback stage: accept the first candidate that improves the
            // average accuracy; stop if none does.
            let mut improved = false;
            for action in candidates {
                let adjusted = best.parameters().adjusted(action.0, action.1);
                if adjusted == best.parameters() {
                    continue;
                }
                let candidate = best.with_parameters(adjusted);
                let candidate_metrics = candidate.measure(arch);
                let candidate_accuracy =
                    AccuracyReport::compare(target, &candidate_metrics, metrics);
                if candidate_accuracy.average() > best_accuracy.average() + 1e-6 {
                    best = candidate;
                    best_metrics = candidate_metrics;
                    best_accuracy = candidate_accuracy;
                    improved = true;
                    break;
                }
            }
            history.push(best_accuracy.average());
            if !improved {
                break;
            }
        }

        let qualified = best_accuracy.is_qualified(self.deviation_threshold);
        TuningOutcome {
            proxy: best,
            metrics: best_metrics,
            accuracy: best_accuracy,
            qualified,
            iterations,
            history,
        }
    }

    /// Ranks candidate actions for the current deviation, according to the
    /// configured strategy, always ending with every remaining action so
    /// that the feedback stage can fall through.
    fn candidate_actions(
        &self,
        impact: &ImpactAnalysis,
        tree: &DecisionTree,
        target: &MetricVector,
        current: &MetricVector,
        accuracy: &AccuracyReport,
    ) -> Vec<Action> {
        let mut ranked: Vec<Action> = Vec::new();

        let worst = accuracy.worst_metric().map(|(m, _)| m);
        if let Some(worst_metric) = worst {
            let needed = {
                let base = current.get(worst_metric);
                if base == 0.0 {
                    1.0
                } else {
                    (target.get(worst_metric) - base) / base
                }
            };
            match self.strategy {
                TunerStrategy::DecisionTree => {
                    // Ask the tree which action produces the change the
                    // proxy needs: the feature vector is the needed relative
                    // change of every tracked metric.
                    let needed_vector: Vec<f64> = impact
                        .metrics
                        .iter()
                        .map(|&m| {
                            let base = current.get(m);
                            if base == 0.0 {
                                0.0
                            } else {
                                (target.get(m) - base) / base
                            }
                        })
                        .collect();
                    let label = tree.predict(&needed_vector);
                    if let Some(action) = impact.actions().get(label).copied() {
                        ranked.push(action);
                    }
                }
                TunerStrategy::Greedy => {}
            }
            if let Some(action) = impact.best_greedy_action(worst_metric, needed) {
                if !ranked.contains(&action) {
                    ranked.push(action);
                }
            }
        }

        for action in impact.actions() {
            if !ranked.contains(&action) {
                ranked.push(action);
            }
        }
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::features::{initial_parameters, FeatureSelection};
    use dmpb_workloads::{workload_by_kind, ClusterConfig, WorkloadKind};

    fn tune_kind(kind: WorkloadKind, strategy: TunerStrategy) -> TuningOutcome {
        let cluster = ClusterConfig::five_node_westmere();
        let workload = workload_by_kind(kind);
        let target = workload.measure(&cluster);
        let proxy = ProxyBenchmark::from_decomposition(
            &decompose(workload.as_ref()),
            initial_parameters(workload.as_ref(), &cluster),
        );
        let tuner = AutoTuner {
            strategy,
            max_iterations: 12,
            ..AutoTuner::default()
        };
        tuner.tune(
            proxy,
            &target,
            &cluster.node.arch,
            &FeatureSelection::paper_default().metrics,
        )
    }

    #[test]
    fn tuning_never_decreases_accuracy() {
        let outcome = tune_kind(WorkloadKind::TeraSort, TunerStrategy::DecisionTree);
        assert!(outcome.history.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!(!outcome.history.is_empty());
    }

    #[test]
    fn tuning_improves_over_the_initial_proxy() {
        let outcome = tune_kind(WorkloadKind::AlexNet, TunerStrategy::DecisionTree);
        let first = outcome.history.first().copied().unwrap();
        let last = outcome.history.last().copied().unwrap();
        assert!(last >= first, "first {first} last {last}");
        assert!(outcome.accuracy.average() >= first);
    }

    #[test]
    fn greedy_strategy_also_converges() {
        let outcome = tune_kind(WorkloadKind::PageRank, TunerStrategy::Greedy);
        assert!(
            outcome.accuracy.average() > 0.5,
            "accuracy {}",
            outcome.accuracy.average()
        );
    }

    #[test]
    fn outcome_metrics_match_the_reported_proxy() {
        let cluster = ClusterConfig::five_node_westmere();
        let outcome = tune_kind(WorkloadKind::KMeans, TunerStrategy::DecisionTree);
        let remeasured = outcome.proxy.measure(&cluster.node.arch);
        assert_eq!(remeasured, outcome.metrics);
    }
}
