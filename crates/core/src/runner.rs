//! Parallel execution of the eight-proxy suite with memoized tuning.
//!
//! [`crate::suite::ProxySuite::generate`] tunes the proxies one after
//! another; at the paper's scale that serialises eight independent
//! decision-tree tuning loops.  [`SuiteRunner`] removes both costs:
//!
//! * **Parallelism** — the eight workloads are tuned and executed
//!   concurrently as tasks on one persistent work-stealing
//!   [`WorkerPool`] (bounded by [`SuiteRunner::with_max_parallel`]), and
//!   each proxy's DAG is executed barrier-free by a shared
//!   [`DagExecutor`] running on the *same* pool, with branch concurrency
//!   bounded by [`SuiteRunner::with_intra_parallel`].  Workers are
//!   created once per runner and reused across every proxy and every
//!   run — steady-state suite execution spawns zero threads.  Every
//!   stage of the pipeline is deterministic: each proxy's sample
//!   execution is driven by a seed derived from the runner's base seed
//!   and the workload's position via [`dmpb_datagen::rng::derive_seed`],
//!   and the executor derives per-edge seeds from topological indices —
//!   so the produced [`SuiteReport`] is byte-for-byte identical run to
//!   run regardless of worker counts and task scheduling.
//! * **Memoization** — decision-tree tuning results are cached in a
//!   [`TuningCache`] keyed by (workload, software stack, cluster
//!   configuration, tuner configuration).  Repeated runs against the same
//!   cluster skip the impact analysis, tree training and
//!   adjusting/feedback loop entirely and reuse the qualified proxy; a
//!   changed cluster or tuner configuration changes the key and forces a
//!   fresh tune, and a Hadoop workload can never be served a tune of its
//!   Spark stack twin (or vice versa) even though the two share one motif
//!   DAG.
//!
//! ```
//! use dmpb_core::runner::SuiteRunner;
//! use dmpb_workloads::ClusterConfig;
//!
//! let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
//! let first = runner.run_all();
//! let second = runner.run_all(); // tuning served from cache
//! assert_eq!(first.digest(), second.digest());
//! assert!(runner.cache_stats().hits >= 8);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::fnv::hash_bytes;
use dmpb_datagen::rng::derive_seed;
use dmpb_metrics::table::{fmt_percent, fmt_speedup, TextTable};
use dmpb_motifs::workers::WorkerPool;
use dmpb_workloads::{ClusterConfig, Framework, Workload, WorkloadKind};

use crate::executor::DagExecutor;
use crate::generator::{GenerationReport, ProxyGenerator};
use crate::proxy::ExecutionSummary;

/// Number of elements each proxy's real sample execution processes per
/// kernel (scaled by motif weight; see
/// [`crate::proxy::ProxyBenchmark::execute_sample`]).
pub const SAMPLE_ELEMENTS: usize = 2_000;

/// The default base seed a [`SuiteRunner`] derives its per-proxy sample
/// seeds from.  Exported so the scenario campaign engine can declare
/// sweeps that reproduce the default suite byte for byte.
pub const DEFAULT_BASE_SEED: u64 = 0x00D4_17A4_0F1F;

/// Cache key for one tuning run: the workload and its software stack plus
/// fingerprints of the cluster and tuner configurations that shaped the
/// tune.
///
/// The stack is part of the key even though [`WorkloadKind`] already
/// implies it: Hadoop TeraSort and Spark TeraSort share one motif DAG and
/// one input descriptor, so any future keying shortcut over those shared
/// parts must still never let the two variants share a cache entry — the
/// stack overhead is exactly what their tunes differ in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TuningKey {
    /// The workload the proxy was tuned for.
    pub kind: WorkloadKind,
    /// The software stack the workload runs on.
    pub framework: Framework,
    /// Fingerprint of the cluster configuration the tune targeted.
    pub cluster_fingerprint: u64,
    /// Fingerprint of the tuner + feature-selection configuration.
    pub tuner_fingerprint: u64,
    /// Synthetic-member discriminator: `0` for the eight named workloads;
    /// a synthesized population member's identity hash otherwise.  A
    /// synthetic member borrows a named *carrier* kind for parameter
    /// initialisation, so without this field its tune would collide with
    /// (and shadow) the carrier's own cache entry.
    pub synthetic: u64,
}

impl TuningKey {
    /// Builds the key for tuning the named workload `kind` with
    /// `generator`.
    pub fn new(kind: WorkloadKind, generator: &ProxyGenerator) -> Self {
        Self {
            kind,
            framework: kind.framework(),
            cluster_fingerprint: fingerprint_cluster(&generator.cluster),
            tuner_fingerprint: generator.tuner.fingerprint()
                ^ hash_bytes(format!("{:?}", generator.features).as_bytes()),
            synthetic: 0,
        }
    }

    /// Builds the key for tuning a synthesized workload whose full
    /// description hashes to `discriminator` (which must be non-zero —
    /// zero is the named workloads' reserved value).
    pub fn for_synthetic(
        kind: WorkloadKind,
        generator: &ProxyGenerator,
        discriminator: u64,
    ) -> Self {
        assert!(
            discriminator != 0,
            "synthetic discriminator 0 is reserved for named workloads"
        );
        Self {
            synthetic: discriminator,
            ..Self::new(kind, generator)
        }
    }
}

/// Fingerprints a cluster configuration for cache keying.  Every field of
/// [`ClusterConfig`] (including the nested node and architecture profiles)
/// participates via its `Debug` rendering, so any change to the cluster —
/// node count, memory, cache geometry, frequency — produces a different
/// fingerprint.
pub fn fingerprint_cluster(cluster: &ClusterConfig) -> u64 {
    hash_bytes(format!("{cluster:?}").as_bytes())
}

/// Counters describing a [`TuningCache`]'s effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh tune.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A memo table of tuning results keyed by [`TuningKey`].
///
/// The cache is thread-safe: the workloads of a suite run probe it
/// concurrently.  Hit/miss counters are cumulative over the cache's
/// lifetime.
#[derive(Debug, Default)]
pub struct TuningCache {
    entries: Mutex<HashMap<TuningKey, GenerationReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TuningCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a tuning result, counting a hit or miss.
    ///
    /// The cache's locks recover from poisoning instead of cascading it:
    /// entries are only ever inserted whole, so whatever a panicking
    /// worker left behind is a complete, valid report.
    pub fn lookup(&self, key: &TuningKey) -> Option<GenerationReport> {
        let found = self
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned();
        match found {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a tuning result.
    pub fn insert(&self, key: TuningKey, report: GenerationReport) {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, report);
    }

    /// Snapshot of the hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .entries
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
        }
    }
}

/// One workload's slice of a suite run.
#[derive(Debug, Clone)]
pub struct ProxyRun {
    /// The workload this proxy stands in for.
    pub kind: WorkloadKind,
    /// Seed that drove this proxy's sample execution, derived
    /// deterministically from the runner's base seed.
    pub seed: u64,
    /// The (possibly cache-served) generation report.
    pub report: GenerationReport,
    /// Result of really executing the proxy's motif kernels on generated
    /// sample data.
    pub execution: ExecutionSummary,
}

/// The structured result of one parallel suite run, consumed by the bench
/// binaries.
///
/// A `SuiteReport` contains only deterministic payload — generation
/// reports, derived seeds and kernel checksums — and none of the runner's
/// cache telemetry, so two runs with the same base seed are byte-for-byte
/// identical whether or not the second was served from the tuning cache
/// (compare with [`SuiteReport::digest`]).  Cache telemetry lives on the
/// runner ([`SuiteRunner::cache_stats`]).
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Reporting name of the cluster the suite was generated against.
    pub cluster_name: &'static str,
    /// The seed the per-proxy seeds were derived from.
    pub base_seed: u64,
    /// Per-workload results in [`WorkloadKind::ALL`] order.
    pub runs: Vec<ProxyRun>,
}

impl SuiteReport {
    /// The run for one workload.
    ///
    /// # Panics
    ///
    /// Panics if the report does not contain `kind` (a full suite run
    /// always contains every workload).
    pub fn run(&self, kind: WorkloadKind) -> &ProxyRun {
        self.runs
            .iter()
            .find(|r| r.kind == kind)
            .expect("suite report contains every workload kind")
    }

    /// The generation reports in [`WorkloadKind::ALL`] order.
    pub fn reports(&self) -> impl Iterator<Item = &GenerationReport> {
        self.runs.iter().map(|r| &r.report)
    }

    /// Average accuracy across all proxies of the suite.
    pub fn average_accuracy(&self) -> f64 {
        self.runs
            .iter()
            .map(|r| r.report.accuracy.average())
            .sum::<f64>()
            / self.runs.len().max(1) as f64
    }

    /// Minimum runtime speedup across all proxies of the suite.
    pub fn min_speedup(&self) -> f64 {
        self.runs
            .iter()
            .map(|r| r.report.speedup)
            .fold(f64::INFINITY, f64::min)
    }

    /// A stable digest over the full report contents.  Two runs with the
    /// same base seed on the same cluster produce the same digest; any
    /// change to a metric, parameter, seed or checksum changes it.
    pub fn digest(&self) -> u64 {
        hash_bytes(format!("{self:?}").as_bytes())
    }

    /// Renders the suite as a summary table (one row per workload).
    pub fn summary_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("Proxy suite on {}", self.cluster_name),
            &[
                "workload",
                "accuracy",
                "speedup",
                "iterations",
                "qualified",
                "sample checksum",
            ],
        );
        for run in &self.runs {
            t.add_row(&[
                run.kind.to_string(),
                fmt_percent(run.report.accuracy.average()),
                fmt_speedup(run.report.speedup),
                run.report.iterations.to_string(),
                if run.report.qualified { "yes" } else { "no" }.to_string(),
                format!("{:016x}", run.execution.checksum),
            ]);
        }
        t
    }
}

/// Parallel, cache-backed driver for the eight-proxy suite.
///
/// See the [module documentation](self) for the design; the short version:
/// [`SuiteRunner::run_all`] tunes and executes all eight proxies
/// concurrently, deterministic in its output, and memoizes tuning results
/// in a [`TuningCache`] so repeated runs against the same cluster skip
/// re-tuning.
#[derive(Debug)]
pub struct SuiteRunner {
    generator: ProxyGenerator,
    base_seed: u64,
    max_parallel: usize,
    intra_parallel: usize,
    chunk_elements: Option<usize>,
    workers: OnceLock<Arc<WorkerPool>>,
    executor: OnceLock<DagExecutor>,
    cache: TuningCache,
}

impl SuiteRunner {
    /// A runner with the paper's generator defaults on `cluster`, the
    /// default base seed, and one worker per workload.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self::with_generator(ProxyGenerator::new(cluster))
    }

    /// A runner around an explicit generator configuration.
    pub fn with_generator(generator: ProxyGenerator) -> Self {
        Self {
            generator,
            base_seed: DEFAULT_BASE_SEED,
            max_parallel: WorkloadKind::ALL.len(),
            intra_parallel: 1,
            chunk_elements: None,
            workers: OnceLock::new(),
            executor: OnceLock::new(),
            cache: TuningCache::new(),
        }
    }

    /// Sets the base seed the per-proxy sample-execution seeds are derived
    /// from.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Bounds the number of concurrently tuned workloads (clamped to
    /// `1..=8`).
    pub fn with_max_parallel(mut self, workers: usize) -> Self {
        self.max_parallel = workers.clamp(1, WorkloadKind::ALL.len());
        self.workers = OnceLock::new();
        self.executor = OnceLock::new();
        self
    }

    /// Bounds the number of DAG branches executed concurrently *within*
    /// one proxy (the [`DagExecutor`]'s worker budget).  Intra-proxy
    /// parallelism is a pure performance axis: per-edge seeds are derived
    /// from topological indices, so the report digest is identical for any
    /// setting.
    pub fn with_intra_parallel(mut self, workers: usize) -> Self {
        self.intra_parallel = workers.max(1);
        self.workers = OnceLock::new();
        self.executor = OnceLock::new();
        self
    }

    /// Streams every sample execution in granule-aligned chunks of at
    /// most `chunk_elements` elements (see
    /// [`DagExecutor::with_chunk_elements`]).  `None` restores the
    /// monolithic path.  Streaming is a pure memory/performance axis:
    /// report digests are identical for any setting.
    pub fn with_chunk_elements(mut self, chunk_elements: Option<usize>) -> Self {
        self.chunk_elements = chunk_elements;
        self.executor = OnceLock::new();
        self
    }

    /// Shares an existing worker pool instead of lazily creating one, so
    /// several runners (e.g. the per-cluster runners of a scenario
    /// campaign) can execute on one set of persistent workers.  Call this
    /// *after* [`Self::with_max_parallel`] / [`Self::with_intra_parallel`]
    /// — those builders reset the pool so it can be re-sized.
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.workers = OnceLock::new();
        let _ = self.workers.set(pool);
        self.executor = OnceLock::new();
        self
    }

    /// The persistent work-stealing worker pool shared by the whole
    /// suite: the per-workload fan-out and every proxy's intra-DAG
    /// branches all run on these workers.  Created once, on first use,
    /// sized `max(inter, intra) - 1` (the calling thread participates);
    /// repeated runs reuse it, so steady-state execution spawns no
    /// threads.
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        self.workers.get_or_init(|| {
            Arc::new(WorkerPool::new(
                self.max_parallel.max(self.intra_parallel).saturating_sub(1),
            ))
        })
    }

    /// The work-stealing DAG executor shared by every proxy of the suite:
    /// one intermediate-buffer pool across all sample executions, running
    /// on the runner's shared [`Self::worker_pool`].
    pub fn executor(&self) -> &DagExecutor {
        self.executor.get_or_init(|| {
            DagExecutor::new()
                .with_max_parallel(self.intra_parallel)
                .with_chunk_elements(self.chunk_elements)
                .with_worker_pool(Arc::clone(self.worker_pool()))
        })
    }

    /// The generator driving decomposition and tuning.
    pub fn generator(&self) -> &ProxyGenerator {
        &self.generator
    }

    /// Snapshot of the tuning cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Tunes (or fetches from cache) and executes one workload's proxy.
    /// The per-proxy seed is derived from the base seed and the workload's
    /// position in [`WorkloadKind::ALL`].
    pub fn run_kind(&self, kind: WorkloadKind) -> ProxyRun {
        let index = WorkloadKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind is one of the suite workloads");
        self.run_indexed(index, kind)
    }

    /// Tunes `kind`'s proxy, served from the cache when possible.
    fn tuned_report(&self, kind: WorkloadKind) -> GenerationReport {
        let key = TuningKey::new(kind, &self.generator);
        match self.cache.lookup(&key) {
            Some(report) => report,
            None => {
                let report = self.generator.generate_kind(kind);
                self.cache.insert(key, report.clone());
                report
            }
        }
    }

    fn run_indexed(&self, index: usize, kind: WorkloadKind) -> ProxyRun {
        self.run_cell(
            kind,
            SAMPLE_ELEMENTS,
            derive_seed(self.base_seed, index as u64),
        )
    }

    /// Tunes (or fetches from cache) `kind`'s proxy and executes its DAG on
    /// an explicit sample size and seed — the cell-level hook the scenario
    /// campaign engine batches over.  [`Self::run_kind`] /
    /// [`Self::run_all`] are this with the runner's derived seed and
    /// [`SAMPLE_ELEMENTS`]: `run_cell(kind, SAMPLE_ELEMENTS,
    /// derive_seed(base_seed, index))` reproduces a suite run's slice byte
    /// for byte.
    pub fn run_cell(&self, kind: WorkloadKind, elements: usize, seed: u64) -> ProxyRun {
        let report = self.tuned_report(kind);
        let execution =
            ExecutionSummary::from(&report.proxy.execute_dag(self.executor(), elements, seed));
        ProxyRun {
            kind,
            seed,
            report,
            execution,
        }
    }

    /// [`Self::run_cell`] for a *synthesized* workload (e.g. a population
    /// member from `dmpb-population`): tunes the workload through the
    /// generic pipeline, memoized under a [`TuningKey::for_synthetic`]
    /// key so the member can never share (or shadow) a named workload's
    /// cache entry, then executes its proxy DAG on `elements` / `seed`.
    /// `discriminator` must be the member's identity hash — non-zero, and
    /// stable across runs so repeated campaigns hit the cache.
    pub fn run_synthetic_cell(
        &self,
        workload: &dyn Workload,
        discriminator: u64,
        elements: usize,
        seed: u64,
    ) -> ProxyRun {
        let key = TuningKey::for_synthetic(workload.kind(), &self.generator, discriminator);
        let report = match self.cache.lookup(&key) {
            Some(report) => report,
            None => {
                let report = self.generator.generate(workload);
                self.cache.insert(key, report.clone());
                report
            }
        };
        let execution =
            ExecutionSummary::from(&report.proxy.execute_dag(self.executor(), elements, seed));
        ProxyRun {
            kind: workload.kind(),
            seed,
            report,
            execution,
        }
    }

    /// [`Self::run_synthetic_cell`], with panics converted into an error
    /// (the synthetic counterpart of [`Self::try_run_cell`]).
    pub fn try_run_synthetic_cell(
        &self,
        workload: &dyn Workload,
        discriminator: u64,
        elements: usize,
        seed: u64,
    ) -> Result<ProxyRun, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_synthetic_cell(workload, discriminator, elements, seed)
        }))
        .map_err(|payload| {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            format!(
                "synthetic cell {:016x} (carrier {}, elements {elements}, seed {seed:016x}) \
                 panicked: {message}",
                discriminator,
                workload.kind()
            )
        })
    }

    /// [`Self::run_cell`], with panics converted into an error instead of
    /// unwinding into the caller.  Long-running hosts (the campaign
    /// daemon) use this so one exploding cell fails its own campaign
    /// without taking down every other worker; the tuning cache and
    /// worker pool recover from a mid-cell panic by construction (the
    /// cache inserts whole entries, the pool routes task panics here).
    pub fn try_run_cell(
        &self,
        kind: WorkloadKind,
        elements: usize,
        seed: u64,
    ) -> Result<ProxyRun, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_cell(kind, elements, seed)
        }))
        .map_err(|payload| {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            format!("cell {kind} (elements {elements}, seed {seed:016x}) panicked: {message}")
        })
    }

    /// Maps every workload through `work` on the persistent shared worker
    /// pool, returning results in [`WorkloadKind::ALL`] order.  No threads
    /// are spawned here: at most `max_parallel` cursor-draining tasks are
    /// submitted (so the inter-workload concurrency bound holds even when
    /// the pool is sized for a wider `intra_parallel`), and the calling
    /// thread helps execute tasks while it waits.
    fn map_kinds<T: Send + Sync>(&self, work: impl Fn(usize, WorkloadKind) -> T + Sync) -> Vec<T> {
        let kinds = WorkloadKind::ALL;
        let slots: Vec<OnceLock<T>> = kinds.iter().map(|_| OnceLock::new()).collect();
        let workers = self.max_parallel.clamp(1, kinds.len());

        if workers <= 1 {
            for (index, &kind) in kinds.iter().enumerate() {
                assert!(
                    slots[index].set(work(index, kind)).is_ok(),
                    "suite slot filled twice"
                );
            }
        } else {
            let cursor = AtomicUsize::new(0);
            self.worker_pool().scope(|scope| {
                for _ in 0..workers {
                    let work = &work;
                    let slots = &slots;
                    let cursor = &cursor;
                    scope.spawn(move |_| loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= kinds.len() {
                            break;
                        }
                        assert!(
                            slots[index].set(work(index, kinds[index])).is_ok(),
                            "suite slot filled twice"
                        );
                    });
                }
            });
        }

        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every workload produced a result"))
            .collect()
    }

    /// Tunes all eight proxies in parallel without executing their sample
    /// kernels — the cheaper path when only the [`GenerationReport`]s are
    /// needed (e.g. [`crate::suite::ProxySuite::generate_parallel`]).
    pub fn tune_all(&self) -> Vec<GenerationReport> {
        self.map_kinds(|_, kind| self.tuned_report(kind))
    }

    /// Runs the whole suite: all eight workloads tuned and executed in
    /// parallel.  The returned report lists workloads in
    /// [`WorkloadKind::ALL`] order and is identical run to run for a given
    /// base seed, independent of worker count and thread scheduling.
    pub fn run_all(&self) -> SuiteReport {
        SuiteReport {
            cluster_name: self.generator.cluster.name,
            base_seed: self.base_seed,
            runs: self.map_kinds(|index, kind| self.run_indexed(index, kind)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autotune::TunerStrategy;

    #[test]
    fn run_all_covers_every_workload_in_order() {
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let report = runner.run_all();
        let kinds: Vec<WorkloadKind> = report.runs.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, WorkloadKind::ALL.to_vec());
        for run in &report.runs {
            assert!(run.report.accuracy.average() > 0.5, "{}", run.kind);
            assert!(run.report.speedup > 10.0, "{}", run.kind);
            assert!(run.execution.kernels_run > 0);
        }
    }

    #[test]
    fn repeated_runs_are_byte_identical_and_cache_served() {
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let first = runner.run_all();
        let after_first = runner.cache_stats();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 8);
        assert_eq!(after_first.entries, 8);

        let second = runner.run_all();
        let after_second = runner.cache_stats();
        assert_eq!(
            after_second.hits, 8,
            "second run must hit the cache for every workload"
        );
        assert_eq!(after_second.misses, 8);

        assert_eq!(format!("{first:?}"), format!("{second:?}"));
        assert_eq!(first.digest(), second.digest());
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let parallel = SuiteRunner::new(ClusterConfig::five_node_westmere()).run_all();
        let serial = SuiteRunner::new(ClusterConfig::five_node_westmere())
            .with_max_parallel(1)
            .run_all();
        assert_eq!(parallel.digest(), serial.digest());
    }

    #[test]
    fn intra_proxy_parallelism_does_not_change_the_report() {
        let serial = SuiteRunner::new(ClusterConfig::five_node_westmere()).run_all();
        let branchy = SuiteRunner::new(ClusterConfig::five_node_westmere())
            .with_intra_parallel(8)
            .run_all();
        assert_eq!(
            serial.digest(),
            branchy.digest(),
            "intra-proxy branch parallelism must be a pure performance axis"
        );
    }

    #[test]
    fn streaming_does_not_change_the_execution_checksum() {
        let mono =
            SuiteRunner::new(ClusterConfig::five_node_westmere()).run_kind(WorkloadKind::TeraSort);
        let streamed = SuiteRunner::new(ClusterConfig::five_node_westmere())
            .with_chunk_elements(Some(4096))
            .run_kind(WorkloadKind::TeraSort);
        assert_eq!(
            mono.execution.checksum, streamed.execution.checksum,
            "chunked streaming must be a pure memory/performance axis"
        );
        assert_eq!(mono.seed, streamed.seed);
    }

    #[test]
    fn base_seed_changes_sample_execution_but_not_tuning() {
        let a = SuiteRunner::new(ClusterConfig::five_node_westmere()).run_all();
        let b = SuiteRunner::new(ClusterConfig::five_node_westmere())
            .with_base_seed(99)
            .run_all();
        assert_ne!(a.digest(), b.digest());
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_ne!(ra.seed, rb.seed);
            assert_eq!(
                ra.report.proxy.parameters(),
                rb.report.proxy.parameters(),
                "tuning is independent of the sample seed"
            );
        }
    }

    #[test]
    fn cache_hit_returns_identical_parameters_to_a_fresh_tune() {
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let fresh = runner.run_kind(WorkloadKind::TeraSort);
        let cached = runner.run_kind(WorkloadKind::TeraSort);
        assert_eq!(runner.cache_stats().hits, 1);
        assert_eq!(
            fresh.report.proxy.parameters(),
            cached.report.proxy.parameters()
        );
        assert_eq!(fresh.report.proxy_metrics, cached.report.proxy_metrics);
    }

    #[test]
    fn different_cluster_config_misses_the_cache() {
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let _ = runner.run_kind(WorkloadKind::TeraSort);
        let key_a = TuningKey::new(WorkloadKind::TeraSort, runner.generator());

        let other = ProxyGenerator::new(ClusterConfig::three_node_haswell());
        let key_b = TuningKey::new(WorkloadKind::TeraSort, &other);
        assert_ne!(key_a, key_b);
        assert!(runner.cache.lookup(&key_b).is_none());
    }

    #[test]
    fn different_tuner_config_changes_the_key() {
        let cluster = ClusterConfig::five_node_westmere();
        let tree = ProxyGenerator::new(cluster);
        let greedy = ProxyGenerator::new(cluster).with_greedy_tuner();
        assert_ne!(
            TuningKey::new(WorkloadKind::KMeans, &tree),
            TuningKey::new(WorkloadKind::KMeans, &greedy)
        );
        assert_eq!(greedy.tuner.strategy, TunerStrategy::Greedy);
    }

    #[test]
    fn hadoop_and_spark_twins_never_share_a_cache_entry() {
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let hadoop_key = TuningKey::new(WorkloadKind::TeraSort, runner.generator());
        let spark_key = TuningKey::new(WorkloadKind::SparkTeraSort, runner.generator());
        // Same motif DAG, same input, same cluster, same tuner — but the
        // stack differs, so the keys must too.
        assert_ne!(hadoop_key, spark_key);
        assert_eq!(
            hadoop_key.cluster_fingerprint,
            spark_key.cluster_fingerprint
        );
        assert_eq!(hadoop_key.tuner_fingerprint, spark_key.tuner_fingerprint);
        assert_eq!(hadoop_key.framework, Framework::Hadoop);
        assert_eq!(spark_key.framework, Framework::Spark);

        // Tuning the Hadoop variant must not satisfy a Spark lookup, and
        // once both are tuned they occupy two distinct entries.
        let _ = runner.run_kind(WorkloadKind::TeraSort);
        assert!(runner.cache.lookup(&spark_key).is_none());
        let _ = runner.run_kind(WorkloadKind::SparkTeraSort);
        assert_eq!(runner.cache_stats().entries, 2);
        let hadoop_run = runner.run_kind(WorkloadKind::TeraSort);
        let spark_run = runner.run_kind(WorkloadKind::SparkTeraSort);
        assert_ne!(
            hadoop_run.report.real_metrics, spark_run.report.real_metrics,
            "the two stacks must be tuned against different targets"
        );
    }

    #[test]
    fn every_stack_twin_pair_gets_distinct_keys() {
        let generator = ProxyGenerator::new(ClusterConfig::five_node_westmere());
        for kind in WorkloadKind::ALL {
            if let Some(twin) = kind.stack_twin() {
                assert_ne!(
                    TuningKey::new(kind, &generator),
                    TuningKey::new(twin, &generator),
                    "{kind} and {twin} share a tuning key"
                );
            }
        }
    }

    #[test]
    fn run_cell_reproduces_a_suite_slice_byte_for_byte() {
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let suite = runner.run_all();
        for (index, kind) in WorkloadKind::ALL.iter().enumerate() {
            let seed = derive_seed(DEFAULT_BASE_SEED, index as u64);
            let cell = runner.run_cell(*kind, SAMPLE_ELEMENTS, seed);
            let slice = suite.run(*kind);
            assert_eq!(cell.seed, slice.seed);
            assert_eq!(cell.execution, slice.execution);
            assert_eq!(format!("{:?}", cell.report), format!("{:?}", slice.report));
        }
    }

    /// A minimal synthesized workload: borrows TeraSort as its carrier
    /// kind (the population crate does the same with its nearest-named
    /// carrier) but decomposes into a different motif set.
    #[derive(Debug)]
    struct MiniSynthetic;

    impl Workload for MiniSynthetic {
        fn kind(&self) -> WorkloadKind {
            WorkloadKind::TeraSort
        }
        fn pattern(&self) -> &'static str {
            "synthetic test"
        }
        fn input_descriptor(&self) -> dmpb_datagen::DataDescriptor {
            dmpb_datagen::DataDescriptor::new(
                dmpb_datagen::DataClass::Text,
                1 << 30,
                100,
                0.0,
                dmpb_datagen::Distribution::Uniform,
            )
        }
        fn motif_composition(&self) -> Vec<(dmpb_motifs::MotifClass, f64)> {
            vec![
                (dmpb_motifs::MotifClass::Sort, 0.6),
                (dmpb_motifs::MotifClass::Sampling, 0.4),
            ]
        }
        fn involved_motifs(&self) -> Vec<dmpb_motifs::MotifKind> {
            vec![
                dmpb_motifs::MotifKind::QuickSort,
                dmpb_motifs::MotifKind::RandomSampling,
            ]
        }
        fn per_node_profile(&self, cluster: &ClusterConfig) -> dmpb_perfmodel::profile::OpProfile {
            dmpb_workloads::hadoop::TeraSort::scaled(1 << 30).per_node_profile(cluster)
        }
    }

    #[test]
    fn synthetic_cells_never_share_a_cache_entry_with_their_carrier() {
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let named_run = runner.run_kind(WorkloadKind::TeraSort);
        let named_key = TuningKey::new(WorkloadKind::TeraSort, runner.generator());
        let synthetic_key =
            TuningKey::for_synthetic(WorkloadKind::TeraSort, runner.generator(), 0xABCD);
        assert_ne!(named_key, synthetic_key);
        assert!(
            runner.cache.lookup(&synthetic_key).is_none(),
            "the carrier's tune must not satisfy a synthetic lookup"
        );

        let synthetic_run = runner.run_synthetic_cell(&MiniSynthetic, 0xABCD, 500, 7);
        assert_eq!(synthetic_run.kind, WorkloadKind::TeraSort, "carrier kind");
        assert_eq!(
            runner.cache_stats().entries,
            2,
            "named and synthetic tunes occupy distinct entries"
        );
        // The synthetic tune must not have overwritten the named entry.
        let named_again = runner.run_kind(WorkloadKind::TeraSort);
        assert_eq!(
            named_run.report.proxy.parameters(),
            named_again.report.proxy.parameters()
        );
        // And a repeated synthetic run is served from its own entry.
        let hits_before = runner.cache_stats().hits;
        let again = runner.run_synthetic_cell(&MiniSynthetic, 0xABCD, 500, 7);
        assert!(runner.cache_stats().hits > hits_before);
        assert_eq!(again.execution, synthetic_run.execution);
    }

    #[test]
    fn distinct_synthetic_members_get_distinct_entries() {
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere());
        let a = runner
            .try_run_synthetic_cell(&MiniSynthetic, 1, 500, 7)
            .expect("member 1 runs");
        let b = runner
            .try_run_synthetic_cell(&MiniSynthetic, 2, 500, 7)
            .expect("member 2 runs");
        assert_eq!(runner.cache_stats().entries, 2);
        assert_eq!(
            a.execution.checksum, b.execution.checksum,
            "same workload body"
        );
    }

    #[test]
    #[should_panic(expected = "reserved for named workloads")]
    fn zero_synthetic_discriminator_is_rejected() {
        let generator = ProxyGenerator::new(ClusterConfig::five_node_westmere());
        let _ = TuningKey::for_synthetic(WorkloadKind::TeraSort, &generator, 0);
    }

    #[test]
    fn shared_worker_pool_is_adopted_not_recreated() {
        let pool = Arc::new(WorkerPool::new(2));
        let runner = SuiteRunner::new(ClusterConfig::five_node_westmere())
            .with_max_parallel(4)
            .with_worker_pool(Arc::clone(&pool));
        assert!(Arc::ptr_eq(runner.worker_pool(), &pool));
        let report = runner.run_all();
        assert_eq!(report.runs.len(), WorkloadKind::ALL.len());
    }

    #[test]
    fn summary_table_lists_all_eight_rows() {
        let report = SuiteRunner::new(ClusterConfig::five_node_westmere()).run_all();
        let rendered = report.summary_table().render();
        for kind in WorkloadKind::ALL {
            assert!(
                rendered.contains(&kind.to_string()),
                "{kind} missing:\n{rendered}"
            );
        }
    }
}
